//! Offline shim for the `crossbeam` crate.
//!
//! Implements the one entry point the workspace uses —
//! [`scope`] — over `std::thread::scope`. Matching crossbeam
//! semantics, `scope` returns `Err` with the first panic payload if any
//! spawned thread panicked, instead of propagating the panic.
//!
//! One deliberate simplification: spawned tasks are *collected* while
//! the user closure runs and *started* when it returns (std's scoped
//! threads cannot outlive a borrow of the collecting scope). Callers in
//! this workspace only spawn workers and immediately return from the
//! closure, so observable behaviour is identical. The closure passed to
//! [`Scope::spawn`] receives `()` where crossbeam passes a nested
//! `&Scope` (the workspace always ignores it).

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Payload of the first panicking worker, as crossbeam reports it.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

type Task<'env> = Box<dyn FnOnce() -> Result<(), PanicPayload> + Send + 'env>;

/// Collects tasks to run on scoped threads.
pub struct Scope<'env> {
    tasks: RefCell<Vec<Task<'env>>>,
}

impl<'env> Scope<'env> {
    /// Registers `f` to run on its own scoped thread. The argument
    /// passed to `f` is a placeholder for crossbeam's nested scope.
    pub fn spawn<F, T>(&self, f: F)
    where
        F: FnOnce(()) -> T + Send + 'env,
        T: Send + 'env,
    {
        self.tasks.borrow_mut().push(Box::new(move || {
            catch_unwind(AssertUnwindSafe(move || {
                f(());
            }))
        }));
    }
}

/// Runs `f` with a [`Scope`], executes every spawned task on its own
/// thread, joins them all, and reports the first panic as `Err`.
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let scope = Scope {
        tasks: RefCell::new(Vec::new()),
    };
    let result = f(&scope);
    let tasks = scope.tasks.into_inner();
    let mut first_panic: Option<PanicPayload> = None;
    std::thread::scope(|s| {
        let handles: Vec<_> = tasks.into_iter().map(|task| s.spawn(task)).collect();
        for handle in handles {
            if let Ok(Err(payload)) = handle.join() {
                first_panic.get_or_insert(payload);
            }
        }
    });
    match first_panic {
        Some(payload) => Err(payload),
        None => Ok(result),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_tasks_and_returns_closure_value() {
        let counter = AtomicUsize::new(0);
        let out = scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            "done"
        })
        .unwrap();
        assert_eq!(out, "done");
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn panicking_worker_surfaces_as_err() {
        let survivors = AtomicUsize::new(0);
        let result = scope(|s| {
            s.spawn(|_| panic!("boom"));
            s.spawn(|_| {
                survivors.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert!(result.is_err());
        assert_eq!(survivors.load(Ordering::SeqCst), 1, "siblings still ran");
        let payload = result.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
    }

    #[test]
    fn tasks_run_concurrently() {
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    live.fetch_sub(1, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert!(peak.load(Ordering::SeqCst) >= 2);
    }
}
