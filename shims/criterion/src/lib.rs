//! Offline shim for the `criterion` crate.
//!
//! Keeps the workspace's bench targets compiling and running without
//! registry access. Measurement is deliberately simple — each bench
//! runs a warm-up pass plus `sample_size` timed samples and prints the
//! median per-iteration time — but the public surface the workspace
//! uses (`criterion_group!`/`criterion_main!`, benchmark groups,
//! throughput annotations, `bench_with_input`) matches criterion 0.5.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver configuration.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), self.sample_size, None, f);
        self
    }
}

/// Throughput annotation attached to subsequent benchmarks in a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Input size in bytes per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter` identifiers.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates following benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Times `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (report flushing is a no-op in the shim).
    pub fn finish(self) {}
}

/// Per-benchmark timing handle passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also sizes the per-sample iteration count so cheap
        // routines are timed over enough calls to rise above clock
        // granularity.
        let warm_start = Instant::now();
        black_box(routine());
        let once = warm_start.elapsed();
        let target = Duration::from_millis(5);
        self.iters_per_sample = if once.is_zero() {
            1024
        } else {
            (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 16_384) as u64
        };
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / bencher.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  {:>10.1} MiB/s", n as f64 / median / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  {:>10.1} elem/s", n as f64 / median)
        }
        _ => String::new(),
    };
    println!("{label:<40} median {}{}", format_seconds(median), rate);
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:>9.3} s ")
    } else if s >= 1e-3 {
        format!("{:>9.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:>9.3} µs", s * 1e6)
    } else {
        format!("{:>9.3} ns", s * 1e9)
    }
}

/// Declares a group runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs every group, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("shim");
        let mut calls = 0u64;
        group.bench_function("counting", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Bytes(128));
        let mut seen = 0usize;
        group.bench_with_input(BenchmarkId::new("sq", 7usize), &7usize, |b, &k| {
            b.iter(|| seen = k * k)
        });
        group.finish();
        assert_eq!(seen, 49);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(
            BenchmarkId::new("bm25_search", 5).to_string(),
            "bm25_search/5"
        );
    }
}
