//! Offline shim for the `rand` crate.
//!
//! Covers the subset of the rand 0.8 API the workspace uses:
//! `SeedableRng::from_seed`, `Rng::{gen, gen_bool, gen_range}` over
//! integer/float ranges, and `seq::SliceRandom::shuffle`. The stream is
//! produced by xoshiro256++ and is deterministic for a fixed seed, but
//! is NOT bit-compatible with the real `rand` crate — every consumer in
//! this workspace only relies on run-to-run determinism, never on
//! specific values.

use std::ops::{Range, RangeInclusive};

/// Core random-stream trait; everything else derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value via its [`Standard`] distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }

    /// Samples uniformly from `range` (half-open or inclusive; panics
    /// on an empty range, like rand).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding interface, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The fixed-width byte seed.
    type Seed;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator by expanding a `u64` with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Distribution of "any value of T", mirroring `rand`'s `Standard`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::SeedableRng;

    /// Deterministic xoshiro256++ generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                // Re-mix each word so low-entropy seeds (e.g. mostly
                // zero bytes) still produce a healthy state.
                *word = splitmix64(
                    u64::from_le_bytes(bytes) ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut x = state;
            let mut s = [0u64; 4];
            for word in &mut s {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                *word = splitmix64(x);
            }
            Self { s }
        }
    }

    /// SplitMix64 finalizer used to expand seeds into state words.
    fn splitmix64(state: u64) -> u64 {
        let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod seq {
    //! Sequence helpers, mirroring `rand::seq`.

    use super::RngCore;

    /// Slice extension methods.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::from_seed([7u8; 32])
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (mut a, mut b) = (rng(), rng());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = r.gen_range(3..7);
            assert!((3..7).contains(&v));
            let w: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let u = r.gen_range(0..26u8);
            assert!(u < 26);
        }
    }

    #[test]
    fn degenerate_inclusive_range_is_constant() {
        let mut r = rng();
        assert_eq!(r.gen_range(4..=4), 4);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = rng();
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = rng();
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::from_seed([1u8; 32]);
        let mut b = StdRng::from_seed([2u8; 32]);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
        let mut c = StdRng::seed_from_u64(1);
        let mut d = StdRng::seed_from_u64(2);
        assert_ne!(c.gen::<u64>(), d.gen::<u64>());
    }
}
