//! Collection strategies, mirroring `proptest::collection`.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

/// Inclusive size bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec`s of values from `element`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        let len = self.size.lo + runner.below(self.size.hi - self.size.lo + 1);
        (0..len).map(|_| self.element.new_value(runner)).collect()
    }
}

/// Builds a [`VecStrategy`], mirroring `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_size_bounds() {
        let mut r = TestRunner::deterministic("vec-bounds");
        let strat = vec(0usize..5, 1..4);
        for _ in 0..200 {
            let v = strat.new_value(&mut r);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn exact_size_form() {
        let mut r = TestRunner::deterministic("vec-exact");
        let strat = vec(-3i64..3, 3usize);
        for _ in 0..50 {
            assert_eq!(strat.new_value(&mut r).len(), 3);
        }
    }
}
