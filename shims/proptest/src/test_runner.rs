//! Test execution support: configuration, case outcomes, and the RNG
//! that drives value generation.

/// Per-block configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// Cases to run, honouring the `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases).max(1),
            Err(_) => self.cases.max(1),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the shim runs fewer because it
        // doesn't shrink (so long runs buy less) and the workspace's
        // suite runs on every tier-1 gate. Override via PROPTEST_CASES.
        Self { cases: 64 }
    }
}

/// Outcome of a single generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!`; it is not counted.
    Reject(String),
    /// An assertion failed; the test panics with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure, mirroring `TestCaseError::fail`.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// Builds a rejection, mirroring `TestCaseError::reject`.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

/// Deterministic SplitMix64 stream driving all strategies in one test.
#[derive(Debug, Clone)]
pub struct TestRunner {
    state: u64,
}

impl TestRunner {
    /// Seeds the runner from a stable key (the test's full path), so a
    /// given test sees the same case sequence on every run.
    pub fn deterministic(key: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in key.bytes() {
            state ^= b as u64;
            state = state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..n` (`n` must be positive).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_stream() {
        let mut a = TestRunner::deterministic("x::y");
        let mut b = TestRunner::deterministic("x::y");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_keys_diverge() {
        let mut a = TestRunner::deterministic("x::y");
        let mut b = TestRunner::deterministic("x::z");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_and_unit_in_bounds() {
        let mut r = TestRunner::deterministic("bounds");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
