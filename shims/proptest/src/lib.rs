//! Offline shim for the `proptest` crate.
//!
//! Reproduces the subset of the proptest 1.x API this workspace uses:
//! the [`proptest!`] macro family, `Strategy` with
//! `prop_map`/`prop_flat_map`/`prop_recursive`/`boxed`, range and
//! regex-string strategies, `collection::vec`, `any::<T>()`, `Just`,
//! `prop_oneof!`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, none of which this workspace's
//! tests depend on:
//! - **No shrinking.** A failing case reports the generated inputs but
//!   does not minimise them.
//! - **Deterministic seeding.** Each test derives its RNG seed from its
//!   module path and name, so failures reproduce exactly across runs.
//!   `PROPTEST_CASES` still overrides the per-test case count.
//! - **Regex strategies** support the literal/class/group/alternation/
//!   quantifier subset the workspace's patterns use, not full regex.
//! - `.proptest-regressions` files are ignored.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! Single-import surface, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let cases = config.effective_cases();
            let mut runner = $crate::test_runner::TestRunner::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < cases {
                let mut inputs = String::new();
                $(
                    let raw = $crate::strategy::Strategy::new_value(&($strat), &mut runner);
                    inputs.push_str(&format!(
                        "{} = {:?}; ",
                        stringify!($arg),
                        &raw
                    ));
                    let $arg = raw;
                )+
                let outcome = (|| -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        rejected += 1;
                        assert!(
                            rejected < cases.saturating_mul(16).max(256),
                            "proptest '{}': too many rejected cases ({rejected})",
                            stringify!($name),
                        );
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "proptest '{}' failed after {} passing case(s): {}\n  inputs: {}",
                            stringify!($name),
                            passed,
                            msg,
                            inputs,
                        );
                    }
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    left,
                    right,
                ),
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{}` != `{}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}\n  both: {:?}", format!($($fmt)+), left),
            ));
        }
    }};
}

/// Rejects the current case (it is regenerated, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Picks uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
