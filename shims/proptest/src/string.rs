//! Regex-subset string generation backing `&str` strategies.
//!
//! Supports the constructs the workspace's patterns use: literals,
//! escapes (`\n`, `\t`, `\r`, `\\`, `\-`, …), `.` (any printable,
//! no newline), `\PC` (any printable), character classes with ranges
//! and negation, groups with alternation, and the quantifiers
//! `{n}`, `{m,n}`, `{m,}`, `?`, `*`, `+`. Unsupported syntax panics
//! with the offending pattern, which surfaces immediately in tests.

use crate::test_runner::TestRunner;

/// Cap applied to the open-ended quantifiers `*`, `+`, and `{m,}`.
const UNBOUNDED_CAP: u32 = 8;

/// One parsed regex atom.
enum Node {
    Literal(char),
    /// `.` and `\PC`: any printable character.
    AnyPrintable,
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
    /// A `(...)` group: one of several alternative sequences.
    Group(Vec<Vec<Term>>),
}

enum ClassItem {
    Single(char),
    Range(char, char),
}

impl ClassItem {
    fn contains(&self, c: char) -> bool {
        match self {
            ClassItem::Single(s) => *s == c,
            ClassItem::Range(lo, hi) => (*lo..=*hi).contains(&c),
        }
    }
}

/// An atom plus its quantifier bounds.
struct Term {
    node: Node,
    min: u32,
    max: u32,
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, runner: &mut TestRunner) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0usize;
    let alternatives = parse_alternatives(pattern, &chars, &mut pos, false);
    assert!(
        pos == chars.len(),
        "proptest shim: trailing input in regex {pattern:?} at {pos}"
    );
    let mut out = String::new();
    emit_alternatives(&alternatives, runner, &mut out);
    out
}

/// A printable character: mostly ASCII, occasionally multi-byte, so
/// UTF-8 boundary handling gets exercised. Never a control character.
pub fn printable_char(runner: &mut TestRunner) -> char {
    match runner.below(24) {
        0 => 'é',
        1 => '世',
        2 => 'µ',
        _ => (0x20u8 + runner.below(95) as u8) as char,
    }
}

fn emit_alternatives(alts: &[Vec<Term>], runner: &mut TestRunner, out: &mut String) {
    let seq = &alts[runner.below(alts.len())];
    for term in seq {
        let count = term.min + runner.below((term.max - term.min + 1) as usize) as u32;
        for _ in 0..count {
            emit_node(&term.node, runner, out);
        }
    }
}

fn emit_node(node: &Node, runner: &mut TestRunner, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::AnyPrintable => out.push(printable_char(runner)),
        Node::Class { negated, items } => {
            if *negated {
                for _ in 0..256 {
                    let c = printable_char(runner);
                    if !items.iter().any(|i| i.contains(c)) {
                        out.push(c);
                        return;
                    }
                }
                panic!("proptest shim: negated class rejects all printable chars");
            }
            assert!(!items.is_empty(), "proptest shim: empty character class");
            match &items[runner.below(items.len())] {
                ClassItem::Single(c) => out.push(*c),
                ClassItem::Range(lo, hi) => {
                    let span = *hi as u32 - *lo as u32 + 1;
                    let c = char::from_u32(*lo as u32 + runner.below(span as usize) as u32)
                        .expect("class range stays in valid scalar space");
                    out.push(c);
                }
            }
        }
        Node::Group(alts) => emit_alternatives(alts, runner, out),
    }
}

fn parse_alternatives(
    pattern: &str,
    chars: &[char],
    pos: &mut usize,
    in_group: bool,
) -> Vec<Vec<Term>> {
    let mut alternatives = vec![Vec::new()];
    while *pos < chars.len() {
        match chars[*pos] {
            ')' if in_group => break,
            ')' => panic!("proptest shim: unbalanced ')' in regex {pattern:?}"),
            '|' => {
                *pos += 1;
                alternatives.push(Vec::new());
            }
            _ => {
                let node = parse_atom(pattern, chars, pos);
                let (min, max) = parse_quantifier(pattern, chars, pos);
                alternatives
                    .last_mut()
                    .expect("alternatives never empty")
                    .push(Term { node, min, max });
            }
        }
    }
    alternatives
}

fn parse_atom(pattern: &str, chars: &[char], pos: &mut usize) -> Node {
    let c = chars[*pos];
    *pos += 1;
    match c {
        '(' => {
            let alts = parse_alternatives(pattern, chars, pos, true);
            assert!(
                *pos < chars.len() && chars[*pos] == ')',
                "proptest shim: unterminated group in regex {pattern:?}"
            );
            *pos += 1;
            Node::Group(alts)
        }
        '[' => parse_class(pattern, chars, pos),
        '.' => Node::AnyPrintable,
        '\\' => parse_escape(pattern, chars, pos),
        _ => Node::Literal(c),
    }
}

fn parse_escape(pattern: &str, chars: &[char], pos: &mut usize) -> Node {
    assert!(
        *pos < chars.len(),
        "proptest shim: dangling backslash in regex {pattern:?}"
    );
    let c = chars[*pos];
    *pos += 1;
    match c {
        'n' => Node::Literal('\n'),
        'r' => Node::Literal('\r'),
        't' => Node::Literal('\t'),
        'd' => Node::Class {
            negated: false,
            items: vec![ClassItem::Range('0', '9')],
        },
        'w' => Node::Class {
            negated: false,
            items: vec![
                ClassItem::Range('a', 'z'),
                ClassItem::Range('A', 'Z'),
                ClassItem::Range('0', '9'),
                ClassItem::Single('_'),
            ],
        },
        's' => Node::Class {
            negated: false,
            items: vec![ClassItem::Single(' '), ClassItem::Single('\t')],
        },
        // `\PC` — "not in Unicode category Control", i.e. printable.
        'P' => {
            assert!(
                *pos < chars.len() && chars[*pos] == 'C',
                "proptest shim: only \\PC is supported in regex {pattern:?}"
            );
            *pos += 1;
            Node::AnyPrintable
        }
        other => Node::Literal(other),
    }
}

fn parse_class(pattern: &str, chars: &[char], pos: &mut usize) -> Node {
    let negated = *pos < chars.len() && chars[*pos] == '^';
    if negated {
        *pos += 1;
    }
    let mut items = Vec::new();
    loop {
        assert!(
            *pos < chars.len(),
            "proptest shim: unterminated class in regex {pattern:?}"
        );
        let c = chars[*pos];
        *pos += 1;
        if c == ']' {
            break;
        }
        let lo = if c == '\\' {
            assert!(
                *pos < chars.len(),
                "proptest shim: dangling backslash in class in regex {pattern:?}"
            );
            let esc = chars[*pos];
            *pos += 1;
            match esc {
                'n' => '\n',
                'r' => '\r',
                't' => '\t',
                other => other,
            }
        } else {
            c
        };
        // A `-` between two members forms a range unless it abuts `]`.
        if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
            *pos += 1;
            let hi = chars[*pos];
            *pos += 1;
            assert!(
                lo <= hi,
                "proptest shim: inverted class range in regex {pattern:?}"
            );
            items.push(ClassItem::Range(lo, hi));
        } else {
            items.push(ClassItem::Single(lo));
        }
    }
    Node::Class { negated, items }
}

fn parse_quantifier(pattern: &str, chars: &[char], pos: &mut usize) -> (u32, u32) {
    if *pos >= chars.len() {
        return (1, 1);
    }
    match chars[*pos] {
        '?' => {
            *pos += 1;
            (0, 1)
        }
        '*' => {
            *pos += 1;
            (0, UNBOUNDED_CAP)
        }
        '+' => {
            *pos += 1;
            (1, UNBOUNDED_CAP)
        }
        '{' => {
            *pos += 1;
            let min = parse_number(pattern, chars, pos);
            let max = if chars.get(*pos) == Some(&',') {
                *pos += 1;
                if chars.get(*pos) == Some(&'}') {
                    min + UNBOUNDED_CAP
                } else {
                    parse_number(pattern, chars, pos)
                }
            } else {
                min
            };
            assert!(
                chars.get(*pos) == Some(&'}'),
                "proptest shim: unterminated quantifier in regex {pattern:?}"
            );
            *pos += 1;
            assert!(
                min <= max,
                "proptest shim: inverted quantifier in regex {pattern:?}"
            );
            (min, max)
        }
        _ => (1, 1),
    }
}

fn parse_number(pattern: &str, chars: &[char], pos: &mut usize) -> u32 {
    let start = *pos;
    while chars.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
        *pos += 1;
    }
    assert!(
        *pos > start,
        "proptest shim: expected number in quantifier in regex {pattern:?}"
    );
    chars[start..*pos]
        .iter()
        .collect::<String>()
        .parse()
        .expect("digits parse")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runner() -> TestRunner {
        TestRunner::deterministic("string-tests")
    }

    fn gen_many(pattern: &str, n: usize) -> Vec<String> {
        let mut r = runner();
        (0..n).map(|_| generate(pattern, &mut r)).collect()
    }

    #[test]
    fn class_with_quantifier() {
        for s in gen_many("[a-z]{1,8}", 200) {
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn concatenated_atoms() {
        for s in gen_many("[A-Z][a-z]{1,8}", 100) {
            let mut it = s.chars();
            assert!(it.next().unwrap().is_ascii_uppercase());
            assert!(it.all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn group_with_quantifier() {
        for s in gen_many("[a-z]{2,8}( [a-z]{2,8}){0,6}", 100) {
            for word in s.split(' ') {
                assert!((2..=8).contains(&word.chars().count()), "{s:?}");
            }
        }
    }

    #[test]
    fn negated_class_excludes_members() {
        for s in gen_many("[^,x]{0,32}", 200) {
            assert!(!s.contains(',') && !s.contains('x'), "{s:?}");
        }
    }

    #[test]
    fn printable_escape_and_dot_exclude_controls() {
        for s in gen_many("\\PC{0,64}", 100) {
            assert!(!s.chars().any(char::is_control), "{s:?}");
        }
        for s in gen_many(".{0,16}", 100) {
            assert!(!s.contains('\n'), "{s:?}");
        }
    }

    #[test]
    fn class_escapes_are_literal() {
        for s in gen_many("[a\\-\\\\\"]{1,8}", 300) {
            assert!(
                s.chars().all(|c| matches!(c, 'a' | '-' | '\\' | '"')),
                "{s:?}"
            );
        }
    }

    #[test]
    fn alternation_picks_both_arms() {
        let outputs = gen_many("(ab|cd)", 100);
        assert!(outputs.iter().any(|s| s == "ab"));
        assert!(outputs.iter().any(|s| s == "cd"));
        assert!(outputs.iter().all(|s| s == "ab" || s == "cd"));
    }

    #[test]
    fn exact_and_open_quantifiers() {
        for s in gen_many("x{3}", 20) {
            assert_eq!(s, "xxx");
        }
        for s in gen_many("x+", 100) {
            assert!((1..=UNBOUNDED_CAP as usize).contains(&s.len()));
        }
        for s in gen_many("x{2,}", 100) {
            assert!(s.len() >= 2);
        }
        for s in gen_many("x?", 100) {
            assert!(s.len() <= 1);
        }
    }

    #[test]
    fn unicode_class_members() {
        for s in gen_many("[aé世]{1,4}", 200) {
            assert!(s.chars().all(|c| matches!(c, 'a' | 'é' | '世')), "{s:?}");
        }
    }
}
