//! The `Strategy` trait and the combinators the workspace uses.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRunner;

/// Generates values of `Self::Value`, mirroring `proptest::strategy::Strategy`
/// (minus shrinking: there is no value tree, just fresh draws).
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one fresh value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws
    /// from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Builds recursive structures: `f` receives a strategy for the
    /// shallower levels and returns the strategy for one level deeper.
    /// `_desired_size` and `_expected_branch` are accepted for API
    /// compatibility; depth alone bounds recursion here.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            let deeper = f(current.clone()).boxed();
            // Each level keeps a 50% chance of staying shallow, so
            // generated depths spread over 0..=depth.
            current = Union::new(vec![current, deeper]).boxed();
        }
        current
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T: Debug>(Rc<dyn Strategy<Value = T>>);

impl<T: Debug> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        self.0.new_value(runner)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.new_value(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, runner: &mut TestRunner) -> S2::Value {
        (self.f)(self.inner.new_value(runner)).new_value(runner)
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T: Debug> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self {
            options: self.options.clone(),
        }
    }
}

impl<T: Debug> Union<T> {
    /// Builds the union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        let idx = runner.below(self.options.len());
        self.options[idx].new_value(runner)
    }
}

/// Produces any value of `T` (`any::<T>()`).
pub trait Arbitrary: Debug + Sized {
    /// Draws an unconstrained value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                runner.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        // Finite, symmetric around zero, spanning a useful magnitude
        // range without generating NaN/inf (like proptest's default).
        (runner.unit() - 0.5) * 2.0e9
    }
}

impl Arbitrary for char {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        crate::string::printable_char(runner)
    }
}

/// Strategy returned by [`any`].
pub struct ArbitraryStrategy<T>(PhantomData<T>);

impl<T> Clone for ArbitraryStrategy<T> {
    fn clone(&self) -> Self {
        Self(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// Strategy producing any value of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(PhantomData)
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((runner.next_u64() % span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return runner.next_u64() as $t;
                }
                lo.wrapping_add((runner.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (runner.unit() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (runner.unit() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// Regex-subset string strategy: any `&str` is treated as a pattern.
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, runner: &mut TestRunner) -> String {
        crate::string::generate(self, runner)
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.new_value(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

#[cfg(test)]
mod tests {
    use super::*;

    fn runner() -> TestRunner {
        TestRunner::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = runner();
        for _ in 0..500 {
            assert!((2usize..24).new_value(&mut r) < 24);
            let v = (-5i64..5).new_value(&mut r);
            assert!((-5..5).contains(&v));
            let f = (-1.0e9f64..1.0e9).new_value(&mut r);
            assert!(f.is_finite() && (-1.0e9..1.0e9).contains(&f));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = runner();
        let doubled = (1usize..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(doubled.new_value(&mut r) % 2, 0);
        }
        let nested = (1usize..4).prop_flat_map(|n| crate::collection::vec(0usize..10, n));
        for _ in 0..100 {
            let v = nested.new_value(&mut r);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let mut r = runner();
        let u = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.new_value(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategies_terminate_and_nest() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut r = runner();
        let mut max_depth = 0;
        for _ in 0..300 {
            max_depth = max_depth.max(depth(&strat.new_value(&mut r)));
        }
        assert!(max_depth >= 1, "recursion never nested");
        assert!(max_depth <= 3, "depth bound exceeded: {max_depth}");
    }

    #[test]
    fn tuples_and_just_work() {
        let mut r = runner();
        let (a, b, c) = (Just(7u8), 0usize..3, "x{2}").new_value(&mut r);
        assert_eq!(a, 7);
        assert!(c == "xx");
        assert!(b < 3);
    }
}
