//! Offline shim for the `parking_lot` crate.
//!
//! The build container has no registry access, so the workspace vendors
//! the *subset* of the `parking_lot` API it actually uses, implemented
//! over `std::sync` primitives. Semantics match parking_lot where the
//! workspace relies on them: no lock poisoning (a panicking holder does
//! not poison the lock for siblings — important for the chaos-hardened
//! `parallel_map`, which must survive panicking cells).

use std::sync::{self, TryLockError};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<sync::MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("holder dies");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
