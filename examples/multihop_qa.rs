//! Multi-hop QA walkthrough: generate a HotpotQA-style corpus with
//! conflicting "archive" articles, answer bridge questions with
//! MultiRAG's confidence-filtered two-hop pipeline, and show where the
//! chain-following baseline goes wrong.
//!
//! ```sh
//! cargo run --example multihop_qa
//! ```

use multirag::baselines::multihop::{IrCotMh, MhContext, MultiHopMethod};
use multirag::core::{MultiRagConfig, MultiRagQa};
use multirag::datasets::multihop::{MultiHopFlavor, MultiHopSpec};
use multirag::retrieval::text::normalize_mention;

fn main() {
    let data = MultiHopSpec::small(MultiHopFlavor::Hotpot).generate(7);
    println!(
        "Corpus: {} documents ({} questions). Some creators have conflicting 'archive' mirrors.\n",
        data.corpus.len(),
        data.questions.len()
    );

    let mut multirag = MultiRagQa::new(&data, MultiRagConfig::default(), 7);
    let mut ircot = IrCotMh(MhContext::new(&data, 7));

    let mut mr_correct = 0usize;
    let mut ircot_correct = 0usize;
    let mut shown = 0usize;
    for q in &data.questions {
        let mr = multirag.answer(q);
        let ir = ircot.answer(q);
        let mr_ok = mr
            .answer
            .as_ref()
            .is_some_and(|a| normalize_mention(a) == normalize_mention(&q.answer));
        let ir_ok = ir
            .answer
            .as_ref()
            .is_some_and(|a| normalize_mention(a) == normalize_mention(&q.answer));
        mr_correct += usize::from(mr_ok);
        ircot_correct += usize::from(ir_ok);
        // Show a few cases where consistency checking saved the day.
        if mr_ok && !ir_ok && shown < 3 {
            shown += 1;
            println!("Q: {}", q.text);
            println!("  gold answer: {}", q.answer);
            println!(
                "  MultiRAG:    {:?} ✓ (evidence: {:?})",
                mr.answer, mr.evidence
            );
            println!(
                "  IRCoT:       {:?} ✗ — followed the first chain it found",
                ir.answer
            );
            let archive_title = format!("{} (archive)", q.bridge);
            if data.corpus.iter().any(|d| d.title == archive_title) {
                println!("  note: '{archive_title}' asserts conflicting facts\n");
            } else {
                println!();
            }
        }
    }
    println!(
        "exact-match accuracy over {} questions: MultiRAG {:.0}%, IRCoT {:.0}%",
        data.questions.len(),
        mr_correct as f64 / data.questions.len() as f64 * 100.0,
        ircot_correct as f64 / data.questions.len() as f64 * 100.0,
    );
}
