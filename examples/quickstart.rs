//! Quickstart: generate a small multi-source dataset, build the MKLGP
//! pipeline, and answer a few queries.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use multirag::core::{MklgpPipeline, MultiRagConfig};
use multirag::datasets::movies::MoviesSpec;

fn main() {
    // 1. A synthetic "Movies" benchmark: 13 sources across JSON / KG /
    //    CSV formats, conflicting claims, multi-valued truths.
    let dataset = MoviesSpec::small().generate(42);
    println!(
        "Generated '{}' with {} sources, {} entities, {} triples, {} queries",
        dataset.name,
        dataset.graph.source_count(),
        dataset.graph.entity_count(),
        dataset.graph.triple_count(),
        dataset.queries.len(),
    );

    // 2. The MKLGP pipeline: multi-source line graph + multi-level
    //    confidence computing, with the paper's default thresholds.
    let config = MultiRagConfig::default();
    let mut pipeline = MklgpPipeline::new(&dataset.graph, config, 42);
    if let Some(mlg) = pipeline.mlg() {
        let stats = mlg.stats();
        println!(
            "MLG: {} nodes, {} edges, {} homologous groups, {} isolated",
            stats.nodes, stats.edges, stats.groups, stats.isolated
        );
    }

    // 3. Answer the benchmark queries, reporting confidence diagnostics.
    let mut correct = 0usize;
    for query in &dataset.queries {
        let answer = pipeline.answer(query);
        let verdict = answer
            .fusion_values
            .iter()
            .any(|v| dataset.truth.is_correct(&query.entity, &query.attribute, v));
        if verdict {
            correct += 1;
        }
        println!(
            "\nQ{}: {}\n  trusted answer: {}\n  graph confidence: {}  kept/dropped: {}/{}  correct: {}",
            query.id,
            query.text,
            answer
                .fusion_values
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            answer
                .graph_confidence
                .map(|g| format!("{:.2}", g.value))
                .unwrap_or_else(|| "n/a (isolated)".into()),
            answer.kept.len(),
            answer.dropped,
            verdict,
        );
    }
    println!(
        "\n{}/{} queries answered correctly; simulated LLM time {:.1}s over {} calls",
        correct,
        dataset.queries.len(),
        pipeline.llm().usage().simulated_secs(),
        pipeline.llm().usage().calls,
    );
}
