//! The paper's CA981 case study (§IV-D, Table V): a flight-status query
//! over three conflicting feeds — a structured departure schedule
//! (CSV), semi-structured airline delay codes (JSON), and an
//! unstructured weather report — plus a low-reliability user forum that
//! must be suppressed.
//!
//! ```sh
//! cargo run --example flight_status
//! ```

use multirag::core::{MklgpPipeline, MultiRagConfig};
use multirag::datasets::Query;
use multirag::ingest::{fuse_sources, load_into_graph, RawSource, SourceFormat};
use multirag::kg::Value;
use multirag::llmsim::{MockLlm, Schema};

fn main() {
    // -----------------------------------------------------------
    // 1. Three legitimate feeds + one unreliable forum, in their
    //    native formats.
    // -----------------------------------------------------------
    let sources = vec![
        RawSource {
            name: "airline-schedule.csv".into(),
            domain: "flights".into(),
            format: SourceFormat::Csv,
            content: "flight,status,departure_time,origin,destination\n\
                      CA981,delayed,14:30,Beijing,New York\n\
                      CA982,on-time,09:10,Shanghai,Tokyo\n"
                .into(),
        },
        RawSource {
            name: "airline-ops.json".into(),
            domain: "flights".into(),
            format: SourceFormat::Json,
            content: r#"[
                {"code": "CA981", "status": "delayed", "delay_code": "WX31", "departure_time": "14:30"},
                {"code": "CA982", "status": "on-time", "delay_code": null}
            ]"#
            .into(),
        },
        RawSource {
            name: "weather-report.txt".into(),
            domain: "flights".into(),
            format: SourceFormat::Text,
            content: "Typhoon In-Fa approaches Beijing Capital Airport. \
                      The status of CA981 is delayed. \
                      Authorities expect departures to resume after 14:30."
                .into(),
        },
        RawSource {
            name: "user-forum.json".into(),
            domain: "flights".into(),
            format: SourceFormat::Json,
            content: r#"[{"code": "CA981", "status": "on-time", "departure_time": "12:05"}]"#.into(),
        },
    ];

    // -----------------------------------------------------------
    // 2. Ingest: per-format adapters → JSON-LD records → claims →
    //    provenance-carrying knowledge graph (Eq. 2 fusion).
    // -----------------------------------------------------------
    let fused = fuse_sources(&sources).expect("all feeds parse");
    for (i, adapted) in &fused {
        println!(
            "{}: {} records, {} claims, {} text chunks",
            sources[*i].name,
            adapted.records.len(),
            adapted.claims.len(),
            adapted.text_chunks.len()
        );
    }
    let mut kg = load_into_graph(&sources, &fused).expect("fused indices are in range");

    // Unstructured text goes through the simulated LLM's extraction
    // (the ner.py / triple.py prompt path).
    let mut schema = Schema::new();
    schema.add_entity_verbatim("CA981");
    schema.add_entity_verbatim("CA982");
    schema.add_relation("status");
    schema.add_relation_alias("status", "status");
    let mut llm = MockLlm::new(schema, 7);
    let weather_chunks: Vec<String> = fused
        .iter()
        .filter(|(i, _)| sources[*i].name == "weather-report.txt")
        .flat_map(|(_, a)| a.text_chunks.clone())
        .collect();
    let weather_source = kg
        .source_ids()
        .find(|&s| kg.source_name(s) == "weather-report.txt")
        .expect("registered");
    for chunk in &weather_chunks {
        for triple in llm.extract_triples(chunk) {
            let subject = kg.add_entity(&triple.subject, "flights");
            let predicate = kg.add_relation(&triple.predicate);
            kg.add_triple(subject, predicate, triple.object.clone(), weather_source, 0);
            println!(
                "extracted from weather report: ({}, {}, {})",
                triple.subject, triple.predicate, triple.object
            );
        }
    }

    // -----------------------------------------------------------
    // 3. MKLGP: the forum's conflicting "on-time" claim must lose to
    //    the corroborated "delayed".
    // -----------------------------------------------------------
    let mut pipeline = MklgpPipeline::new(&kg, MultiRagConfig::default(), 7);
    let query = Query {
        id: 0,
        text: "What is the status of CA981?".into(),
        entity: "CA981".into(),
        attribute: "status".into(),
        gold: vec![Value::from("delayed")],
    };
    let answer = pipeline.answer(&query);
    println!("\nQuery: {}", query.text);
    if let Some(gc) = answer.graph_confidence {
        println!(
            "graph confidence of the homologous subgraph: {:.2}",
            gc.value
        );
    }
    for node in &answer.kept {
        println!(
            "  kept  {:>18} from {:<22} C(v)={:.2} (consistency {:.2}, authority {:.2})",
            node.value.to_string(),
            kg.source_name(node.source),
            node.confidence,
            node.consistency,
            node.authority,
        );
    }
    println!("  dropped {} low-confidence node(s)", answer.dropped);
    println!(
        "\nTrustworthy answer: {}",
        answer
            .fusion_values
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    assert!(
        answer
            .fusion_values
            .iter()
            .any(|v| v.answer_key() == Value::from("delayed").answer_key()),
        "the corroborated 'delayed' status must win"
    );
    println!("The inconsistent forum report was suppressed. ✓");
}
