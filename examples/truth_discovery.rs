//! Truth discovery shoot-out: run every fusion method — classical
//! (MV, TruthFinder, LTM, FusionQuery) and LLM-driven (CoT, Standard
//! RAG, IRCoT, ChatKBQA, MDQA, RQ-RAG, MetaRAG) — against MultiRAG on
//! the sparse Stocks benchmark, the regime the paper's Challenge 1
//! targets.
//!
//! ```sh
//! cargo run --release --example truth_discovery
//! ```

use multirag::baselines::chatkbqa::ChatKbqa;
use multirag::baselines::common::FusionMethod;
use multirag::baselines::cot::Cot;
use multirag::baselines::fusionquery::FusionQuery;
use multirag::baselines::ircot::IrCot;
use multirag::baselines::ltm::Ltm;
use multirag::baselines::mdqa::Mdqa;
use multirag::baselines::metarag::MetaRag;
use multirag::baselines::mv::MajorityVote;
use multirag::baselines::rqrag::RqRag;
use multirag::baselines::standard_rag::StandardRag;
use multirag::baselines::truthfinder::TruthFinder;
use multirag::core::MultiRagConfig;
use multirag::datasets::spec::Scale;
use multirag::datasets::stocks::StocksSpec;
use multirag::eval::{run_fusion_method, run_multirag};

fn main() {
    let seed = 42;
    // A mid-size run: large enough for stable comparisons, small enough
    // to finish in seconds.
    let data = StocksSpec::at_scale(Scale {
        entities: 200,
        queries: 60,
    })
    .generate(seed);
    println!(
        "Stocks benchmark: {} sources, {} triples, {} queries (sparse: mean degree {:.1})\n",
        data.graph.source_count(),
        data.graph.triple_count(),
        data.queries.len(),
        data.graph.stats().mean_degree,
    );

    let mut methods: Vec<Box<dyn FusionMethod>> = vec![
        Box::new(MajorityVote),
        Box::new(TruthFinder::default()),
        Box::new(Ltm::default()),
        Box::new(FusionQuery::default()),
        Box::new(Cot::new(seed)),
        Box::new(StandardRag::new(seed)),
        Box::new(IrCot::new(seed)),
        Box::new(ChatKbqa::new(seed)),
        Box::new(Mdqa::new(seed)),
        Box::new(RqRag::new(seed)),
        Box::new(MetaRag::new(seed)),
    ];

    println!(
        "{:<14} {:>6} {:>6} {:>6} {:>9} {:>9}",
        "method", "F1%", "P%", "R%", "time/s", "halluc%"
    );
    for method in &mut methods {
        let row = run_fusion_method(&data, &data.graph, method.as_mut());
        println!(
            "{:<14} {:>6.1} {:>6.1} {:>6.1} {:>9.2} {:>9.1}",
            row.name,
            row.f1,
            row.precision,
            row.recall,
            row.total_time_s(),
            row.hallucination_rate * 100.0
        );
    }
    let row = run_multirag(&data, &data.graph, MultiRagConfig::default(), seed);
    println!(
        "{:<14} {:>6.1} {:>6.1} {:>6.1} {:>9.2} {:>9.1}   ← ours",
        row.name,
        row.f1,
        row.precision,
        row.recall,
        row.total_time_s(),
        row.hallucination_rate * 100.0
    );
}
