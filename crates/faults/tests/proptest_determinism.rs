//! Determinism proptests for the fault plan and retry/backoff: every
//! decision is a pure function of `(seed, key)`, independent of probe
//! order, and bounded where the policy promises bounds.

use multirag_faults::{FaultPlan, RetryPolicy};
use proptest::prelude::*;

proptest! {
    /// Backoff delays replay bit-identically for the same coordinates.
    #[test]
    fn backoff_delays_are_replayable(
        seed in any::<u64>(),
        key in "[a-z0-9:_]{1,16}",
        attempt in 0u32..8,
    ) {
        let policy = RetryPolicy::default();
        let a = policy.delay_before_attempt_ms(seed, &key, attempt);
        let b = policy.delay_before_attempt_ms(seed, &key, attempt);
        prop_assert_eq!(a.to_bits(), b.to_bits());
    }

    /// Delays stay inside the jittered envelope: zero before the first
    /// attempt, otherwise within `capped * (1 ± jitter)`.
    #[test]
    fn backoff_delays_respect_bounds(
        seed in any::<u64>(),
        key in "[a-z]{1,12}",
        attempt in 0u32..8,
    ) {
        let policy = RetryPolicy::default();
        let delay = policy.delay_before_attempt_ms(seed, &key, attempt);
        if attempt == 0 {
            prop_assert_eq!(delay, 0.0);
        } else {
            let capped = (policy.base_delay_ms
                * policy.multiplier.powi(attempt as i32 - 1))
                .min(policy.max_delay_ms);
            prop_assert!(delay >= capped * (1.0 - policy.jitter) - 1e-9);
            prop_assert!(delay <= capped * (1.0 + policy.jitter) + 1e-9);
        }
    }

    /// Fault decisions are order-independent: probing sources in any
    /// order yields the same per-source verdicts.
    #[test]
    fn outage_decisions_are_order_independent(
        seed in any::<u64>(),
        rate in 0.0f64..1.0,
        mut names in proptest::collection::vec("[a-z]{1,10}", 1..8),
    ) {
        let plan = FaultPlan::uniform(seed, rate);
        let forward: Vec<bool> = names.iter().map(|n| plan.source_down(n)).collect();
        names.reverse();
        let mut backward: Vec<bool> = names.iter().map(|n| plan.source_down(n)).collect();
        backward.reverse();
        prop_assert_eq!(forward, backward);
    }

    /// Rate endpoints behave like contracts: 0 never faults, 1 always
    /// takes the source down.
    #[test]
    fn rate_endpoints_are_exact(seed in any::<u64>(), name in "[a-z]{1,10}") {
        prop_assert!(!FaultPlan::uniform(seed, 0.0).source_down(&name));
        prop_assert!(FaultPlan::uniform(seed, 1.0).source_down(&name));
        prop_assert!(FaultPlan::healthy(seed).is_healthy());
    }

    /// The same plan replays the same corruption verdict for the same
    /// record coordinates.
    #[test]
    fn corruption_verdicts_replay(
        seed in any::<u64>(),
        rate in 0.0f64..1.0,
        source in "[a-z]{1,10}",
        record in "[a-z0-9]{1,10}",
    ) {
        let plan = FaultPlan::uniform(seed, rate);
        prop_assert_eq!(
            plan.record_corruption(&source, &record),
            plan.record_corruption(&source, &record)
        );
    }
}
