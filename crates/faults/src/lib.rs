//! Deterministic fault injection for chaos-testing the MultiRAG
//! pipeline.
//!
//! The crate is the single source of truth for *what goes wrong* in a
//! chaos run: which sources are down, which records arrive corrupted or
//! stale, and which simulated LLM calls fail or stall. Every decision
//! is a pure function of `(seed, key)` — no global state, no wall
//! clock — so a fixed seed replays the exact same failure schedule,
//! which is what lets the chaos harness assert bit-identical output
//! across runs.
//!
//! Layering: this crate depends on nothing inside the workspace;
//! `multirag-llmsim`, `multirag-core`, and the harness crates depend on
//! it and consult the [`FaultPlan`] at their own injection points.

mod corrupt;
mod plan;
mod retry;

pub use corrupt::{bit_flip, corrupt_text, truncate, CorruptionKind};
pub use plan::{FaultDecision, FaultKind, FaultPlan, SourceFaults};
pub use retry::{ms_to_us, us_to_ms, BackoffSchedule, RetryOutcome, RetryPolicy};

/// SplitMix64 finalizer — the primitive every seeded draw builds on.
/// Mirrors `multirag_llmsim::determinism::mix` (duplicated here so the
/// fault layer stays dependency-free and usable below llmsim).
pub fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic 64-bit draw keyed by `(seed, key)`.
pub fn draw(seed: u64, key: &str) -> u64 {
    let mut h = mix(seed ^ 0x6661_756C_7473_2121); // "faults!!"
    for b in key.bytes() {
        h = mix(h ^ b as u64);
    }
    h
}

/// Deterministic uniform draw in `[0, 1)` keyed by `(seed, key)`.
pub fn unit(seed: u64, key: &str) -> f64 {
    (draw(seed, key) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Deterministic Bernoulli trial keyed by `(seed, key)`.
pub fn bernoulli(seed: u64, key: &str, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    unit(seed, key) < p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic() {
        assert_eq!(draw(7, "outage:src-3"), draw(7, "outage:src-3"));
        assert_ne!(draw(7, "outage:src-3"), draw(8, "outage:src-3"));
        assert_ne!(draw(7, "outage:src-3"), draw(7, "outage:src-4"));
    }

    #[test]
    fn unit_in_range() {
        for i in 0..1000 {
            let u = unit(42, &format!("k{i}"));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bernoulli_edges_and_rate() {
        assert!(!bernoulli(1, "k", 0.0));
        assert!(bernoulli(1, "k", 1.0));
        let hits = (0..10_000)
            .filter(|i| bernoulli(9, &format!("b{i}"), 0.2))
            .count();
        assert!((1_500..2_500).contains(&hits), "hits={hits}");
    }
}
