//! Deterministic text-damage helpers applied to raw source payloads.

use crate::draw;

/// The concrete damage a corrupted record receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorruptionKind {
    /// Random bytes replaced throughout the payload.
    BitFlip,
    /// The payload cut off mid-record.
    Truncation,
}

/// Applies `kind` to `text`, keyed so the damage replays exactly.
pub fn corrupt_text(kind: CorruptionKind, seed: u64, key: &str, text: &str) -> String {
    match kind {
        CorruptionKind::BitFlip => bit_flip(seed, key, text),
        CorruptionKind::Truncation => truncate(seed, key, text),
    }
}

/// Replaces ~2% of bytes (at least one) with seeded garbage. Works on
/// the raw byte level — the result may be invalid UTF-8 re-encoded
/// lossily, which is exactly the kind of damage a lenient parser must
/// survive.
pub fn bit_flip(seed: u64, key: &str, text: &str) -> String {
    if text.is_empty() {
        return String::new();
    }
    let mut bytes = text.as_bytes().to_vec();
    let flips = (bytes.len() / 50).max(1);
    for i in 0..flips {
        let roll = draw(seed, &format!("flip:{key}:{i}"));
        let pos = (roll % bytes.len() as u64) as usize;
        bytes[pos] ^= (roll >> 32) as u8 | 1; // never a zero-bit flip
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Cuts the payload at a seeded point in its second half, landing on a
/// char boundary so the result is a prefix a parser can begin on but
/// never finish.
pub fn truncate(seed: u64, key: &str, text: &str) -> String {
    if text.len() < 2 {
        return String::new();
    }
    let roll = draw(seed, &format!("trunc:{key}"));
    let half = text.len() / 2;
    let mut cut = half + (roll % half.max(1) as u64) as usize;
    while cut < text.len() && !text.is_char_boundary(cut) {
        cut += 1;
    }
    text[..cut.min(text.len())].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_flip_changes_content_deterministically() {
        let original = "entity,attribute,value\nInception,year,2010\n";
        let a = bit_flip(7, "rec1", original);
        let b = bit_flip(7, "rec1", original);
        assert_eq!(a, b);
        assert_ne!(a, original);
    }

    #[test]
    fn different_keys_damage_differently() {
        let original = "a longer payload with enough bytes to flip differently";
        assert_ne!(bit_flip(7, "k1", original), bit_flip(7, "k2", original));
    }

    #[test]
    fn truncation_is_a_strict_prefix() {
        let original = "0123456789abcdef0123456789abcdef";
        let cut = truncate(3, "rec", original);
        assert!(cut.len() < original.len());
        assert!(cut.len() >= original.len() / 2);
        assert!(original.starts_with(&cut));
    }

    #[test]
    fn truncation_respects_utf8_boundaries() {
        let original = "é世µ".repeat(20);
        let cut = truncate(5, "rec", &original);
        assert!(cut.is_char_boundary(cut.len()));
        assert!(original.starts_with(&cut));
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        assert_eq!(bit_flip(1, "k", ""), "");
        assert_eq!(truncate(1, "k", ""), "");
        assert_eq!(truncate(1, "k", "x"), "");
    }

    #[test]
    fn corrupt_text_dispatches() {
        let original = "abcdefghij".repeat(10);
        assert_ne!(
            corrupt_text(CorruptionKind::BitFlip, 2, "k", &original),
            original
        );
        assert!(original.starts_with(&corrupt_text(CorruptionKind::Truncation, 2, "k", &original)));
    }
}
