//! Retry policy with seeded exponential backoff and deadline budgets.
//!
//! Delays are *specified* in simulated milliseconds (the MockLlm cost
//! model's unit) but *accounted* in integer simulated microseconds —
//! the serve simulator's convention — so deadline checks never drift
//! from float summation. Callers accumulate the returned totals into
//! their simulated-latency meters instead of sleeping, which keeps
//! chaos runs fast and bit-identical.

use crate::unit;

/// Quantizes a simulated-millisecond cost to integer microseconds, the
/// unit every deadline and latency ledger accumulates in.
pub fn ms_to_us(ms: f64) -> u64 {
    if !ms.is_finite() || ms <= 0.0 {
        return 0;
    }
    (ms * 1_000.0).round() as u64
}

/// Converts an integer-microsecond total back to milliseconds for
/// reporting. Exact for any total below 2^53 µs (~285 years).
pub fn us_to_ms(us: u64) -> f64 {
    us as f64 / 1_000.0
}

/// One resolved backoff schedule: the delay to wait before each retry.
#[derive(Debug, Clone, PartialEq)]
pub struct BackoffSchedule {
    /// `delays_ms[i]` is the wait before retry attempt `i + 1`.
    pub delays_ms: Vec<f64>,
}

impl BackoffSchedule {
    /// Total simulated backoff in integer microseconds. Summing the
    /// quantized delays (rather than quantizing a float sum) keeps the
    /// total consistent with what [`RetryPolicy::run`] charges per
    /// attempt.
    pub fn total_us(&self) -> u64 {
        self.delays_ms.iter().map(|&d| ms_to_us(d)).sum()
    }
}

/// How a retried call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryOutcome {
    /// Succeeded on the given attempt (0 = first try).
    Succeeded { attempt: u32 },
    /// All attempts failed.
    Exhausted { attempts: u32 },
    /// The deadline budget ran out before the attempts did.
    DeadlineExceeded { attempts: u32 },
}

impl RetryOutcome {
    /// True for [`RetryOutcome::Succeeded`].
    pub fn is_success(&self) -> bool {
        matches!(self, RetryOutcome::Succeeded { .. })
    }
}

/// Seeded exponential-backoff retry policy with a per-call deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts including the first (must be ≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in simulated ms.
    pub base_delay_ms: f64,
    /// Multiplier applied per retry (2.0 = classic doubling).
    pub multiplier: f64,
    /// Upper bound on any single delay, in simulated ms.
    pub max_delay_ms: f64,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a seeded
    /// factor in `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Total simulated-time budget for the call, attempts included.
    /// `f64::INFINITY` disables the deadline.
    pub deadline_ms: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_delay_ms: 100.0,
            multiplier: 2.0,
            max_delay_ms: 2_000.0,
            jitter: 0.25,
            deadline_ms: f64::INFINITY,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt, no backoff).
    pub fn no_retries() -> Self {
        Self {
            max_attempts: 1,
            base_delay_ms: 0.0,
            multiplier: 1.0,
            max_delay_ms: 0.0,
            jitter: 0.0,
            deadline_ms: f64::INFINITY,
        }
    }

    /// Sets the deadline budget, builder-style.
    pub fn with_deadline_ms(mut self, deadline_ms: f64) -> Self {
        self.deadline_ms = deadline_ms;
        self
    }

    /// The backoff delay before retry attempt `attempt` (1-based: the
    /// wait after the `attempt`-th failure), jittered by `(seed, key)`.
    pub fn delay_before_attempt_ms(&self, seed: u64, key: &str, attempt: u32) -> f64 {
        if attempt == 0 {
            return 0.0;
        }
        let exp = self.base_delay_ms * self.multiplier.powi(attempt as i32 - 1);
        let capped = exp.min(self.max_delay_ms);
        let jitter = self.jitter.clamp(0.0, 1.0);
        let scale = 1.0 - jitter + 2.0 * jitter * unit(seed, &format!("backoff:{key}:a{attempt}"));
        capped * scale
    }

    /// Resolves the full schedule for a call that fails `failures`
    /// times — what the latency meter charges for the retries.
    pub fn schedule(&self, seed: u64, key: &str, failures: u32) -> BackoffSchedule {
        let retries = failures.min(self.max_attempts.saturating_sub(1));
        BackoffSchedule {
            delays_ms: (1..=retries)
                .map(|a| self.delay_before_attempt_ms(seed, key, a))
                .collect(),
        }
    }

    /// The deadline budget in integer microseconds; an infinite (or
    /// absent) deadline maps to `u64::MAX`.
    pub fn deadline_us(&self) -> u64 {
        if self.deadline_ms.is_finite() {
            ms_to_us(self.deadline_ms)
        } else {
            u64::MAX
        }
    }

    /// Drives `attempt_cost` until success, exhaustion, or deadline.
    ///
    /// `attempt_cost(attempt)` returns `Some(cost_ms)` when the attempt
    /// succeeds after `cost_ms` of simulated work, or `None` when it
    /// fails. Returns the outcome plus the *total* simulated time spent
    /// (work + backoff) — failed attempts still cost their backoff.
    /// Time is accumulated in integer microseconds (each charge
    /// quantized via [`ms_to_us`]) so deadline checks are exact; the
    /// returned total is that integer ledger converted back to ms.
    pub fn run<F>(&self, seed: u64, key: &str, mut attempt_cost: F) -> (RetryOutcome, f64)
    where
        F: FnMut(u32) -> Option<f64>,
    {
        let mut elapsed_us: u64 = 0;
        let deadline_us = self.deadline_us();
        let attempts = self.max_attempts.max(1);
        for attempt in 0..attempts {
            let backoff_us = ms_to_us(self.delay_before_attempt_ms(seed, key, attempt));
            if elapsed_us.saturating_add(backoff_us) > deadline_us {
                return (
                    RetryOutcome::DeadlineExceeded { attempts: attempt },
                    us_to_ms(elapsed_us),
                );
            }
            elapsed_us += backoff_us;
            match attempt_cost(attempt) {
                Some(cost_ms) => {
                    elapsed_us += ms_to_us(cost_ms);
                    return (RetryOutcome::Succeeded { attempt }, us_to_ms(elapsed_us));
                }
                None => {
                    // A failed attempt still burns nominal work time
                    // before the failure surfaces.
                    elapsed_us += ms_to_us(self.base_delay_ms.min(self.max_delay_ms));
                    if elapsed_us > deadline_us {
                        return (
                            RetryOutcome::DeadlineExceeded {
                                attempts: attempt + 1,
                            },
                            us_to_ms(elapsed_us),
                        );
                    }
                }
            }
        }
        (RetryOutcome::Exhausted { attempts }, us_to_ms(elapsed_us))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempt_zero_has_no_delay() {
        let p = RetryPolicy::default();
        assert_eq!(p.delay_before_attempt_ms(1, "k", 0), 0.0);
    }

    #[test]
    fn delays_grow_exponentially_within_jitter() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let d1 = p.delay_before_attempt_ms(1, "k", 1);
        let d2 = p.delay_before_attempt_ms(1, "k", 2);
        let d3 = p.delay_before_attempt_ms(1, "k", 3);
        assert_eq!(d1, 100.0);
        assert_eq!(d2, 200.0);
        assert_eq!(d3, 400.0);
    }

    #[test]
    fn delays_cap_at_max() {
        let p = RetryPolicy {
            jitter: 0.0,
            max_attempts: 10,
            ..RetryPolicy::default()
        };
        assert_eq!(p.delay_before_attempt_ms(1, "k", 9), 2_000.0);
    }

    #[test]
    fn jitter_is_seeded_and_bounded() {
        let p = RetryPolicy::default();
        let d = p.delay_before_attempt_ms(5, "call", 1);
        assert_eq!(d, p.delay_before_attempt_ms(5, "call", 1));
        assert!((75.0..=125.0).contains(&d), "d={d}");
        assert_ne!(d, p.delay_before_attempt_ms(6, "call", 1));
    }

    #[test]
    fn run_succeeds_first_try_without_backoff() {
        let p = RetryPolicy::default();
        let (outcome, ms) = p.run(1, "k", |_| Some(120.0));
        assert_eq!(outcome, RetryOutcome::Succeeded { attempt: 0 });
        assert_eq!(ms, 120.0);
    }

    #[test]
    fn run_retries_until_success() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let (outcome, ms) = p.run(1, "k", |attempt| (attempt == 2).then_some(50.0));
        assert_eq!(outcome, RetryOutcome::Succeeded { attempt: 2 });
        // Two failed attempts (100ms nominal each) + backoffs 100 + 200
        // + final 50ms of work.
        assert!(
            (ms - (100.0 + 100.0 + 100.0 + 200.0 + 50.0)).abs() < 1e-9,
            "ms={ms}"
        );
    }

    #[test]
    fn run_exhausts_after_max_attempts() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let (outcome, _) = p.run(1, "k", |_| {
            calls += 1;
            None
        });
        assert_eq!(outcome, RetryOutcome::Exhausted { attempts: 3 });
        assert_eq!(calls, 3);
    }

    #[test]
    fn deadline_cuts_retries_short() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        }
        .with_deadline_ms(150.0);
        let (outcome, ms) = p.run(1, "k", |_| None);
        assert!(
            matches!(outcome, RetryOutcome::DeadlineExceeded { .. }),
            "outcome={outcome:?}"
        );
        assert!(ms <= 150.0 + 100.0, "ms={ms}");
    }

    #[test]
    fn schedule_totals_match_individual_delays() {
        let p = RetryPolicy::default();
        let sched = p.schedule(3, "call", 2);
        assert_eq!(sched.delays_ms.len(), 2);
        let expected: u64 = (1..=2)
            .map(|a| ms_to_us(p.delay_before_attempt_ms(3, "call", a)))
            .sum();
        assert_eq!(sched.total_us(), expected);
    }

    #[test]
    fn microsecond_quantization_round_trips_exactly() {
        assert_eq!(ms_to_us(0.0), 0);
        assert_eq!(ms_to_us(-5.0), 0);
        assert_eq!(ms_to_us(f64::INFINITY), 0);
        assert_eq!(ms_to_us(1.0), 1_000);
        assert_eq!(ms_to_us(0.0004), 0, "sub-half-µs rounds down");
        assert_eq!(ms_to_us(0.0006), 1, "over-half-µs rounds up");
        assert_eq!(us_to_ms(1_234), 1.234);
        // The float-drift poster child: 0.1ms summed 10× in f64 is not
        // 1.0, but the integer ledger is exactly 1 000µs.
        let drift: f64 = (0..10).map(|_| 0.1).sum();
        assert_ne!(drift, 1.0);
        assert_eq!((0..10).map(|_| ms_to_us(0.1)).sum::<u64>(), 1_000);
    }

    #[test]
    fn run_elapsed_is_an_exact_microsecond_total() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let (_, ms) = p.run(1, "k", |attempt| (attempt == 2).then_some(50.0));
        // The returned ms is a µs integer divided by 1 000 — no float
        // residue from summing the five charges.
        assert_eq!(ms_to_us(ms), 550_000);
        assert_eq!(ms, 550.0);
    }

    #[test]
    fn infinite_deadline_maps_to_umax() {
        assert_eq!(RetryPolicy::default().deadline_us(), u64::MAX);
        assert_eq!(
            RetryPolicy::default().with_deadline_ms(150.0).deadline_us(),
            150_000
        );
    }

    #[test]
    fn no_retries_policy_is_single_shot() {
        let p = RetryPolicy::no_retries();
        let mut calls = 0;
        let (outcome, _) = p.run(1, "k", |_| {
            calls += 1;
            None
        });
        assert_eq!(calls, 1);
        assert_eq!(outcome, RetryOutcome::Exhausted { attempts: 1 });
    }
}
