//! The seeded fault plan: a pure, replayable schedule of failures.

use crate::corrupt::CorruptionKind;
use crate::{bernoulli, draw, unit};

/// What kind of fault a probe can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The whole source is unreachable for this run.
    SourceOutage,
    /// A record's payload is damaged (bit flips or truncation).
    RecordCorruption,
    /// A record carries outdated data and should be distrusted.
    StaleRecord,
    /// A simulated LLM call fails outright.
    LlmFailure,
    /// A simulated LLM call succeeds but takes a latency hit.
    LlmLatencySpike,
    /// A support-grader call fails, degrading the answer loop to its
    /// single-pass verdict.
    GraderFailure,
    /// A whole serving node is unreachable for one outage window.
    NodeOutage,
}

/// Outcome of probing the plan at one injection point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultDecision {
    /// Proceed normally.
    Healthy,
    /// Inject the given fault.
    Inject(FaultKind),
}

impl FaultDecision {
    /// True when a fault fires.
    pub fn is_fault(&self) -> bool {
        matches!(self, FaultDecision::Inject(_))
    }
}

/// Per-source fault summary, precomputed for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceFaults {
    /// The probed source name.
    pub source: String,
    /// Whether the source is down for the whole run.
    pub outage: bool,
}

/// A deterministic, seeded schedule of faults.
///
/// All rates are probabilities in `[0, 1]`. The plan holds no mutable
/// state: every query is answered by hashing `(seed, kind, key)`, so
/// probes are order-independent and replayable.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every draw this plan makes.
    pub seed: u64,
    /// Probability that a given source is down for the whole run.
    pub outage_rate: f64,
    /// Probability that a given record arrives corrupted.
    pub corruption_rate: f64,
    /// Probability that a given record is stale.
    pub staleness_rate: f64,
    /// Probability that a given LLM call fails.
    pub llm_failure_rate: f64,
    /// Probability that a given LLM call takes a latency spike.
    pub llm_latency_spike_rate: f64,
    /// Probability that a support-grader call fails (a separate key
    /// family from generation so chaos sweeps can kill graders without
    /// touching generators, and vice versa).
    pub grader_failure_rate: f64,
    /// Probability that a given serving node is down for a given
    /// outage window (`(node, window)` pairs re-roll independently, so
    /// outages are transient, not permanent).
    pub node_outage_rate: f64,
}

impl FaultPlan {
    /// A plan that never injects anything.
    pub fn healthy(seed: u64) -> Self {
        Self {
            seed,
            outage_rate: 0.0,
            corruption_rate: 0.0,
            staleness_rate: 0.0,
            llm_failure_rate: 0.0,
            llm_latency_spike_rate: 0.0,
            grader_failure_rate: 0.0,
            node_outage_rate: 0.0,
        }
    }

    /// A plan applying `rate` uniformly to every fault channel — the
    /// single-knob sweep the chaos harness uses. LLM latency spikes run
    /// at twice the base rate since they are recoverable.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        Self {
            seed,
            outage_rate: rate,
            corruption_rate: rate,
            staleness_rate: rate,
            llm_failure_rate: rate,
            llm_latency_spike_rate: (2.0 * rate).min(1.0),
            grader_failure_rate: rate,
            node_outage_rate: rate,
        }
    }

    /// A query-time-only brownout: LLM failures, latency spikes (at
    /// twice the base rate, like [`FaultPlan::uniform`]) and source
    /// outages fire, while the ingest-time channels (corruption,
    /// staleness) and the grader stay healthy. This is the serving-SLO
    /// fault leg: the knowledge base is intact, but answering it is
    /// degraded — abstains and latency spikes burn the error budget
    /// without perturbing what was indexed.
    pub fn brownout(seed: u64, rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        Self {
            seed,
            outage_rate: rate,
            corruption_rate: 0.0,
            staleness_rate: 0.0,
            llm_failure_rate: rate,
            llm_latency_spike_rate: (2.0 * rate).min(1.0),
            grader_failure_rate: 0.0,
            node_outage_rate: 0.0,
        }
    }

    /// A cluster-only plan: serving nodes drop out for whole outage
    /// windows while every record-, source-, and LLM-level channel
    /// stays healthy. This is the failover leg for sharded serving —
    /// the knowledge base and the model are fine, but the node owning
    /// a slot may be gone and the router must take a replica instead.
    pub fn node_outages(seed: u64, rate: f64) -> Self {
        Self {
            node_outage_rate: rate.clamp(0.0, 1.0),
            ..Self::healthy(seed)
        }
    }

    /// True when no channel can ever fire.
    pub fn is_healthy(&self) -> bool {
        self.outage_rate <= 0.0
            && self.corruption_rate <= 0.0
            && self.staleness_rate <= 0.0
            && self.llm_failure_rate <= 0.0
            && self.llm_latency_spike_rate <= 0.0
            && self.grader_failure_rate <= 0.0
            && self.node_outage_rate <= 0.0
    }

    /// Is `source` down for this entire run?
    pub fn source_down(&self, source: &str) -> bool {
        bernoulli(self.seed, &format!("outage:{source}"), self.outage_rate)
    }

    /// Probes record-level corruption for `record_key` within `source`.
    /// Returns the concrete corruption to apply, if any.
    pub fn record_corruption(&self, source: &str, record_key: &str) -> Option<CorruptionKind> {
        let key = format!("corrupt:{source}:{record_key}");
        if !bernoulli(self.seed, &key, self.corruption_rate) {
            return None;
        }
        // Split the surviving draw space between damage modes.
        let pick = draw(self.seed, &format!("{key}:mode"));
        Some(if pick & 1 == 0 {
            CorruptionKind::BitFlip
        } else {
            CorruptionKind::Truncation
        })
    }

    /// Is the record stale (outdated value that should be distrusted)?
    pub fn record_stale(&self, source: &str, record_key: &str) -> bool {
        bernoulli(
            self.seed,
            &format!("stale:{source}:{record_key}"),
            self.staleness_rate,
        )
    }

    /// Probes one simulated LLM call attempt. `call_key` identifies the
    /// logical call; `attempt` distinguishes retries so a retried call
    /// re-rolls rather than failing forever.
    pub fn llm_call(&self, call_key: &str, attempt: u32) -> FaultDecision {
        let key = format!("llm:{call_key}:a{attempt}");
        if bernoulli(self.seed, &format!("{key}:fail"), self.llm_failure_rate) {
            return FaultDecision::Inject(FaultKind::LlmFailure);
        }
        if bernoulli(
            self.seed,
            &format!("{key}:spike"),
            self.llm_latency_spike_rate,
        ) {
            return FaultDecision::Inject(FaultKind::LlmLatencySpike);
        }
        FaultDecision::Healthy
    }

    /// Probes one support-grader call attempt. Grader faults live in
    /// their own `grader:` key family so a dead grader and a dead
    /// generator are independent events even for the same query.
    pub fn grader_call(&self, call_key: &str, attempt: u32) -> FaultDecision {
        let key = format!("grader:{call_key}:a{attempt}");
        if bernoulli(self.seed, &format!("{key}:fail"), self.grader_failure_rate) {
            return FaultDecision::Inject(FaultKind::GraderFailure);
        }
        FaultDecision::Healthy
    }

    /// Is serving node `node` down for outage window `window`? Each
    /// `(node, window)` pair rolls independently, so a node that is
    /// down in one window can be back in the next — outages are
    /// transient windows, not run-long deaths like
    /// [`FaultPlan::source_down`].
    pub fn node_outage(&self, node: u32, window: u64) -> bool {
        bernoulli(
            self.seed,
            &format!("node:{node}:w{window}"),
            self.node_outage_rate,
        )
    }

    /// Latency multiplier for a spiking call, in `[4, 16)`. Keyed like
    /// [`FaultPlan::llm_call`] so the spike size is replayable.
    pub fn latency_spike_factor(&self, call_key: &str, attempt: u32) -> f64 {
        4.0 + 12.0 * unit(self.seed, &format!("llm:{call_key}:a{attempt}:mag"))
    }

    /// Summarises the plan's verdict for each named source.
    pub fn source_report<'a>(
        &self,
        sources: impl IntoIterator<Item = &'a str>,
    ) -> Vec<SourceFaults> {
        sources
            .into_iter()
            .map(|name| SourceFaults {
                source: name.to_string(),
                outage: self.source_down(name),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_plan_never_fires() {
        let plan = FaultPlan::healthy(3);
        assert!(plan.is_healthy());
        for i in 0..200 {
            let src = format!("s{i}");
            assert!(!plan.source_down(&src));
            assert!(plan.record_corruption(&src, "r").is_none());
            assert!(!plan.record_stale(&src, "r"));
            assert_eq!(plan.llm_call(&src, 0), FaultDecision::Healthy);
        }
    }

    #[test]
    fn decisions_are_replayable() {
        let plan = FaultPlan::uniform(11, 0.3);
        let again = FaultPlan::uniform(11, 0.3);
        for i in 0..100 {
            let src = format!("s{i}");
            assert_eq!(plan.source_down(&src), again.source_down(&src));
            assert_eq!(
                plan.record_corruption(&src, "rec"),
                again.record_corruption(&src, "rec")
            );
            assert_eq!(plan.llm_call(&src, 2), again.llm_call(&src, 2));
        }
    }

    #[test]
    fn different_seeds_schedule_different_outages() {
        let a = FaultPlan::uniform(1, 0.5);
        let b = FaultPlan::uniform(2, 0.5);
        let differs = (0..64).any(|i| {
            let src = format!("s{i}");
            a.source_down(&src) != b.source_down(&src)
        });
        assert!(differs);
    }

    #[test]
    fn rates_track_probability() {
        let plan = FaultPlan::uniform(5, 0.25);
        let downs = (0..4000)
            .filter(|i| plan.source_down(&format!("s{i}")))
            .count();
        assert!((800..1200).contains(&downs), "downs={downs}");
    }

    #[test]
    fn retries_reroll_llm_failures() {
        let plan = FaultPlan {
            llm_latency_spike_rate: 0.0,
            ..FaultPlan::uniform(13, 0.5)
        };
        // With per-attempt rerolls, some call that fails at attempt 0
        // must succeed at a later attempt.
        let recovered = (0..64).any(|i| {
            let key = format!("call{i}");
            plan.llm_call(&key, 0) == FaultDecision::Inject(FaultKind::LlmFailure)
                && plan.llm_call(&key, 1) == FaultDecision::Healthy
        });
        assert!(recovered);
    }

    #[test]
    fn grader_faults_are_independent_of_generator_faults() {
        let plan = FaultPlan::uniform(29, 0.5);
        // Same call key, same attempt: the two channels draw from
        // different key families, so their verdicts must diverge for
        // some key at a 50% rate.
        let diverges = (0..64).any(|i| {
            let key = format!("q{i}");
            let gen_failed = plan.llm_call(&key, 0) == FaultDecision::Inject(FaultKind::LlmFailure);
            let grade_failed =
                plan.grader_call(&key, 0) == FaultDecision::Inject(FaultKind::GraderFailure);
            gen_failed != grade_failed
        });
        assert!(diverges);
        assert_eq!(plan.grader_call("q0", 1), plan.grader_call("q0", 1));
    }

    #[test]
    fn healthy_plan_never_fails_graders() {
        let plan = FaultPlan::healthy(3);
        for i in 0..200 {
            assert_eq!(
                plan.grader_call(&format!("g{i}"), 0),
                FaultDecision::Healthy
            );
        }
    }

    #[test]
    fn spike_factor_is_bounded_and_stable() {
        let plan = FaultPlan::uniform(17, 0.2);
        for i in 0..100 {
            let key = format!("c{i}");
            let f = plan.latency_spike_factor(&key, 0);
            assert!((4.0..16.0).contains(&f));
            assert_eq!(f, plan.latency_spike_factor(&key, 0));
        }
    }

    #[test]
    fn brownout_spares_ingest_and_grader_channels() {
        let plan = FaultPlan::brownout(31, 0.3);
        assert!(!plan.is_healthy());
        assert_eq!(plan.corruption_rate, 0.0);
        assert_eq!(plan.staleness_rate, 0.0);
        assert_eq!(plan.grader_failure_rate, 0.0);
        assert_eq!(plan.llm_failure_rate, 0.3);
        assert_eq!(plan.llm_latency_spike_rate, 0.6);
        for i in 0..200 {
            let src = format!("s{i}");
            assert!(plan.record_corruption(&src, "r").is_none());
            assert!(!plan.record_stale(&src, "r"));
            assert_eq!(plan.grader_call(&src, 0), FaultDecision::Healthy);
        }
        // Query-time channels do fire at these rates.
        let fails = (0..400)
            .filter(|i| plan.llm_call(&format!("c{i}"), 0).is_fault())
            .count();
        assert!(fails > 100, "brownout must degrade LLM calls: {fails}");
        assert_eq!(plan, FaultPlan::brownout(31, 0.3));
    }

    #[test]
    fn node_outages_are_windowed_and_replayable() {
        let plan = FaultPlan::node_outages(41, 0.3);
        assert!(!plan.is_healthy());
        // Every other channel stays quiet.
        for i in 0..100 {
            let src = format!("s{i}");
            assert!(!plan.source_down(&src));
            assert_eq!(plan.llm_call(&src, 0), FaultDecision::Healthy);
        }
        // Outages fire roughly at the configured rate and replay.
        let again = FaultPlan::node_outages(41, 0.3);
        let mut fired = 0usize;
        for node in 0..8u32 {
            for window in 0..500u64 {
                let down = plan.node_outage(node, window);
                assert_eq!(down, again.node_outage(node, window));
                fired += usize::from(down);
            }
        }
        let total = 8 * 500;
        assert!(
            (total * 2 / 10..total * 4 / 10).contains(&fired),
            "fired={fired}"
        );
        // A node that is down in some window recovers in another.
        let recovers = (0..200u64).any(|w| plan.node_outage(0, w) && !plan.node_outage(0, w + 1));
        assert!(recovers);
    }

    #[test]
    fn healthy_plan_never_drops_nodes() {
        let plan = FaultPlan::healthy(7);
        for node in 0..16u32 {
            for window in 0..64u64 {
                assert!(!plan.node_outage(node, window));
            }
        }
    }

    #[test]
    fn source_report_matches_probe() {
        let plan = FaultPlan::uniform(23, 0.4);
        let names = ["alpha", "beta", "gamma"];
        let report = plan.source_report(names);
        assert_eq!(report.len(), 3);
        for entry in &report {
            assert_eq!(entry.outage, plan.source_down(&entry.source));
        }
    }
}
