//! Property tests for the cluster's determinism backbone.
//!
//! 1. **Histogram merge identity** (the merge-tier satellite): feeding
//!    every completion into one cluster-wide [`LogHistogram`] is
//!    byte-identical to feeding each shard's completions into its own
//!    histogram and merging — for *any* assignment of completions to
//!    shards and any merge order. `LogHistogram` derives `Eq` over its
//!    full state (buckets, count, sum, max), so `==` here is exactly
//!    "same bytes in every field".
//! 2. **Merge-tier reduction order invariance**: the cross-shard
//!    verdict reduction is a pure function of the verdict *set*.
//! 3. **Ring consistency**: `owner` is `candidates[0]`, candidates are
//!    distinct, and ownership is stable across rebuilds.

use multirag_cluster::{slot_key, HashRing, DEFAULT_VNODES};
use multirag_core::{reduce_shard_answers, AbstainReason, PipelineAnswer};
use multirag_obs::LogHistogram;
use proptest::prelude::*;

fn answer(confidence: f64, abstained: bool) -> PipelineAnswer {
    PipelineAnswer {
        values: Vec::new(),
        fusion_values: Vec::new(),
        abstained,
        abstain_reason: abstained.then_some(AbstainReason::AllSourcesDown),
        hallucinated: false,
        graph_confidence: (!abstained).then_some(multirag_core::confidence::GraphConfidence {
            value: confidence,
            unordered_pairs: 1,
            ordered_pairs: 2,
        }),
        kept: Vec::new(),
        dropped: 0,
        examined: 0,
        quarantined_claims: 0,
        escalation_attempts: 0,
    }
}

proptest! {
    /// Per-shard histograms merged in any order == one histogram fed
    /// every completion directly. Byte identity via `Eq`.
    #[test]
    fn merged_shard_histograms_equal_cluster_histogram(
        completions in proptest::collection::vec((0u64..5_000_000, 0usize..8), 0..300),
        shards in 1usize..8,
        merge_order in proptest::collection::vec(0usize..8, 8),
    ) {
        let mut cluster_wide = LogHistogram::new();
        let mut per_shard = vec![LogHistogram::new(); shards];
        for &(latency_us, shard_pick) in &completions {
            cluster_wide.record(latency_us);
            per_shard[shard_pick % shards].record(latency_us);
        }
        // Merge in a permuted order: merge is commutative+associative,
        // so any order must land on the identical state.
        let mut order: Vec<usize> = (0..shards).collect();
        for (i, &s) in merge_order.iter().enumerate().take(shards) {
            order.swap(i, s % shards);
        }
        let mut merged = LogHistogram::new();
        for &s in &order {
            merged.merge(&per_shard[s]);
        }
        prop_assert_eq!(&merged, &cluster_wide);
        // The derived percentiles therefore agree too.
        for p in [50u64, 95, 99] {
            prop_assert_eq!(merged.quantile_us(p), cluster_wide.quantile_us(p));
        }
    }

    /// Reduction is a pure function of the verdict set: permuting the
    /// input leaves the merged verdict byte-identical.
    #[test]
    fn shard_reduction_is_permutation_invariant(
        confidences in proptest::collection::vec((0.0f64..1.0, any::<bool>()), 1..8),
        swaps in proptest::collection::vec(0usize..8, 8),
    ) {
        let verdicts: Vec<(u32, PipelineAnswer)> = confidences
            .iter()
            .enumerate()
            .map(|(shard, &(c, abstained))| (shard as u32, answer(c, abstained)))
            .collect();
        let mut shuffled = verdicts.clone();
        let n = shuffled.len();
        for (i, &s) in swaps.iter().enumerate().take(n) {
            shuffled.swap(i, s % n);
        }
        prop_assert_eq!(
            reduce_shard_answers(&verdicts),
            reduce_shard_answers(&shuffled)
        );
    }

    /// `owner` is always the first candidate, candidates are distinct
    /// nodes, and an identically parameterized ring agrees on every
    /// slot.
    #[test]
    fn ring_owner_heads_distinct_candidates(
        nodes in 1u32..12,
        seed in 0u64..1_000,
        entities in proptest::collection::vec("[a-z]{1,12}", 1..20),
    ) {
        let ring = HashRing::new(nodes, DEFAULT_VNODES, seed);
        let again = HashRing::new(nodes, DEFAULT_VNODES, seed);
        for entity in &entities {
            let slot = slot_key(entity, "attr");
            let cands = ring.candidates(&slot, 3);
            prop_assert_eq!(cands[0], ring.owner(&slot));
            prop_assert_eq!(ring.owner(&slot), again.owner(&slot));
            let mut sorted = cands.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), cands.len());
        }
    }
}
