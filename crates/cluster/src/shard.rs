//! The simulated fleet: N shard nodes over one shared epoch snapshot.
//!
//! What is sharded and what is shared is the crate's central design
//! decision. The MCC confidence machinery scores every claim against
//! *graph-global* signals — entity degree, the graph's max degree,
//! interned triple ids, the epoch's frozen credibility store — so
//! rebuilding a per-shard subgraph would change those signals and break
//! 1-node == N-node answer parity by construction. The fleet therefore
//! follows the disaggregated-storage shape (compute sharding over
//! shared immutable storage): every node reads the same
//! [`EpochSnapshot`] behind an `Arc`, while the genuinely per-node
//! state — the [`CacheStack`], the admission queue, the service clock,
//! the slot ownership — is sharded by the consistent-hash ring. Slot
//! routing then affects only *where* a query runs and queues, never
//! what it answers; parity is a structural invariant, not a tuning
//! outcome, and `repro_cluster` asserts it end to end.

use crate::ring::{slot_key, HashRing, DEFAULT_VNODES};
use multirag_faults::FaultPlan;
use multirag_kg::{Bitset, SlotId};
use multirag_obs::{shard_series, MetricsRegistry};
use multirag_serve::{CacheStack, EpochSnapshot, ServeConfig};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// One simulated serving node: an id plus its private cache stack.
/// Everything else a node "has" (pipeline, workers) is derived per
/// serving call from the shared snapshot.
#[derive(Debug)]
pub struct ShardNode {
    /// Node id, `0..shards`.
    pub id: u32,
    /// The node's private L1/L2/L3 cache stack. Caches are node-local
    /// on purpose: a hit rate is a per-node property, and cross-node
    /// cache coherence is exactly the complexity the shared-snapshot
    /// design avoids.
    pub caches: CacheStack,
}

/// Monotonic cluster lifecycle counters, exported as metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterCounters {
    /// Epoch publishes absorbed (each triggers a rebalance pass).
    pub rebalances: u64,
    /// Slots whose owner changed across all rebalance/resize passes.
    pub moved_slots: u64,
    /// Slots currently marked hot and served from replicas.
    pub replicated_slots: u64,
}

/// The cluster: a consistent-hash ring of [`ShardNode`]s over one
/// shared, immutable [`EpochSnapshot`].
pub struct Cluster {
    snapshot: Arc<EpochSnapshot>,
    ring: HashRing,
    nodes: Vec<ShardNode>,
    serve_cfg: ServeConfig,
    /// Candidate nodes per slot (owner + replicas), ≥ 1.
    replication: usize,
    /// Slots hot enough to spread across their whole candidate set.
    hot_slots: BTreeSet<String>,
    /// Node-outage schedule, when the degraded leg is active.
    outage: Option<FaultPlan>,
    /// Requests per outage window (`window = seq / window_requests`).
    outage_window_requests: u64,
    /// Current slot → owner assignment (rebuilt on publish/resize).
    assignments: BTreeMap<String, u32>,
    metrics: MetricsRegistry,
    counters: ClusterCounters,
}

/// Every slot the snapshot's homologous index knows: grouped slots and
/// isolated (single-assertion) slots alike, as canonical slot keys in
/// sorted order.
pub fn slot_universe(snapshot: &EpochSnapshot) -> BTreeSet<String> {
    let mut slots = BTreeSet::new();
    for group in &snapshot.sets.groups {
        slots.insert(slot_key(
            snapshot.graph.entity_name(group.entity),
            snapshot.graph.relation_name(group.relation),
        ));
    }
    for &tid in &snapshot.sets.isolated {
        let triple = snapshot.graph.triple(tid);
        slots.insert(slot_key(
            snapshot.graph.entity_name(triple.subject),
            snapshot.graph.relation_name(triple.predicate),
        ));
    }
    slots
}

impl Cluster {
    /// Builds a fleet of `shards` nodes over `snapshot`, with
    /// `replication` candidate nodes per slot (clamped to the fleet
    /// size). The ring is seeded from the snapshot's own seed, so two
    /// processes holding the same epoch derive identical ownership.
    pub fn new(
        snapshot: Arc<EpochSnapshot>,
        shards: u32,
        serve_cfg: ServeConfig,
        replication: usize,
    ) -> Self {
        let shards = shards.max(1);
        let ring = HashRing::new(shards, DEFAULT_VNODES, snapshot.seed);
        let nodes = (0..shards)
            .map(|id| ShardNode {
                id,
                caches: CacheStack::new(),
            })
            .collect();
        let assignments = slot_universe(&snapshot)
            .into_iter()
            .map(|slot| {
                let owner = ring.owner(&slot);
                (slot, owner)
            })
            .collect();
        Self {
            snapshot,
            ring,
            nodes,
            serve_cfg,
            replication: replication.max(1),
            hot_slots: BTreeSet::new(),
            outage: None,
            outage_window_requests: 0,
            assignments,
            metrics: MetricsRegistry::new(),
            counters: ClusterCounters::default(),
        }
    }

    /// Installs a node-outage schedule: requests `seq` fall into window
    /// `seq / window_requests`, and a node down for that window is
    /// skipped in favor of the slot's next live candidate.
    pub fn with_outages(mut self, plan: FaultPlan, window_requests: u64) -> Self {
        self.outage = Some(plan);
        self.outage_window_requests = window_requests.max(1);
        self
    }

    /// Number of shard nodes.
    pub fn shards(&self) -> u32 {
        self.ring.node_count()
    }

    /// The shared epoch snapshot every node serves from.
    pub fn snapshot(&self) -> &EpochSnapshot {
        &self.snapshot
    }

    /// The serving configuration nodes run with.
    pub fn serve_config(&self) -> &ServeConfig {
        &self.serve_cfg
    }

    /// The node with id `id`, if it exists.
    pub fn node(&self, id: u32) -> Option<&ShardNode> {
        self.nodes.get(id as usize)
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Lifecycle counters.
    pub fn counters(&self) -> ClusterCounters {
        self.counters
    }

    /// Current slot → owner map (sorted by slot key).
    pub fn assignments(&self) -> &BTreeMap<String, u32> {
        &self.assignments
    }

    /// Whether `slot` is replicated hot.
    pub fn is_hot(&self, slot: &str) -> bool {
        self.hot_slots.contains(slot)
    }

    /// The slot's candidate nodes, owner first. Hot slots expose their
    /// full candidate set; cold slots expose owner + replicas only when
    /// failover needs them (same list — the distinction is how the
    /// router *uses* it).
    pub fn candidates_for(&self, slot: &str) -> Vec<u32> {
        self.ring.candidates(slot, self.replication)
    }

    /// Is `node` down for the window `seq` falls into?
    pub fn node_down(&self, node: u32, seq: u32) -> bool {
        match &self.outage {
            Some(plan) => {
                let window = u64::from(seq) / self.outage_window_requests.max(1);
                plan.node_outage(node, window)
            }
            None => false,
        }
    }

    /// Marks the `top_k` most-requested slots of `workload` as hot.
    /// Ties break toward the lexicographically smaller slot key, so the
    /// hot set is a pure function of the workload multiset.
    pub fn mark_hot_slots<'a>(
        &mut self,
        workload_slots: impl IntoIterator<Item = &'a str>,
        top_k: usize,
    ) {
        let mut freq: BTreeMap<&str, u64> = BTreeMap::new();
        for slot in workload_slots {
            *freq.entry(slot).or_insert(0) += 1;
        }
        let mut ranked: Vec<(&str, u64)> = freq.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        self.hot_slots = ranked
            .into_iter()
            .take(top_k)
            .map(|(slot, _)| slot.to_string())
            .collect();
        self.counters.replicated_slots = self.hot_slots.len() as u64;
        self.metrics.gauge_set(
            "cluster_replicated_slots",
            self.counters.replicated_slots as f64,
        );
    }

    /// Absorbs a freshly published epoch: recomputes slot ownership
    /// over the new snapshot's slot universe, counts moved and new
    /// slots, and swap-clears every node's epoch-scoped caches (the
    /// same invalidation contract single-node serving has on a swap).
    /// Returns `(moved, added)` slot counts.
    pub fn publish(&mut self, snapshot: Arc<EpochSnapshot>) -> (u64, u64) {
        self.snapshot = snapshot;
        let (moved, added) = self.reassign();
        for node in &self.nodes {
            node.caches.on_epoch_swap();
        }
        self.counters.rebalances += 1;
        self.counters.moved_slots += moved;
        self.metrics.inc("cluster_rebalance_total", 1);
        self.metrics
            .inc("cluster_rebalance_moved_slots_total", moved);
        self.metrics.inc("cluster_rebalance_new_slots_total", added);
        (moved, added)
    }

    /// Re-rings the fleet at `shards` nodes (elastic resize). Existing
    /// nodes keep their caches; new nodes start cold. Returns how many
    /// slots changed owner — consistent hashing keeps this a bounded
    /// fraction of the universe rather than a full reshuffle.
    pub fn resize(&mut self, shards: u32) -> u64 {
        let shards = shards.max(1);
        self.ring = HashRing::new(shards, DEFAULT_VNODES, self.snapshot.seed);
        while self.nodes.len() < shards as usize {
            self.nodes.push(ShardNode {
                id: self.nodes.len() as u32,
                caches: CacheStack::new(),
            });
        }
        self.nodes.truncate(shards as usize);
        let (moved, _) = self.reassign();
        self.counters.moved_slots += moved;
        self.metrics.inc("cluster_resize_total", 1);
        self.metrics
            .inc("cluster_rebalance_moved_slots_total", moved);
        moved
    }

    /// Rebuilds `assignments` from the current ring + snapshot and
    /// returns `(moved, added)` relative to the previous map.
    fn reassign(&mut self) -> (u64, u64) {
        let mut moved = 0u64;
        let mut added = 0u64;
        let next: BTreeMap<String, u32> = slot_universe(&self.snapshot)
            .into_iter()
            .map(|slot| {
                let owner = self.ring.owner(&slot);
                match self.assignments.get(&slot) {
                    Some(&previous) if previous != owner => moved += 1,
                    Some(_) => {}
                    None => added += 1,
                }
                (slot, owner)
            })
            .collect();
        self.assignments = next;
        (moved, added)
    }

    /// Shard-local sub-indexes, derived from the slot assignments: for
    /// each node, the slice of the snapshot's tiered-index slot tier
    /// it owns, as a [`Bitset`] over dense slot ids. The per-node
    /// bitsets partition the slot universe — pairwise disjoint, union
    /// covering every slot — because the tiered index materializes
    /// exactly the non-empty `(entity, attribute)` slots the ring
    /// assigns. A node can therefore scope descent work to its own
    /// slots (one AND against its bitset) without re-deriving
    /// ownership; the sub-indexes track rebalances and resizes for
    /// free, since they are a pure function of `assignments`.
    pub fn shard_slot_bitsets(&self) -> Vec<Bitset> {
        let index = &self.snapshot.tindex;
        let mut bitsets: Vec<Bitset> = (0..self.shards())
            .map(|_| Bitset::with_capacity(index.slot_count()))
            .collect();
        for slot in (0..index.slot_count() as u32).map(SlotId) {
            let key = slot_key(
                self.snapshot.graph.entity_name(index.slot_entity(slot)),
                self.snapshot.graph.relation_name(index.slot_relation(slot)),
            );
            if let Some(&owner) = self.assignments.get(&key) {
                if let Some(bits) = bitsets.get_mut(owner as usize) {
                    bits.insert(slot.0);
                }
            }
        }
        bitsets
    }

    /// Exports per-shard ownership gauges through the name-sorted
    /// exposition (zero-padded shard labels keep numeric order).
    pub fn export_ownership_metrics(&self) {
        let mut owned: BTreeMap<u32, u64> = (0..self.shards()).map(|id| (id, 0)).collect();
        for &owner in self.assignments.values() {
            if let Some(count) = owned.get_mut(&owner) {
                *count += 1;
            }
        }
        for (shard, count) in owned {
            self.metrics.gauge_set(
                &shard_series("cluster_shard_owned_slots", u64::from(shard)),
                count as f64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multirag_core::MultiRagConfig;
    use multirag_datasets::movies::MoviesSpec;
    use multirag_serve::IndexWriter;

    fn snapshot() -> Arc<EpochSnapshot> {
        let data = MoviesSpec::small().generate(42);
        let mut writer = IndexWriter::new(data.graph, MultiRagConfig::default(), 42);
        writer.publish()
    }

    #[test]
    fn shard_bitsets_partition_the_slot_tier() {
        let snapshot = snapshot();
        let slots = snapshot.tindex.slot_count();
        assert!(slots > 0);
        let cluster = Cluster::new(snapshot, 4, ServeConfig::default(), 2);
        let bitsets = cluster.shard_slot_bitsets();
        assert_eq!(bitsets.len(), 4);
        // Pairwise disjoint: no slot is owned by two nodes.
        let mut ops = 0u64;
        for (i, a) in bitsets.iter().enumerate() {
            for b in bitsets.iter().skip(i + 1) {
                assert!(a.is_disjoint(b, &mut ops));
            }
        }
        // Full coverage: every tiered-index slot has exactly one owner,
        // and the slot universe the ring assigns is the slot tier.
        let mut union = Bitset::with_capacity(slots);
        for bits in &bitsets {
            union.union_with(bits);
        }
        assert_eq!(union.count(), slots);
        assert_eq!(cluster.assignments().len(), slots);
    }

    #[test]
    fn shard_bitsets_follow_resize() {
        let snapshot = snapshot();
        let slots = snapshot.tindex.slot_count();
        let mut cluster = Cluster::new(snapshot, 2, ServeConfig::default(), 1);
        let before: usize = cluster.shard_slot_bitsets().iter().map(Bitset::count).sum();
        assert_eq!(before, slots);
        cluster.resize(4);
        let after = cluster.shard_slot_bitsets();
        assert_eq!(after.len(), 4);
        // Coverage is stable across the resize; only ownership moved.
        assert_eq!(after.iter().map(Bitset::count).sum::<usize>(), slots);
        let mut ops = 0u64;
        for (i, a) in after.iter().enumerate() {
            for b in after.iter().skip(i + 1) {
                assert!(a.is_disjoint(b, &mut ops));
            }
        }
    }
}
