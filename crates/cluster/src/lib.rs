//! # multirag-cluster — sharded serving over the MultiRAG pipeline
//!
//! Takes `multirag-serve` from one node to a simulated fleet:
//!
//! * [`ring`] — consistent-hash ring over `(entity, attribute)` slots
//!   with virtual nodes, deterministic replica placement and bounded
//!   movement under growth.
//! * [`shard`] — the [`Cluster`]: N nodes sharing one immutable
//!   [`EpochSnapshot`](multirag_serve::EpochSnapshot) (the
//!   disaggregated-storage shape), each with private caches; slot
//!   rebalancing on epoch publish and elastic resize.
//! * [`router`] — slot extraction via the same seeded LLM the
//!   pipeline uses, fan-out to owning shards, failover under node
//!   outages, and the cross-shard merge path over
//!   [`multirag_core::reduce_shard_answers`].
//! * [`sim`] — the integer-µs discrete-event fleet simulator:
//!   per-node queues and service clocks, latencies accumulated in
//!   mergeable [`LogHistogram`](multirag_obs::LogHistogram)s.
//! * [`report`] — byte-stable JSON fragments for
//!   `results/cluster.json`.
//!
//! The crate's invariant — proven end to end by `repro_cluster` — is
//! **1-node == N-node answer parity**: because every node answers from
//! the same shared snapshot, routing affects only load placement,
//! never answers, for every topology and every router worker count.

pub mod report;
pub mod ring;
pub mod router;
pub mod shard;
pub mod sim;

pub use report::{load_point_json, outcome_json};
pub use ring::{slot_key, HashRing, DEFAULT_VNODES};
pub use router::{serve_cluster, serve_fanout, ClusterResponse, SlotRouter};
pub use shard::{slot_universe, Cluster, ClusterCounters, ShardNode};
pub use sim::{cluster_closed_loop, ClusterLoadPoint, ClusterSimOutcome};
