//! Deterministic slot router and cross-shard serve paths.
//!
//! The router recovers each query's `(entity, attribute)` slot the
//! same way the pipeline itself does — by running the seeded mock LLM
//! over the *same* schema ([`kg_schema`]) the pipeline extracts with —
//! and falls back to the query's declared slot when extraction fails.
//! Slot → node resolution then goes through the cluster's ring.
//!
//! Serving modes:
//!
//! - [`serve_cluster`]: every request runs on exactly one node (the
//!   slot's preferred live candidate). This is the production path and
//!   the one whose answers must match single-node serving bit for bit.
//! - [`serve_fanout`]: one request runs on *all* of its slot's
//!   candidates and the per-shard verdicts are reduced through
//!   [`multirag_core::reduce_shard_answers`] — the merge-tier
//!   cross-check `repro_cluster` uses to prove replicas agree.
//!
//! Failure handling is structural: a request whose every candidate is
//! down gets a structured abstain ([`AbstainReason::AllSourcesDown`])
//! — the cluster never panics on an outage.

use crate::shard::Cluster;
use multirag_core::{
    kg_schema, reduce_shard_answers, AbstainReason, MergedVerdict, MklgpPipeline, PipelineAnswer,
};
use multirag_datasets::Query;
use multirag_eval::parallel_map_with;
use multirag_llmsim::client::MockLlm;
use multirag_obs::shard_series;
use multirag_serve::{
    serve_one, snapshot_pipeline, ServeRequest, ServeResponse, ServeVerdict, SERVE_OVERHEAD_MS,
};
use std::collections::BTreeMap;

use crate::ring::slot_key;

/// Extracts the routing slot for each query with the same seeded LLM
/// the pipeline uses for extraction.
pub struct SlotRouter {
    llm: MockLlm,
}

impl SlotRouter {
    /// Builds a router bound to the cluster's snapshot (same schema,
    /// same seed → same logic forms as the serving pipelines).
    pub fn new(cluster: &Cluster) -> Self {
        let snapshot = cluster.snapshot();
        Self {
            llm: MockLlm::new(kg_schema(&snapshot.graph), snapshot.seed),
        }
    }

    /// The canonical slot key the query routes by: the logic form's
    /// entity and first relation when extraction succeeds, the query's
    /// declared `(entity, attribute)` otherwise. Either way the result
    /// is deterministic, and — because every node answers from the
    /// same shared snapshot — routing choices can shift *load*, never
    /// *answers*.
    pub fn slot_of(&mut self, query: &Query) -> String {
        if let Some(lf) = self.llm.logic_form(&query.text) {
            if let Some(relation) = lf.relations.first() {
                return slot_key(&lf.entity, relation);
            }
        }
        slot_key(&query.entity, &query.attribute)
    }
}

/// One routed response: which shard served it and whether the router
/// had to fail over past the preferred candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterResponse {
    /// Stream sequence number.
    pub seq: u32,
    /// Shard that served the request (`None`: every candidate down).
    pub shard: Option<u32>,
    /// True when the preferred candidate was down and a replica (or a
    /// structured abstain) took over.
    pub failover: bool,
    /// The node's response, or the router's structured abstain.
    pub response: ServeResponse,
}

/// The routing decision for one request, before any serving happens.
struct Route {
    /// Chosen node, `None` when every candidate is down this window.
    chosen: Option<u32>,
    failover: bool,
}

fn route_request(cluster: &Cluster, router: &mut SlotRouter, request: &ServeRequest) -> Route {
    let slot = router.slot_of(&request.query);
    let candidates = cluster.candidates_for(&slot);
    // Hot slots spread deterministically across their candidate set by
    // sequence number; cold slots always prefer the owner.
    let preferred: Vec<u32> = if cluster.is_hot(&slot) && !candidates.is_empty() {
        let start = request.seq as usize % candidates.len();
        let mut order = Vec::with_capacity(candidates.len());
        for step in 0..candidates.len() {
            if let Some(&node) = candidates.get((start + step) % candidates.len()) {
                order.push(node);
            }
        }
        order
    } else {
        candidates
    };
    let chosen = preferred
        .iter()
        .copied()
        .find(|&node| !cluster.node_down(node, request.seq));
    let failover = match (preferred.first(), chosen) {
        (Some(&first), Some(node)) => node != first,
        // Nothing alive: that is a failover outcome too.
        (Some(_), None) => true,
        (None, _) => false,
    };
    Route { chosen, failover }
}

/// The structured verdict for a request whose every candidate node is
/// down: an abstention, charged only the serving overhead.
fn all_down_response(request: &ServeRequest) -> ServeResponse {
    ServeResponse {
        seq: request.seq,
        kind: request.kind,
        verdict: ServeVerdict::Answered(PipelineAnswer {
            values: Vec::new(),
            fusion_values: Vec::new(),
            abstained: true,
            abstain_reason: Some(AbstainReason::AllSourcesDown),
            hallucinated: false,
            graph_confidence: None,
            kept: Vec::new(),
            dropped: 0,
            examined: 0,
            quarantined_claims: 0,
            escalation_attempts: 0,
        }),
        result_cache_hit: false,
        service_ms: SERVE_OVERHEAD_MS,
    }
}

/// Routes and serves a request stream across the fleet on
/// `router_workers` threads. Results come back in stream order; which
/// shard serves which request is a pure function of the request, never
/// of thread scheduling (per-request metrics counts are therefore
/// scheduling-independent too).
pub fn serve_cluster(
    cluster: &Cluster,
    requests: &[ServeRequest],
    router_workers: usize,
) -> Vec<ClusterResponse> {
    let items: Vec<ServeRequest> = requests.to_vec();
    let responses = parallel_map_with(
        items,
        router_workers.max(1),
        |_| (SlotRouter::new(cluster), BTreeMap::new()),
        |(router, pipelines): &mut (SlotRouter, BTreeMap<u32, MklgpPipeline<'_>>), request| {
            let route = route_request(cluster, router, &request);
            let Some((shard, node)) = route
                .chosen
                .and_then(|shard| cluster.node(shard).map(|node| (shard, node)))
            else {
                return ClusterResponse {
                    seq: request.seq,
                    shard: None,
                    failover: route.failover,
                    response: all_down_response(&request),
                };
            };
            let pipeline = pipelines.entry(shard).or_insert_with(|| {
                snapshot_pipeline(cluster.snapshot(), &node.caches, cluster.serve_config())
            });
            let response = serve_one(pipeline, &node.caches, &request);
            ClusterResponse {
                seq: request.seq,
                shard: Some(shard),
                failover: route.failover,
                response,
            }
        },
    );
    record_routing_metrics(cluster, &responses);
    responses
}

/// Bumps the per-shard and failover counters for a served batch. Done
/// after the fan-out from the final (stream-ordered) responses, so the
/// registry sees one deterministic sequence of increments regardless
/// of router worker count.
fn record_routing_metrics(cluster: &Cluster, responses: &[ClusterResponse]) {
    let metrics = cluster.metrics();
    let mut per_shard: BTreeMap<u32, u64> = BTreeMap::new();
    let mut failovers = 0u64;
    let mut abstained_unrouted = 0u64;
    for response in responses {
        match response.shard {
            Some(shard) => *per_shard.entry(shard).or_insert(0) += 1,
            None => abstained_unrouted += 1,
        }
        failovers += u64::from(response.failover);
    }
    for (shard, count) in per_shard {
        metrics.inc(
            &shard_series("cluster_shard_queries_total", u64::from(shard)),
            count,
        );
    }
    metrics.inc("cluster_failover_total", failovers);
    metrics.inc("cluster_unrouted_abstain_total", abstained_unrouted);
}

/// Serves one request on *every* candidate node of its slot and
/// reduces the per-shard verdicts through the merge tier. Returns the
/// merged verdict plus the raw per-shard answers (sorted by shard id)
/// so callers can assert replica agreement. Candidates that are down
/// or shed contribute nothing; an empty survivor set reduces to the
/// structured all-down abstain.
pub fn serve_fanout(
    cluster: &Cluster,
    router: &mut SlotRouter,
    request: &ServeRequest,
) -> (Option<MergedVerdict>, Vec<(u32, PipelineAnswer)>) {
    let slot = router.slot_of(&request.query);
    let mut verdicts: Vec<(u32, PipelineAnswer)> = Vec::new();
    for shard in cluster.candidates_for(&slot) {
        if cluster.node_down(shard, request.seq) {
            continue;
        }
        let Some(node) = cluster.node(shard) else {
            continue;
        };
        let mut pipeline =
            snapshot_pipeline(cluster.snapshot(), &node.caches, cluster.serve_config());
        let response = serve_one(&mut pipeline, &node.caches, request);
        if let ServeVerdict::Answered(answer) = response.verdict {
            verdicts.push((shard, answer));
        }
    }
    verdicts.sort_by_key(|&(shard, _)| shard);
    (reduce_shard_answers(&verdicts), verdicts)
}
