//! Consistent-hash ring over (entity, attribute) slots.
//!
//! The sharding unit is the *slot* — the `(entity, attribute)` pair
//! that also keys homologous grouping, the result cache and the
//! confidence memo. Hashing slots (not documents, not queries) keeps
//! every representation of the same fact on the same node, so
//! homologous matching stays shard-local (Hierarchical Lexical Graph's
//! argument, see PAPERS.md).
//!
//! The ring is the classic virtual-node construction: every node
//! projects [`DEFAULT_VNODES`] seeded points onto the `u64` circle and
//! a slot is owned by the successor of its own hash. All hashes come
//! from [`determinism::draw`], so ownership is a pure function of
//! `(seed, node count, slot key)` — two processes building the same
//! ring agree byte-for-byte, and growing the fleet moves only the
//! slots whose successor changed (bounded movement, asserted in the
//! crate's property tests).

use multirag_llmsim::determinism;

/// Virtual nodes per physical node. 64 points per node keeps the
/// max/min ownership ratio low single-digit percent at the slot counts
/// the datasets produce, while keeping ring construction trivial.
pub const DEFAULT_VNODES: usize = 64;

/// ASCII unit separator: joins entity and attribute into one slot key
/// without colliding with either name's own characters.
const SLOT_SEP: char = '\u{1f}';

/// Builds the canonical slot key for an `(entity, attribute)` pair.
pub fn slot_key(entity: &str, attribute: &str) -> String {
    format!("{entity}{SLOT_SEP}{attribute}")
}

/// A deterministic consistent-hash ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    seed: u64,
    nodes: u32,
    /// `(point, node)` pairs sorted by point (ties broken by node id,
    /// which also makes construction order irrelevant).
    points: Vec<(u64, u32)>,
}

impl HashRing {
    /// Builds a ring of `nodes` physical nodes with `vnodes` points
    /// each. `nodes` and `vnodes` are clamped to at least 1.
    pub fn new(nodes: u32, vnodes: usize, seed: u64) -> Self {
        let nodes = nodes.max(1);
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(nodes as usize * vnodes);
        for node in 0..nodes {
            for v in 0..vnodes {
                points.push((determinism::draw(seed, &format!("ring:{node}:{v}")), node));
            }
        }
        points.sort_unstable();
        Self {
            seed,
            nodes,
            points,
        }
    }

    /// Number of physical nodes on the ring.
    pub fn node_count(&self) -> u32 {
        self.nodes
    }

    /// The node owning `slot` (successor of the slot's hash point).
    pub fn owner(&self, slot: &str) -> u32 {
        let hash = determinism::draw(self.seed, &format!("slot:{slot}"));
        let idx = self.points.partition_point(|&(p, _)| p < hash);
        // Successor, wrapping past the top of the circle.
        self.points
            .get(idx)
            .or_else(|| self.points.first())
            .map(|&(_, node)| node)
            .unwrap_or(0)
    }

    /// The slot's candidate nodes, owner first, then up to `count - 1`
    /// distinct further nodes walking clockwise. This is the
    /// deterministic replica-placement rule: replicas of a slot are
    /// the next distinct nodes on the circle, so every process derives
    /// the same failover order without coordination.
    pub fn candidates(&self, slot: &str, count: usize) -> Vec<u32> {
        let want = count.clamp(1, self.nodes as usize);
        let hash = determinism::draw(self.seed, &format!("slot:{slot}"));
        let start = self.points.partition_point(|&(p, _)| p < hash);
        let mut out: Vec<u32> = Vec::with_capacity(want);
        for step in 0..self.points.len() {
            let idx = (start + step) % self.points.len().max(1);
            let Some(&(_, node)) = self.points.get(idx) else {
                break;
            };
            if !out.contains(&node) {
                out.push(node);
                if out.len() == want {
                    break;
                }
            }
        }
        if out.is_empty() {
            out.push(0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_is_deterministic_and_covers_all_nodes() {
        let a = HashRing::new(4, DEFAULT_VNODES, 42);
        let b = HashRing::new(4, DEFAULT_VNODES, 42);
        assert_eq!(a, b);
        let mut seen = [false; 4];
        for i in 0..400 {
            let slot = slot_key(&format!("Entity{i}"), "release_year");
            let owner = a.owner(&slot);
            assert_eq!(owner, b.owner(&slot));
            assert!(owner < 4);
            if let Some(flag) = seen.get_mut(owner as usize) {
                *flag = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "400 slots must touch all 4 nodes");
    }

    #[test]
    fn candidates_start_at_owner_and_are_distinct() {
        let ring = HashRing::new(5, DEFAULT_VNODES, 7);
        for i in 0..100 {
            let slot = slot_key(&format!("E{i}"), "attr");
            let cands = ring.candidates(&slot, 3);
            assert_eq!(cands.len(), 3);
            assert_eq!(cands[0], ring.owner(&slot));
            let mut sorted = cands.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "candidates must be distinct nodes");
        }
    }

    #[test]
    fn candidate_count_clamps_to_fleet_size() {
        let ring = HashRing::new(2, DEFAULT_VNODES, 7);
        assert_eq!(ring.candidates("a", 8).len(), 2);
        assert_eq!(ring.candidates("a", 0).len(), 1);
    }

    #[test]
    fn growth_moves_a_bounded_slot_fraction() {
        let before = HashRing::new(4, DEFAULT_VNODES, 42);
        let after = HashRing::new(8, DEFAULT_VNODES, 42);
        let total = 1000;
        let moved = (0..total)
            .filter(|i| {
                let slot = slot_key(&format!("Entity{i}"), "a");
                before.owner(&slot) != after.owner(&slot)
            })
            .count();
        // Consistent hashing: doubling the fleet moves ~1/2 the slots;
        // a mod-N rehash would move ~7/8. Anything ≤ 65% shows the
        // bounded-movement property held.
        assert!(moved > 0, "growing the fleet must move some slots");
        assert!(
            moved * 100 <= total * 65,
            "moved {moved}/{total}: movement not bounded"
        );
    }

    #[test]
    fn single_node_owns_everything() {
        let ring = HashRing::new(1, DEFAULT_VNODES, 3);
        for i in 0..50 {
            assert_eq!(ring.owner(&slot_key(&format!("E{i}"), "a")), 0);
        }
    }
}
