//! Byte-stable JSON fragments for `results/cluster.json`.
//!
//! Everything here renders through `multirag_obs::json::JsonObj`, the
//! same deterministic builder every other artifact uses: fixed key
//! order, `fmt_f64` floats, no maps with ambient iteration order. The
//! `repro_cluster` binary assembles these fragments into the full
//! `[cluster]`-schema artifact and double-runs it under `cmp`.

use crate::sim::{ClusterLoadPoint, ClusterSimOutcome};
use multirag_obs::json::JsonObj;

/// Canonical JSON for one cluster operating point.
pub fn load_point_json(point: &ClusterLoadPoint) -> String {
    JsonObj::new()
        .u64("shards", u64::from(point.shards))
        .usize("concurrency", point.concurrency)
        .usize("workers_per_shard", point.workers_per_shard)
        .usize("offered", point.offered)
        .usize("completed", point.completed)
        .usize("shed", point.shed)
        .usize("failovers", point.failovers)
        .usize("unrouted", point.unrouted)
        .f64("throughput_qps", point.throughput_qps)
        .u64("p50_us", point.p50_us)
        .u64("p95_us", point.p95_us)
        .u64("p99_us", point.p99_us)
        .f64("sim_total_ms", point.sim_total_ms)
        .build()
}

/// Canonical JSON for one full sim outcome: the operating point plus
/// per-shard completion counts and peak queue depths (shard order, so
/// the array index *is* the shard id).
pub fn outcome_json(outcome: &ClusterSimOutcome) -> String {
    JsonObj::new()
        .raw("point", &load_point_json(&outcome.point))
        .arr(
            "per_shard_completed",
            outcome.per_shard_completed.iter().map(u64::to_string),
        )
        .arr(
            "per_shard_peak_queue",
            outcome.per_shard_peak_queue.iter().map(u64::to_string),
        )
        .u64("overall_count", outcome.overall.count())
        .u64("overall_max_us", outcome.overall.max_us())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::cluster_closed_loop;

    #[test]
    fn outcome_json_is_deterministic_and_well_formed() {
        let service: Vec<u64> = (0..32).map(|i| 700 + (i % 4) * 500).collect();
        let cands: Vec<Vec<u32>> = (0..32).map(|i| vec![(i as u32) % 2, 1]).collect();
        let out = cluster_closed_loop(&service, &cands, 256, 2, 8, 2, 4, None);
        let a = outcome_json(&out);
        let b = outcome_json(&out);
        assert_eq!(a, b);
        assert!(a.starts_with('{') && a.ends_with('}'));
        assert!(a.contains("\"shards\":2"));
        assert!(a.contains("\"per_shard_completed\":["));
    }
}
