//! Deterministic closed-loop simulator for the sharded fleet.
//!
//! Extends `multirag_serve`'s integer-µs discrete-event loop from one
//! worker pool to N per-node pools: every shard has its own busy
//! counter, bounded queue and service clock, and each request carries
//! the candidate-node list its slot's ring position dictates. As in
//! the single-node loop there is no wall clock and no OS scheduler —
//! the same inputs produce the same [`ClusterLoadPoint`] bytes on
//! every machine.
//!
//! The workload is *replicated*: request `i` reuses the service time
//! and candidate list of base request `i % base_len`, which is how the
//! scaling leg drives millions of simulated queries from a
//! few-thousand-request measured oracle without materializing
//! per-request state. Latencies accumulate straight into
//! [`LogHistogram`]s (per shard and cluster-wide), so memory stays
//! O(buckets), not O(requests) — and the cluster-wide percentiles are
//! read from the *merge* of the per-shard histograms, exercising the
//! merge-tier property on every run.
//!
//! Event ordering is total: by time, then completions before arrivals,
//! then a monotonic tiebreaker — identical to the single-node loop.

use multirag_faults::FaultPlan;
use multirag_obs::LogHistogram;
use multirag_serve::SHED_BACKOFF_US;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// One measured operating point of the cluster closed loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterLoadPoint {
    /// Number of shard nodes.
    pub shards: u32,
    /// Closed-loop client count.
    pub concurrency: usize,
    /// Worker pool size per shard.
    pub workers_per_shard: usize,
    /// Requests the clients attempted to submit.
    pub offered: usize,
    /// Requests served to completion.
    pub completed: usize,
    /// Requests shed (every candidate full, or every candidate down).
    pub shed: usize,
    /// Requests that could not run on their preferred candidate (it
    /// was down) and ran on a replica instead.
    pub failovers: usize,
    /// Requests whose every candidate was down for their window.
    pub unrouted: usize,
    /// Completed requests per simulated second.
    pub throughput_qps: f64,
    /// Median end-to-end latency (log-bucket bound), integer µs.
    pub p50_us: u64,
    /// 95th-percentile latency, integer µs.
    pub p95_us: u64,
    /// 99th-percentile latency, integer µs.
    pub p99_us: u64,
    /// Total simulated time until the last client finished, ms.
    pub sim_total_ms: f64,
}

/// The full outcome: the operating point plus the latency histograms
/// and per-shard load the report renders.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSimOutcome {
    /// Summary operating point.
    pub point: ClusterLoadPoint,
    /// Per-shard end-to-end latency histograms.
    pub per_shard: Vec<LogHistogram>,
    /// Cluster-wide histogram: the merge of `per_shard`.
    pub overall: LogHistogram,
    /// Completions per shard.
    pub per_shard_completed: Vec<u64>,
    /// Peak admission-queue depth per shard.
    pub per_shard_peak_queue: Vec<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// Shard `shard` finishes a request submitted at `submitted` by
    /// `client`.
    Complete {
        client: usize,
        shard: u32,
        submitted: u64,
    },
    /// A client submits its next request (or retires if none remain).
    Arrive { client: usize },
}

/// Runs the cluster closed loop.
///
/// `base_service_us[i % len]` and `base_candidates[i % len]` supply
/// request `i`'s service time and candidate nodes (owner first);
/// `total` requests are driven by `concurrency` clients. `outage`
/// optionally supplies a fault plan plus the simulated-µs width of one
/// outage window; a down node accepts no starts and no enqueues for
/// that window.
#[allow(clippy::too_many_arguments)]
pub fn cluster_closed_loop(
    base_service_us: &[u64],
    base_candidates: &[Vec<u32>],
    total: usize,
    shards: u32,
    concurrency: usize,
    workers_per_shard: usize,
    queue_depth: usize,
    outage: Option<(&FaultPlan, u64)>,
) -> ClusterSimOutcome {
    let shards = shards.max(1);
    let concurrency = concurrency.max(1);
    let workers_per_shard = workers_per_shard.max(1);
    let base_len = base_service_us.len().max(1);
    let cand_len = base_candidates.len().max(1);

    let mut heap: BinaryHeap<Reverse<(u64, u8, u64, Event)>> = BinaryHeap::new();
    let mut tiebreak: u64 = 0;
    let mut push =
        |heap: &mut BinaryHeap<Reverse<(u64, u8, u64, Event)>>, time: u64, event: Event| {
            // Completions sort before arrivals at the same instant so a
            // freed worker can take a same-instant submission.
            let kind = match event {
                Event::Complete { .. } => 0u8,
                Event::Arrive { .. } => 1u8,
            };
            tiebreak += 1;
            heap.push(Reverse((time, kind, tiebreak, event)));
        };
    for client in 0..concurrency {
        push(&mut heap, 0, Event::Arrive { client });
    }

    // Round-robin request ownership: client `c` drives requests
    // `c, c + concurrency, c + 2·concurrency, …` — a counter per
    // client instead of materialized per-request streams, so a
    // million-request workload costs no per-request memory.
    let mut submitted_by_client: Vec<usize> = vec![0; concurrency];
    let quota = |client: usize| total / concurrency + usize::from(client < total % concurrency);

    let mut busy: Vec<usize> = vec![0; shards as usize];
    let mut queues: Vec<VecDeque<(usize, u64, u64)>> = vec![VecDeque::new(); shards as usize];
    let mut peak_queue: Vec<u64> = vec![0; shards as usize];
    let mut per_shard: Vec<LogHistogram> = vec![LogHistogram::new(); shards as usize];
    let mut per_shard_completed: Vec<u64> = vec![0; shards as usize];
    let mut shed: usize = 0;
    let mut failovers: usize = 0;
    let mut unrouted: usize = 0;
    let mut end_time: u64 = 0;

    while let Some(Reverse((now, _, _, event))) = heap.pop() {
        end_time = end_time.max(now);
        match event {
            Event::Complete {
                client,
                shard,
                submitted,
            } => {
                let s = shard as usize;
                if let Some(h) = per_shard.get_mut(s) {
                    h.record(now - submitted);
                }
                if let Some(n) = per_shard_completed.get_mut(s) {
                    *n += 1;
                }
                let next = queues.get_mut(s).and_then(VecDeque::pop_front);
                if let Some((qclient, qsubmitted, qservice)) = next {
                    // The freed worker immediately takes the oldest
                    // queued request; `busy` is unchanged.
                    push(
                        &mut heap,
                        now + qservice,
                        Event::Complete {
                            client: qclient,
                            shard,
                            submitted: qsubmitted,
                        },
                    );
                } else if let Some(b) = busy.get_mut(s) {
                    *b -= 1;
                }
                push(&mut heap, now, Event::Arrive { client });
            }
            Event::Arrive { client } => {
                let attempted = submitted_by_client.get(client).copied().unwrap_or(0);
                if attempted >= quota(client) {
                    continue; // client retired
                }
                if let Some(n) = submitted_by_client.get_mut(client) {
                    *n += 1;
                }
                let i = client + attempted * concurrency;
                let service = base_service_us.get(i % base_len).copied().unwrap_or(1);
                let empty: Vec<u32> = Vec::new();
                let candidates = base_candidates.get(i % cand_len).unwrap_or(&empty);

                let is_down = |node: u32| match outage {
                    Some((plan, window_us)) => plan.node_outage(node, now / window_us.max(1)),
                    None => false,
                };
                let preferred_live = candidates.iter().copied().find(|&n| !is_down(n));
                let live: Vec<u32> = candidates
                    .iter()
                    .copied()
                    .filter(|&n| n < shards && !is_down(n))
                    .collect();
                if live.is_empty() {
                    // Every candidate down: structured shed, client
                    // backs off and moves on.
                    unrouted += 1;
                    shed += 1;
                    push(&mut heap, now + SHED_BACKOFF_US, Event::Arrive { client });
                    continue;
                }
                if preferred_live != candidates.first().copied() {
                    failovers += 1;
                }
                // First live candidate with a free worker starts now;
                // otherwise first live candidate with queue space.
                let started = live.iter().copied().find(|&n| {
                    busy.get(n as usize).copied().unwrap_or(workers_per_shard) < workers_per_shard
                });
                if let Some(shard) = started {
                    if let Some(b) = busy.get_mut(shard as usize) {
                        *b += 1;
                    }
                    push(
                        &mut heap,
                        now + service,
                        Event::Complete {
                            client,
                            shard,
                            submitted: now,
                        },
                    );
                    continue;
                }
                let queued = live.iter().copied().find(|&n| {
                    queues
                        .get(n as usize)
                        .map(|q| q.len() < queue_depth)
                        .unwrap_or(false)
                });
                if let Some(shard) = queued {
                    if let Some(q) = queues.get_mut(shard as usize) {
                        q.push_back((client, now, service));
                        if let Some(peak) = peak_queue.get_mut(shard as usize) {
                            *peak = (*peak).max(q.len() as u64);
                        }
                    }
                } else {
                    shed += 1;
                    push(&mut heap, now + SHED_BACKOFF_US, Event::Arrive { client });
                }
            }
        }
    }

    let mut overall = LogHistogram::new();
    for h in &per_shard {
        overall.merge(h);
    }
    let completed = overall.count() as usize;
    let throughput_qps = if end_time > 0 {
        completed as f64 / (end_time as f64 / 1_000_000.0)
    } else {
        0.0
    };
    let point = ClusterLoadPoint {
        shards,
        concurrency,
        workers_per_shard,
        offered: total,
        completed,
        shed,
        failovers,
        unrouted,
        throughput_qps,
        p50_us: overall.quantile_us(50),
        p95_us: overall.quantile_us(95),
        p99_us: overall.quantile_us(99),
        sim_total_ms: end_time as f64 / 1000.0,
    };
    ClusterSimOutcome {
        point,
        per_shard,
        overall,
        per_shard_completed,
        per_shard_peak_queue: peak_queue,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_candidates(total: usize, shards: u32) -> Vec<Vec<u32>> {
        (0..total)
            .map(|i| {
                let owner = (i as u32) % shards;
                vec![owner, (owner + 1) % shards]
            })
            .collect()
    }

    #[test]
    fn single_shard_single_client_sees_pure_service_time() {
        let service = vec![1_000u64; 10];
        let cands = vec![vec![0u32]; 10];
        let out = cluster_closed_loop(&service, &cands, 10, 1, 1, 2, 8, None);
        assert_eq!(out.point.completed, 10);
        assert_eq!(out.point.shed, 0);
        assert_eq!(out.point.sim_total_ms, 10.0);
        // Log-bucket bound: within one sub-bucket of 1000µs.
        assert!(
            (970..=1040).contains(&out.point.p50_us),
            "{}",
            out.point.p50_us
        );
    }

    #[test]
    fn accounting_always_balances() {
        let service: Vec<u64> = (0..64).map(|i| 500 + (i % 7) * 300).collect();
        let cands = uniform_candidates(64, 4);
        let out = cluster_closed_loop(&service, &cands, 512, 4, 16, 2, 2, None);
        assert_eq!(out.point.completed + out.point.shed, out.point.offered);
        assert_eq!(
            out.per_shard_completed.iter().sum::<u64>(),
            out.point.completed as u64
        );
    }

    #[test]
    fn overall_histogram_is_the_per_shard_merge() {
        let service: Vec<u64> = (0..40).map(|i| 800 + (i % 5) * 400).collect();
        let cands = uniform_candidates(40, 4);
        let out = cluster_closed_loop(&service, &cands, 400, 4, 8, 2, 4, None);
        let mut merged = LogHistogram::new();
        for h in &out.per_shard {
            merged.merge(h);
        }
        assert_eq!(merged, out.overall);
    }

    #[test]
    fn more_shards_raise_throughput() {
        let service = vec![2_000u64; 128];
        let one = cluster_closed_loop(
            &service,
            &uniform_candidates(128, 1),
            2048,
            1,
            32,
            2,
            8,
            None,
        );
        let eight = cluster_closed_loop(
            &service,
            &uniform_candidates(128, 8),
            2048,
            8,
            32,
            2,
            8,
            None,
        );
        assert!(
            eight.point.throughput_qps > one.point.throughput_qps * 3.0,
            "8 shards must scale: {} vs {}",
            eight.point.throughput_qps,
            one.point.throughput_qps
        );
    }

    #[test]
    fn identical_inputs_produce_identical_outcomes() {
        let service: Vec<u64> = (0..50).map(|i| 500 + (i % 9) * 250).collect();
        let cands = uniform_candidates(50, 4);
        let a = cluster_closed_loop(&service, &cands, 1000, 4, 12, 2, 4, None);
        let b = cluster_closed_loop(&service, &cands, 1000, 4, 12, 2, 4, None);
        assert_eq!(a, b);
    }

    #[test]
    fn outages_cause_failovers_without_losing_accounting() {
        let plan = FaultPlan::node_outages(17, 0.4);
        let service = vec![1_000u64; 64];
        let cands = uniform_candidates(64, 4);
        let out = cluster_closed_loop(&service, &cands, 2048, 4, 16, 2, 8, Some((&plan, 10_000)));
        assert!(out.point.failovers > 0, "0.4 outage rate must fail over");
        assert_eq!(out.point.completed + out.point.shed, out.point.offered);
    }
}
