//! End-to-end query benchmarks: MKLGP (with and without MKA) against
//! the global-fusion baselines — the per-query time story behind the
//! Table II/III time columns.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use multirag_baselines::common::FusionMethod;
use multirag_baselines::fusionquery::FusionQuery;
use multirag_baselines::truthfinder::TruthFinder;
use multirag_core::{MklgpPipeline, MultiRagConfig};
use multirag_datasets::movies::MoviesSpec;

fn pipeline_benches(c: &mut Criterion) {
    let data = MoviesSpec::small().generate(42);
    let mut group = c.benchmark_group("query_answering");

    group.bench_function("multirag_with_mka", |b| {
        let mut pipeline = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42);
        let mut i = 0usize;
        b.iter(|| {
            let q = &data.queries[i % data.queries.len()];
            i += 1;
            black_box(pipeline.answer(q))
        })
    });

    group.bench_function("multirag_without_mka", |b| {
        let mut pipeline =
            MklgpPipeline::new(&data.graph, MultiRagConfig::default().without_mka(), 42);
        let mut i = 0usize;
        b.iter(|| {
            let q = &data.queries[i % data.queries.len()];
            i += 1;
            black_box(pipeline.answer(q))
        })
    });

    group.bench_function("truthfinder_query", |b| {
        let mut tf = TruthFinder::default();
        tf.prepare(&data.graph);
        let mut i = 0usize;
        b.iter(|| {
            let q = &data.queries[i % data.queries.len()];
            i += 1;
            black_box(tf.answer(&data.graph, q))
        })
    });

    group.bench_function("fusionquery_query", |b| {
        let mut fq = FusionQuery::default();
        let mut i = 0usize;
        b.iter(|| {
            let q = &data.queries[i % data.queries.len()];
            i += 1;
            black_box(fq.answer(&data.graph, q))
        })
    });

    group.bench_function("truthfinder_prepare", |b| {
        b.iter(|| {
            let mut tf = TruthFinder::default();
            tf.prepare(black_box(&data.graph));
            black_box(tf)
        })
    });

    group.bench_function("mklgp_pipeline_build", |b| {
        b.iter(|| {
            black_box(MklgpPipeline::new(
                black_box(&data.graph),
                MultiRagConfig::default(),
                42,
            ))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = pipeline_benches
}
criterion_main!(benches);
