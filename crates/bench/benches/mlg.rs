//! Benchmarks of the MKA module: multi-source line-graph construction,
//! homologous matching, and the confidence computations — the costs the
//! paper's Q5 discussion attributes to knowledge aggregation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use multirag_core::confidence::{graph_confidence, mi_similarity};
use multirag_core::homologous::match_homologous;
use multirag_core::{IncrementalMlg, MultiSourceLineGraph};
use multirag_datasets::spec::Scale;
use multirag_datasets::{flights::FlightsSpec, movies::MoviesSpec, stocks::StocksSpec};
use multirag_kg::{KnowledgeGraph, LineGraph, Value};

fn construction_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlg_construction");
    for (label, kg) in [
        ("movies_small", MoviesSpec::small().generate(42).graph),
        (
            "movies_bench",
            MoviesSpec::at_scale(Scale {
                entities: 200,
                queries: 10,
            })
            .generate(42)
            .graph,
        ),
        ("flights_small", FlightsSpec::small().generate(42).graph),
        ("stocks_small", StocksSpec::small().generate(42).graph),
    ] {
        group.bench_with_input(
            BenchmarkId::new("line_graph", format!("{label}/{}t", kg.triple_count())),
            &kg,
            |b, kg| b.iter(|| LineGraph::from_graph(black_box(kg))),
        );
        group.bench_with_input(
            BenchmarkId::new(
                "homologous_match",
                format!("{label}/{}t", kg.triple_count()),
            ),
            &kg,
            |b, kg| b.iter(|| match_homologous(black_box(kg))),
        );
        group.bench_with_input(
            BenchmarkId::new("full_mlg", format!("{label}/{}t", kg.triple_count())),
            &kg,
            |b, kg| b.iter(|| MultiSourceLineGraph::build(black_box(kg))),
        );
    }
    group.finish();
}

fn confidence_benches(c: &mut Criterion) {
    // A conflicted 8-claim homologous group.
    let mut kg = KnowledgeGraph::new();
    let e = kg.add_entity("X", "d");
    let r = kg.add_relation("attr");
    for i in 0..8 {
        let s = kg.add_source(&format!("s{i}"), "json", "d");
        let v = if i < 5 { "majority" } else { "minority" };
        kg.add_triple(e, r, Value::from(v), s, 0);
    }
    let sets = match_homologous(&kg);
    let group_ref = &sets.groups[0];

    let mut group = c.benchmark_group("confidence");
    group.bench_function("mi_similarity_singletons", |b| {
        let a = Value::from("delayed");
        let bb = Value::from("on-time");
        b.iter(|| mi_similarity(black_box(&a), black_box(&bb)))
    });
    group.bench_function("mi_similarity_sets", |b| {
        let a = Value::List(vec![Value::from("x"), Value::from("y"), Value::from("z")]);
        let bb = Value::List(vec![Value::from("x"), Value::from("y"), Value::from("w")]);
        b.iter(|| mi_similarity(black_box(&a), black_box(&bb)))
    });
    group.bench_function("graph_confidence_8_claims", |b| {
        b.iter(|| graph_confidence(black_box(&kg), black_box(group_ref)))
    });
    group.finish();
}

fn incremental_benches(c: &mut Criterion) {
    // Ablation: per-triple incremental maintenance vs full rebuild on
    // every batch — the design choice behind `IncrementalMlg`.
    let kg = MoviesSpec::small().generate(42).graph;
    let mut group = c.benchmark_group("incremental_vs_rebuild");
    group.bench_function("incremental_full_stream", |b| {
        b.iter(|| {
            let mut index = IncrementalMlg::new();
            for (tid, t) in kg.iter_triples() {
                index.insert(t.subject, t.predicate, t.source, tid);
            }
            black_box(index)
        })
    });
    group.bench_function("batch_rebuild_once", |b| {
        b.iter(|| black_box(match_homologous(&kg)))
    });
    group.bench_function("incremental_single_insert", |b| {
        let mut index = IncrementalMlg::from_graph(&kg);
        let (tid, t) = kg.iter_triples().next().unwrap();
        b.iter(|| black_box(index.insert(t.subject, t.predicate, t.source, tid)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = construction_benches, confidence_benches, incremental_benches
}
criterion_main!(benches);
