//! Microbenchmarks of the substrate crates: parser throughput and
//! retrieval-index costs (part of the Q5 module-time analysis).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use multirag_datasets::movies::MoviesSpec;
use multirag_datasets::multihop::{MultiHopFlavor, MultiHopSpec};
use multirag_datasets::render::render_all_sources;
use multirag_ingest::{csv, json, xml};
use multirag_retrieval::{Bm25Index, TfIdfIndex};

fn parser_benches(c: &mut Criterion) {
    let data = MoviesSpec::small().generate(42);
    let raw = render_all_sources(&data);
    let csv_text = raw
        .iter()
        .find(|r| matches!(r.format, multirag_ingest::SourceFormat::Csv))
        .map(|r| r.content.clone())
        .expect("csv source");
    let json_text = raw
        .iter()
        .find(|r| matches!(r.format, multirag_ingest::SourceFormat::Json))
        .map(|r| r.content.clone())
        .expect("json source");
    // Books carry the XML sources.
    let books = multirag_datasets::books::BooksSpec::small().generate(42);
    let xml_text = render_all_sources(&books)
        .into_iter()
        .find(|r| matches!(r.format, multirag_ingest::SourceFormat::Xml))
        .map(|r| r.content)
        .expect("xml source");

    let mut group = c.benchmark_group("parsers");
    group.throughput(Throughput::Bytes(csv_text.len() as u64));
    group.bench_function("csv", |b| {
        b.iter(|| csv::parse(black_box(&csv_text)).unwrap())
    });
    group.throughput(Throughput::Bytes(json_text.len() as u64));
    group.bench_function("json", |b| {
        b.iter(|| json::parse(black_box(&json_text)).unwrap())
    });
    group.throughput(Throughput::Bytes(xml_text.len() as u64));
    group.bench_function("xml", |b| {
        b.iter(|| xml::parse(black_box(&xml_text)).unwrap())
    });
    group.finish();
}

fn retrieval_benches(c: &mut Criterion) {
    let data = MultiHopSpec::small(MultiHopFlavor::Hotpot).generate(42);
    let docs: Vec<&str> = data.corpus.iter().map(|d| d.text.as_str()).collect();

    let mut group = c.benchmark_group("retrieval");
    group.bench_function("bm25_build", |b| {
        b.iter(|| Bm25Index::build(black_box(docs.iter().copied())))
    });
    group.bench_function("tfidf_build", |b| {
        b.iter(|| TfIdfIndex::build(black_box(docs.iter().copied())))
    });
    let bm25 = Bm25Index::build(docs.iter().copied());
    let tfidf = TfIdfIndex::build(docs.iter().copied());
    for k in [5usize, 20] {
        group.bench_with_input(BenchmarkId::new("bm25_search", k), &k, |b, &k| {
            b.iter(|| bm25.search(black_box("birthplace of the director"), k))
        });
        group.bench_with_input(BenchmarkId::new("tfidf_search", k), &k, |b, &k| {
            b.iter(|| tfidf.search(black_box("birthplace of the director"), k))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = parser_benches, retrieval_benches
}
criterion_main!(benches);
