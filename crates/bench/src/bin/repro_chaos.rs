//! Chaos harness — degradation curves under deterministic fault
//! injection.
//!
//! Sweeps a fault rate over every benchmark dataset along two legs:
//!
//! * **runtime** — source outages, LLM failures and latency spikes hit
//!   the live MKLGP pipeline (quarantine, retry/backoff, abstention);
//! * **ingest** — rendered source files are corrupted (bit flips /
//!   truncation) and re-ingested leniently, so whatever still parses
//!   flows on and the rest surfaces as skip diagnostics.
//!
//! The contract: quality may fall as the fault rate rises, but failures
//! surface as abstentions and quarantines — never silent wrong answers
//! — and a fixed seed reproduces `results/chaos.json` byte-for-byte.
//!
//! A shared metrics-only observer spans the whole sweep: chaos events
//! (quarantines, retries, dead calls, abstains, lenient ingest skips)
//! land as named counters, the harness asserts they actually fired, and
//! the counter snapshot is exported to `results/obs_chaos.json`
//! (counters only — counter sums are order-independent, so the file is
//! byte-stable even though legs run on a thread pool).
//!
//! ```sh
//! cargo run --release -p multirag-bench --bin repro_chaos
//! ```

use multirag_bench::{check_schema, seed};
use multirag_core::MultiRagConfig;
use multirag_datasets::render::render_source;
use multirag_datasets::spec::MultiSourceDataset;
use multirag_eval::table::{fmt1, Table};
use multirag_eval::{chaos_report_json, parallel_map, run_multirag_chaos_observed, ChaosPoint};
use multirag_faults::{corrupt_text, FaultPlan};
use multirag_ingest::{fuse_sources_with, load_into_graph, IngestMode, RawSource};
use multirag_obs::{ObsHandle, Observer};

/// The fault rates swept by the harness.
const RATES: [f64; 4] = [0.0, 0.05, 0.1, 0.2];

/// Runtime leg: the pristine graph, with the fault plan injected into
/// the pipeline itself.
fn runtime_curve(data: &MultiSourceDataset, seed: u64, obs: &ObsHandle) -> Vec<ChaosPoint> {
    RATES
        .iter()
        .map(|&rate| {
            run_multirag_chaos_observed(
                data,
                &data.graph,
                MultiRagConfig::default(),
                seed,
                FaultPlan::uniform(seed, rate),
                rate,
                Some(obs.clone()),
            )
        })
        .collect()
}

/// Ingest leg: render each source to its on-disk format, corrupt a
/// seeded fraction of the files, re-ingest leniently and evaluate the
/// pipeline (itself healthy) on the surviving graph.
fn ingest_curve(data: &MultiSourceDataset, seed: u64, obs: &ObsHandle) -> Vec<ChaosPoint> {
    let rendered: Vec<RawSource> = data
        .sources
        .iter()
        .map(|s| render_source(data, s.id))
        .collect();
    RATES
        .iter()
        .map(|&rate| {
            let plan = FaultPlan::uniform(seed, rate);
            let corrupted: Vec<RawSource> = rendered
                .iter()
                .map(|src| {
                    let mut src = src.clone();
                    if let Some(kind) = plan.record_corruption(&src.name, "content") {
                        src.content = corrupt_text(kind, seed, &src.name, &src.content);
                    }
                    src
                })
                .collect();
            let report = fuse_sources_with(&corrupted, IngestMode::Lenient)
                .expect("lenient fusion never fails");
            report.record_metrics(&obs.registry());
            let graph =
                load_into_graph(&corrupted, &report.adapted).expect("fused indices are in range");
            let mut point = run_multirag_chaos_observed(
                data,
                &graph,
                MultiRagConfig::default(),
                seed,
                FaultPlan::healthy(seed),
                rate,
                Some(obs.clone()),
            );
            point.skipped_records = report.diagnostics.len();
            point
        })
        .collect()
}

fn main() {
    let seed = seed();
    let scale = format!("{:?}", multirag_bench::scale());
    println!("Chaos harness: fault-rate sweep {RATES:?} (scale = {scale}, seed = {seed})");

    let datasets = multirag_bench::all_datasets();
    let obs = Observer::metrics_only();
    let legs: Vec<(usize, bool)> = (0..datasets.len())
        .flat_map(|i| [(i, false), (i, true)])
        .collect();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let sections: Vec<(String, Vec<ChaosPoint>)> = parallel_map(legs, threads, |(i, ingest)| {
        let data = &datasets[i];
        if ingest {
            (
                format!("ingest:{}", data.name),
                ingest_curve(data, seed, &obs),
            )
        } else {
            (
                format!("runtime:{}", data.name),
                runtime_curve(data, seed, &obs),
            )
        }
    });

    let mut table = Table::new(
        "Degradation curves",
        &[
            "Curve",
            "Rate",
            "F1/%",
            "Answer/%",
            "Abstain/%",
            "Halluc/%",
            "Quar",
            "Retry",
            "Dead",
            "Skip",
        ],
    );
    for (name, points) in &sections {
        for p in points {
            table.row(vec![
                name.clone(),
                fmt1(p.fault_rate * 100.0),
                fmt1(p.f1),
                fmt1(p.answered_rate * 100.0),
                fmt1(p.abstained_rate * 100.0),
                fmt1(p.hallucination_rate * 100.0),
                p.quarantined_sources.to_string(),
                p.llm_retries.to_string(),
                p.llm_failed_calls.to_string(),
                p.skipped_records.to_string(),
            ]);
        }
    }
    println!("{}", table.render());

    for (name, points) in &sections {
        let healthy = &points[0];
        let worst = &points[points.len() - 1];
        if worst.f1 > healthy.f1 + 1e-9 {
            println!(
                "warning: {name} improved under faults ({} -> {})",
                healthy.f1, worst.f1
            );
        }
        if worst.abstained_rate + 1e-9 < healthy.abstained_rate {
            println!("warning: {name} abstained less under faults");
        }
    }

    // The whole point of chaos: the failure machinery must actually
    // fire. A sweep where nothing was quarantined, retried or abstained
    // means the fault injection silently stopped working.
    let snap = obs.registry().snapshot();
    for counter in [
        "chaos_quarantine_events_total",
        "chaos_llm_retries_total",
        "chaos_abstain_total",
        "ingest_lenient_skips_total",
    ] {
        assert!(
            snap.counter(counter) > 0,
            "chaos sweep recorded zero {counter} — fault injection is not reaching the pipeline"
        );
    }
    println!(
        "chaos counters: {} quarantine events, {} retries, {} dead calls, {} abstains, {} lenient skips",
        snap.counter("chaos_quarantine_events_total"),
        snap.counter("chaos_llm_retries_total"),
        snap.counter("chaos_llm_failed_calls_total"),
        snap.counter("chaos_abstain_total"),
        snap.counter("ingest_lenient_skips_total"),
    );

    let json = chaos_report_json(seed, &scale, &sections);
    let out_dir = std::path::Path::new("results");
    if let Err(err) = std::fs::create_dir_all(out_dir)
        .and_then(|()| std::fs::write(out_dir.join("chaos.json"), &json))
    {
        println!("note: could not write results/chaos.json: {err}");
    } else {
        println!(
            "wrote results/chaos.json ({} bytes; bit-identical for a fixed seed)",
            json.len()
        );
    }
    check_schema("chaos", &json);

    // Counters only: sums are order-independent, so this file is
    // byte-stable for a fixed seed even though the legs above raced on
    // a thread pool. (Gauges and wall-time histograms are not.)
    let mut obs_json = format!("{{\"seed\":{seed},\"scale\":\"{scale}\",\"counters\":[");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            obs_json.push(',');
        }
        let escaped = name.replace('\\', "\\\\").replace('"', "\\\"");
        obs_json.push_str(&format!("{{\"name\":\"{escaped}\",\"value\":{value}}}"));
    }
    obs_json.push_str("]}");
    match std::fs::write(out_dir.join("obs_chaos.json"), &obs_json) {
        Ok(()) => println!("wrote results/obs_chaos.json ({} bytes)", obs_json.len()),
        Err(err) => println!("note: could not write results/obs_chaos.json: {err}"),
    }
    check_schema("obs_chaos", &obs_json);
}
