//! Per-stage cost profile of the MKLGP pipeline.
//!
//! Runs the observed pipeline over every benchmark dataset and prints
//! where the time goes, stage by stage (`mlg_build` →
//! `homologous_group` → `graph_confidence` → `node_confidence` →
//! `generation`), splitting measured wall time from simulated LLM
//! latency and reporting the input/output cardinality of each stage.
//!
//! Each dataset is run **twice** with independent observers and the
//! canonical trace export is asserted byte-identical across the two
//! runs — the determinism contract `results/obs_traces_<name>.json`
//! relies on. Wall-clock columns vary run to run; simulated time,
//! cardinalities, counters and traces do not.
//!
//! Artifacts: `results/obs_profile.json` (counters/gauges/deterministic
//! stage stats; schema-gated by `MULTIRAG_CHECK_SCHEMA=1`) and one
//! `results/obs_traces_<name>.json` per dataset.
//!
//! ```sh
//! cargo run --release -p multirag-bench --bin repro_profile
//! ```

use multirag_bench::{check_schema, seed};
use multirag_core::MultiRagConfig;
use multirag_eval::run_multirag_observed;
use multirag_eval::table::{fmt1, Table};
use multirag_obs::{traces_json, ObsHandle, Observer};

/// JSON string literal with the two escapes metric names can contain
/// (label values are quoted, e.g. `...{reason="generation_failed"}`).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The deterministic slice of one dataset's observer state: stage
/// stats minus wall clock, plus the full counter and gauge sets.
/// Counters/gauges are arrays of `{name,value}` objects so the schema
/// outline does not depend on which labeled metrics happened to fire.
fn dataset_json(name: &str, queries: usize, obs: &ObsHandle) -> String {
    let mut out = format!("{{\"name\":{},\"queries\":{queries}", json_str(name));
    out.push_str(",\"stages\":[");
    for (i, p) in obs.profile().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"stage\":{},\"spans\":{},\"sim_ms\":{:.6},\"input\":{},\"output\":{}}}",
            json_str(p.stage.name()),
            p.spans,
            p.sim_ms,
            p.input,
            p.output
        ));
    }
    out.push_str("],\"counters\":[");
    let snap = obs.registry().snapshot();
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":{},\"value\":{value}}}",
            json_str(name)
        ));
    }
    out.push_str("],\"gauges\":[");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":{},\"value\":{value:.6}}}",
            json_str(name)
        ));
    }
    out.push_str("]}");
    out
}

fn main() {
    let seed = seed();
    let scale = format!("{:?}", multirag_bench::scale());
    println!("Stage profile (scale = {scale}, seed = {seed})");

    let out_dir = std::path::Path::new("results");
    let writable = std::fs::create_dir_all(out_dir).is_ok();

    let mut table = Table::new(
        "Per-stage cost breakdown (Wall/s varies run to run; the rest is deterministic)",
        &["Dataset", "Stage", "Spans", "Wall/s", "Sim/ms", "In", "Out"],
    );
    let mut datasets_json = Vec::new();
    for data in multirag_bench::all_datasets() {
        let obs = Observer::new();
        let row = run_multirag_observed(
            &data,
            &data.graph,
            MultiRagConfig::default(),
            seed,
            Some(obs.clone()),
        );

        // Determinism contract: a second observed run of the same seed
        // must export byte-identical canonical traces.
        let rerun = Observer::new();
        run_multirag_observed(
            &data,
            &data.graph,
            MultiRagConfig::default(),
            seed,
            Some(rerun.clone()),
        );
        let traces = traces_json(seed, &data.name, &obs.traces());
        let retraced = traces_json(seed, &data.name, &rerun.traces());
        assert_eq!(
            traces, retraced,
            "{}: trace export must be byte-identical across same-seed runs",
            data.name
        );

        for p in obs.profile() {
            table.row(vec![
                data.name.clone(),
                p.stage.name().to_string(),
                p.spans.to_string(),
                format!("{:.4}", p.wall_s),
                fmt1(p.sim_ms),
                p.input.to_string(),
                p.output.to_string(),
            ]);
        }
        println!(
            "{}: {} queries, F1 {:.1}%, answered {:.1}%, traces byte-stable across reruns",
            data.name,
            data.queries.len(),
            row.f1,
            row.answered_rate * 100.0
        );

        // Tiered-index pruning rate: of the candidate claims the
        // descents probed (`bitset_and_ops`), how many the relation
        // bitset rejected before any value work happened.
        let snap = obs.registry().snapshot();
        let counter = |needle: &str| {
            snap.counters
                .iter()
                .find(|(name, _)| name == needle)
                .map_or(0, |&(_, value)| value)
        };
        let descents = counter("tindex_tier_descents_total");
        let probed = counter("tindex_bitset_and_ops_total");
        let pruned = counter("tindex_candidates_pruned_total");
        if probed > 0 {
            println!(
                "tindex [{}]: {descents} descents, {probed} candidates probed, {pruned} pruned ({:.1}% pruning rate)",
                data.name,
                pruned as f64 / probed as f64 * 100.0
            );
        }

        if writable {
            let path = out_dir.join(format!("obs_traces_{}.json", data.name));
            match std::fs::write(&path, &traces) {
                Ok(()) => println!("wrote {} ({} bytes)", path.display(), traces.len()),
                Err(err) => println!("note: could not write {}: {err}", path.display()),
            }
        }
        // Each dataset gates its own section: nullable fields and
        // sometimes-empty arrays collapse to different outlines per
        // dataset, so one shared golden line cannot cover all four.
        check_schema(&format!("obs_traces_{}", data.name), &traces);
        datasets_json.push(dataset_json(&data.name, data.queries.len(), &obs));
    }
    println!("{}", table.render());
    println!("Sim/ms is simulated LLM latency attributed by the cost model; see EXPERIMENTS.md.");

    let profile = format!(
        "{{\"seed\":{seed},\"scale\":\"{scale}\",\"datasets\":[{}]}}",
        datasets_json.join(",")
    );
    if writable {
        match std::fs::write(out_dir.join("obs_profile.json"), &profile) {
            Ok(()) => println!("wrote results/obs_profile.json ({} bytes)", profile.len()),
            Err(err) => println!("note: could not write results/obs_profile.json: {err}"),
        }
    }
    check_schema("obs_profile", &profile);
}
