//! Serving harness — deterministic closed-loop load over the
//! epoch-snapshotted serving stack.
//!
//! The run tells one story in four acts:
//!
//! 1. **Warm start & epoch 1** — the movies graph round-trips through
//!    `kg::persist`, an [`IndexWriter`] publishes epoch 1, and a
//!    three-wave workload (fresh / repeat / paraphrase) is served: a
//!    concurrent pass is checked answer-for-answer against the
//!    sequential oracle, and the oracle is checked against a cache-free
//!    batch pipeline (cache transparency + worker-pool correctness).
//! 2. **Closed-loop levels** — the oracle's per-request simulated
//!    service times drive the discrete-event closed loop at several
//!    concurrency levels; overload sheds deterministically.
//! 3. **Epoch 2** — serving feedback and streamed triple updates fold
//!    into a new epoch; epoch-scoped caches clear, the content-
//!    addressed LLM cache carries logic-form parses across the swap.
//! 4. **Brownout** — a fault plan plus a tight deadline hits epoch 2;
//!    cached answers keep serving through the brownout and failures
//!    surface as structured abstentions, never wrong answers.
//!
//! `results/serve.json` is byte-identical for a fixed seed — the CI
//! serve-smoke job runs this binary twice and diffs the artifacts.
//!
//! ```sh
//! cargo run --release -p multirag-bench --bin repro_serve
//! ```

use multirag_bench::{check_schema, seed};
use multirag_core::MultiRagConfig;
use multirag_datasets::movies::MoviesSpec;
use multirag_datasets::Query;
use multirag_eval::table::Table;
use multirag_faults::FaultPlan;
use multirag_kg::persist;
use multirag_obs::Observer;
use multirag_serve::{
    build_workload, closed_loop_detail, feedback_tally, level_row, serve_concurrent,
    serve_report_json, serve_sequential, tally_answers, CacheStack, EpochIndex, EpochSnapshot,
    EpochSummary, IndexWriter, LevelReport, ServeConfig, ServeReport, ServeRequest, ServeResponse,
    TripleUpdate,
};

fn summarize(snap: &EpochSnapshot) -> EpochSummary {
    EpochSummary {
        epoch: snap.epoch,
        triples: snap.graph.triple_count(),
        groups: snap.index.group_count(),
        isolated: snap.index.isolated_count(),
        updates_applied: snap.updates_applied,
    }
}

/// Replays one oracle wave through the closed loop at `concurrency`
/// clients and tallies answer quality over the requests that survived
/// admission.
fn level(
    label: String,
    epoch: u64,
    fault_rate: f64,
    oracle: &[ServeResponse],
    wave: &[ServeRequest],
    concurrency: usize,
    config: &ServeConfig,
) -> LevelReport {
    let service_us: Vec<u64> = oracle
        .iter()
        .map(|r| (r.service_ms * 1000.0).round().max(1.0) as u64)
        .collect();
    let (point, mask) =
        closed_loop_detail(&service_us, concurrency, config.workers, config.queue_depth);
    let mut served: Vec<ServeResponse> = Vec::new();
    let mut queries: Vec<&Query> = Vec::new();
    for ((response, request), &ok) in oracle.iter().zip(wave).zip(&mask) {
        if ok {
            served.push(response.clone());
            queries.push(&request.query);
        }
    }
    let tally = tally_answers(&served, &queries);
    LevelReport {
        label,
        epoch,
        fault_rate,
        point,
        tally,
    }
}

fn main() {
    let seed = seed();
    let scale = multirag_bench::scale();
    let scale_str = format!("{scale:?}");
    let config = MultiRagConfig::default();
    let serve_cfg = ServeConfig {
        workers: 4,
        queue_depth: 8,
        ..ServeConfig::default()
    };
    println!(
        "Serving harness: movies @ {scale_str}, seed {seed}, {} workers, queue depth {}",
        serve_cfg.workers, serve_cfg.queue_depth
    );

    let data = MoviesSpec::at_scale(scale).generate(seed);

    // Act 1: warm-start the writer from a persisted dump — the path a
    // restarted server takes — and publish epoch 1.
    let dump = persist::dump(&data.graph);
    let mut writer = IndexWriter::warm_start(&dump, config, seed).expect("persist dump loads");
    assert_eq!(
        writer.graph().triple_count(),
        data.graph.triple_count(),
        "warm start must reconstruct every triple"
    );
    let index = EpochIndex::new(writer.publish());
    let obs = Observer::metrics_only();
    index.attach_metrics(obs.registry());
    let caches = CacheStack::new();
    caches.attach_metrics(obs.registry());

    let mut epochs: Vec<EpochSummary> = Vec::new();
    let mut levels: Vec<LevelReport> = Vec::new();

    let snap1 = index.load();
    epochs.push(summarize(&snap1));
    let wave1 = build_workload(&data.queries, data.queries.len() * 3, seed);

    // Worker-pool correctness: a concurrent pass (scratch caches, so
    // fill races cannot leak into the canonical counters) must produce
    // exactly the oracle's answers.
    let concurrent = serve_concurrent(&snap1, &CacheStack::new(), &serve_cfg, wave1.clone());
    let oracle1 = serve_sequential(&snap1, &caches, &serve_cfg, &wave1);
    for (c, o) in concurrent.iter().zip(&oracle1) {
        assert_eq!(
            c.verdict, o.verdict,
            "concurrent serving diverged from the oracle at seq {}",
            o.seq
        );
    }
    println!(
        "epoch 1: {} requests, concurrent == sequential oracle",
        wave1.len()
    );

    // Cache transparency: a cache-free batch pipeline bound to the same
    // frozen epoch must emit identical answers.
    let mut parity_matches = true;
    let mut batch = snap1.pipeline();
    for (request, response) in wave1.iter().zip(&oracle1) {
        let expected = batch.answer(&request.query);
        let got = match &response.verdict {
            multirag_serve::ServeVerdict::Answered(answer) => answer,
            multirag_serve::ServeVerdict::Overloaded => {
                parity_matches = false;
                continue;
            }
        };
        if *got != expected {
            parity_matches = false;
        }
    }
    assert!(
        parity_matches,
        "served answers must match the cache-free batch pipeline"
    );
    let parity_queries = wave1.len();
    println!("parity: {parity_queries} answers identical to the batch pipeline");

    // Act 2: closed-loop levels over epoch 1.
    for concurrency in [1usize, 4, 16] {
        levels.push(level(
            format!("epoch1-c{concurrency}"),
            snap1.epoch,
            0.0,
            &oracle1,
            &wave1,
            concurrency,
            &serve_cfg,
        ));
    }

    // Act 3: fold serving feedback and streamed updates into epoch 2.
    let feedback = feedback_tally(&oracle1);
    writer.absorb_feedback(&feedback);
    let mut applied = 0u32;
    for (i, query) in data.queries.iter().take(data.queries.len() / 2).enumerate() {
        if let Some(gold) = query.gold.first() {
            // Corroborate known slots from a late-joining stream source:
            // no new entities or relations, so the extraction schema —
            // and with it the L3 cache namespace — is unchanged.
            writer.apply(&TripleUpdate {
                entity: query.entity.clone(),
                relation: query.attribute.clone(),
                value: gold.clone(),
                source: "movies-stream-0".to_string(),
                chunk: 9_000 + i as u32,
            });
            applied += 1;
        }
    }
    let snap2 = writer.publish_to(&index);
    caches.on_epoch_swap();
    epochs.push(summarize(&snap2));
    println!(
        "epoch 2: published after {} feedback entries + {applied} streamed updates",
        feedback.len()
    );

    let llm_hits_before = caches.counters().llm_hits;
    let wave2 = build_workload(&data.queries, data.queries.len() * 2, seed ^ 0x5EED);
    let oracle2 = serve_sequential(&snap2, &caches, &serve_cfg, &wave2);
    let llm_hits_after = caches.counters().llm_hits;
    assert!(
        llm_hits_after > llm_hits_before,
        "logic-form parses must carry across the epoch swap via the L3 cache"
    );
    levels.push(level(
        "epoch2-c4".to_string(),
        snap2.epoch,
        0.0,
        &oracle2,
        &wave2,
        4,
        &serve_cfg,
    ));

    // Act 4: brownout — faults plus a tight retry deadline on epoch 2.
    let fault_rate = 0.15;
    let fault_cfg = ServeConfig {
        deadline_ms: 1_500.0,
        fault_plan: Some(FaultPlan::uniform(seed, fault_rate)),
        ..serve_cfg.clone()
    };
    let wave3 = build_workload(&data.queries, data.queries.len() * 2, seed ^ 0xFA17);
    let oracle3 = serve_sequential(&snap2, &caches, &fault_cfg, &wave3);
    levels.push(level(
        "faults-c16".to_string(),
        snap2.epoch,
        fault_rate,
        &oracle3,
        &wave3,
        16,
        &fault_cfg,
    ));

    let cache = caches.counters();
    assert!(cache.result_hits > 0, "workload repeats must hit L1");
    assert!(cache.memo_hits > 0, "paraphrases must hit the L2 memo");
    assert!(cache.llm_hits > 0, "the L3 response cache must hit");

    let mut table = Table::new(
        "Serving levels (simulated time)",
        &[
            "Level", "C", "Done", "Shed", "QPS", "p50/ms", "p99/ms", "Abstain",
        ],
    );
    for l in &levels {
        table.row(level_row(l));
    }
    println!("{}", table.render());
    println!(
        "caches: L1 {}/{} L2 {}/{} L3 {}/{} (hits/misses)",
        cache.result_hits,
        cache.result_misses,
        cache.memo_hits,
        cache.memo_misses,
        cache.llm_hits,
        cache.llm_misses
    );

    let report = ServeReport {
        seed,
        scale: scale_str,
        dataset: data.name.clone(),
        workers: serve_cfg.workers,
        queue_depth: serve_cfg.queue_depth,
        deadline_ms: serve_cfg.deadline_ms,
        epochs,
        levels,
        cache,
        parity_matches,
        parity_queries,
    };
    let json = serve_report_json(&report);
    let out_dir = std::path::Path::new("results");
    if let Err(err) = std::fs::create_dir_all(out_dir)
        .and_then(|()| std::fs::write(out_dir.join("serve.json"), &json))
    {
        println!("note: could not write results/serve.json: {err}");
    } else {
        println!(
            "wrote results/serve.json ({} bytes; bit-identical for a fixed seed)",
            json.len()
        );
    }
    check_schema("serve", &json);
}
