//! Deterministic perf harness for the one-shot MCC kernels.
//!
//! Measures the MCC stage (claim-profile build + graph gate + node
//! assessment) in isolation, comparing the interned-profile kernel
//! path against the retained naive reference implementation at 1×, 4×
//! and 16× synthetic slot scale, on every benchmark dataset. A
//! counting global allocator attributes heap traffic to each serial
//! sweep; kernel op counters (NMI pairs, profiles built, interner
//! hits/misses) come from the pipeline itself.
//!
//! Three equivalence gates run inside the harness and abort on any
//! mismatch:
//!
//! * **kernel vs reference** — outcome digests (every confidence bit,
//!   pair count and simulated cost) must match at every scale;
//! * **parallel vs serial** — a 4-worker [`mcc_sweep`] must reproduce
//!   the serial outcome digest, usage and counters;
//! * **fan-out byte-identity** — `run_multirag_fanout` at 1 and 4
//!   workers, kernel and reference config, must emit byte-identical
//!   canonical trace JSON and identical result rows.
//!
//! Artifacts: `results/perf.json` + `results/perf.txt` (deterministic
//! — CI runs the binary twice and `cmp`s both; schema-gated by
//! `MULTIRAG_CHECK_SCHEMA=1`) and `BENCH_perf.json` at the repo root
//! (wall-clock timings, non-deterministic by nature, never compared).
//!
//! ```sh
//! cargo run --release -p multirag-bench --bin repro_perf
//! ```

use multirag_bench::{check_schema, replicate_graph, schema_outline, seed};
use multirag_core::{KernelCounters, MccOutcome, MklgpPipeline, MultiRagConfig};
use multirag_eval::fanout::{mcc_sweep, run_multirag_fanout};
use multirag_eval::table::{fmt2, Table};
use multirag_kg::FxHasher;
use multirag_obs::json::JsonObj;
use multirag_obs::{traces_json, Observer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Pass-through allocator that counts allocations and bytes. Only
/// `alloc`/`realloc` count — frees are irrelevant to the "how much
/// heap traffic does the stage generate" question the harness asks.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

/// Order-sensitive digest over every deterministic field of a sweep's
/// outcomes. Wall-clock (`StageCost::wall_s`) is excluded; simulated
/// milliseconds, pair counts and all confidence bits are included, so
/// two sweeps digest equal iff they agree bit-for-bit.
fn digest_outcomes(outcomes: &[MccOutcome]) -> u64 {
    let mut h = FxHasher::default();
    outcomes.len().hash(&mut h);
    for o in outcomes {
        o.gated.hash(&mut h);
        match &o.graph {
            Some(g) => {
                1u8.hash(&mut h);
                g.value.to_bits().hash(&mut h);
                g.unordered_pairs.hash(&mut h);
                g.ordered_pairs.hash(&mut h);
            }
            None => 0u8.hash(&mut h),
        }
        for nodes in [&o.kept, &o.dropped] {
            nodes.len().hash(&mut h);
            for n in nodes {
                n.triple.index().hash(&mut h);
                n.value.hash(&mut h);
                n.source.index().hash(&mut h);
                n.consistency.to_bits().hash(&mut h);
                n.auth_llm.to_bits().hash(&mut h);
                n.auth_hist.to_bits().hash(&mut h);
                n.authority.to_bits().hash(&mut h);
                n.confidence.to_bits().hash(&mut h);
            }
        }
        o.graph_cost.sim_ms.to_bits().hash(&mut h);
        o.node_cost.sim_ms.to_bits().hash(&mut h);
    }
    h.finish()
}

/// One measured serial MCC sweep over every slot group of a pipeline.
struct StageRun {
    digest: u64,
    allocs: u64,
    bytes: u64,
    best_us: u64,
    counters: KernelCounters,
    interner_hits: u64,
    interner_misses: u64,
    groups: usize,
}

const REPS: usize = 3;

/// Runs the MCC stage serially (one fresh [`multirag_core::MccWorker`]
/// per repetition, no threads — so the allocation count is exactly the
/// stage's own traffic) `REPS` times. Allocation counts and op
/// counters come from the first repetition (they are identical across
/// reps); wall time is best-of-`REPS` in integer microseconds.
fn serial_stage(pipeline: &MklgpPipeline<'_>) -> StageRun {
    let groups = pipeline.slot_groups();
    let mut run = StageRun {
        digest: 0,
        allocs: 0,
        bytes: 0,
        best_us: u64::MAX,
        counters: KernelCounters::default(),
        interner_hits: 0,
        interner_misses: 0,
        groups: groups.len(),
    };
    for rep in 0..REPS {
        let mut worker = pipeline.mcc_worker();
        let (h0, m0) = worker.interner_stats();
        let c0 = worker.counters();
        let mut outcomes: Vec<MccOutcome> = Vec::with_capacity(groups.len());
        let (a0, b0) = alloc_snapshot();
        let start = Instant::now();
        for group in groups {
            // Same per-cell metering protocol as `mcc_sweep`: a fresh
            // usage meter per group keeps the simulated-cost floats
            // bit-identical to the parallel path (a long-running
            // accumulator would drift in the low ULPs).
            worker.reset_usage();
            outcomes.push(worker.run(group));
        }
        let us = start.elapsed().as_micros() as u64;
        let (a1, b1) = alloc_snapshot();
        run.best_us = run.best_us.min(us);
        if rep == 0 {
            run.digest = digest_outcomes(&outcomes);
            run.allocs = a1 - a0;
            run.bytes = b1 - b0;
            run.counters = worker.counters().since(c0);
            let (h1, m1) = worker.interner_stats();
            run.interner_hits = h1 - h0;
            run.interner_misses = m1 - m0;
        }
    }
    run
}

/// Per `(dataset, slot scale)` measurement cell.
struct Cell {
    dataset: String,
    factor: usize,
    kernel: StageRun,
    reference: StageRun,
    parallel_us: u64,
}

fn ratio(a: u64, b: u64) -> f64 {
    a as f64 / (b.max(1)) as f64
}

fn main() {
    let seed = seed();
    let scale = multirag_bench::scale();
    let scale_str = format!("{scale:?}");
    let config = MultiRagConfig::default();
    println!("One-shot MCC perf harness @ {scale_str}, seed {seed} ({REPS} reps, best-of)");

    let datasets = multirag_bench::all_datasets();
    let mut cells: Vec<Cell> = Vec::new();
    let mut fanout_rows: Vec<(String, bool, bool)> = Vec::new();

    for data in &datasets {
        for &factor in &[1usize, 4, 16] {
            let graph = replicate_graph(&data.graph, factor);
            let kernel_pipe = MklgpPipeline::new(&graph, config, seed);
            let reference_pipe = MklgpPipeline::new(&graph, config.with_reference_mcc(), seed);
            let kernel = serial_stage(&kernel_pipe);
            let reference = serial_stage(&reference_pipe);
            assert_eq!(
                kernel.digest, reference.digest,
                "{} @{factor}x: kernel MCC must be bit-identical to reference",
                data.name
            );

            let mut parallel_us = u64::MAX;
            let mut parallel_digest = 0u64;
            for rep in 0..REPS {
                let start = Instant::now();
                let sweep = mcc_sweep(&kernel_pipe, 4);
                let us = start.elapsed().as_micros() as u64;
                parallel_us = parallel_us.min(us);
                if rep == 0 {
                    parallel_digest = digest_outcomes(&sweep.outcomes);
                    assert_eq!(
                        sweep.counters, kernel.counters,
                        "{} @{factor}x: parallel op counters must match serial",
                        data.name
                    );
                }
            }
            assert_eq!(
                kernel.digest, parallel_digest,
                "{} @{factor}x: 4-worker sweep must be bit-identical to serial",
                data.name
            );

            cells.push(Cell {
                dataset: data.name.clone(),
                factor,
                kernel,
                reference,
                parallel_us,
            });
        }

        // Fan-out byte-identity on the un-replicated dataset: worker
        // count and kernel/reference config must both be invisible in
        // the canonical trace export and the result row.
        let obs_w1 = Observer::new();
        let row_w1 = run_multirag_fanout(data, &data.graph, config, seed, 1, Some(obs_w1.clone()));
        let obs_w4 = Observer::new();
        let row_w4 = run_multirag_fanout(data, &data.graph, config, seed, 4, Some(obs_w4.clone()));
        let obs_ref = Observer::new();
        let row_ref = run_multirag_fanout(
            data,
            &data.graph,
            config.with_reference_mcc(),
            seed,
            4,
            Some(obs_ref.clone()),
        );
        let t_w1 = traces_json(seed, &data.name, &obs_w1.traces());
        let t_w4 = traces_json(seed, &data.name, &obs_w4.traces());
        let t_ref = traces_json(seed, &data.name, &obs_ref.traces());
        let serial_equals_parallel = t_w1 == t_w4;
        let kernel_equals_reference = t_w1 == t_ref;
        assert!(
            serial_equals_parallel,
            "{}: fan-out traces must be byte-identical across worker counts",
            data.name
        );
        assert!(
            kernel_equals_reference,
            "{}: fan-out traces must be byte-identical kernel vs reference",
            data.name
        );
        for (a, b, label) in [
            (&row_w1, &row_w4, "workers 1 vs 4"),
            (&row_w1, &row_ref, "kernel vs reference"),
        ] {
            assert_eq!(
                a.f1.to_bits(),
                b.f1.to_bits(),
                "{}: f1 drift ({label})",
                data.name
            );
            assert_eq!(
                a.precision.to_bits(),
                b.precision.to_bits(),
                "{}: precision drift ({label})",
                data.name
            );
            assert_eq!(
                a.recall.to_bits(),
                b.recall.to_bits(),
                "{}: recall drift ({label})",
                data.name
            );
            assert_eq!(
                a.hallucination_rate.to_bits(),
                b.hallucination_rate.to_bits(),
                "{}: hallucination drift ({label})",
                data.name
            );
            assert_eq!(
                a.answered_rate.to_bits(),
                b.answered_rate.to_bits(),
                "{}: answered drift ({label})",
                data.name
            );
            assert_eq!(
                a.pt.simulated_s.to_bits(),
                b.pt.simulated_s.to_bits(),
                "{}: simulated-time drift ({label})",
                data.name
            );
        }
        fanout_rows.push((
            data.name.clone(),
            serial_equals_parallel,
            kernel_equals_reference,
        ));
        println!(
            "fanout [{}]: traces byte-identical (1w == 4w == reference), f1 {:.1}",
            data.name, row_w1.f1
        );
    }

    // Acceptance gate: ≥3× fewer allocations and ≥2× lower wall time
    // on the MCC stage at 16× slot scale, aggregated over datasets.
    let at16: Vec<&Cell> = cells.iter().filter(|c| c.factor == 16).collect();
    let kernel_allocs: u64 = at16.iter().map(|c| c.kernel.allocs).sum();
    let reference_allocs: u64 = at16.iter().map(|c| c.reference.allocs).sum();
    let kernel_us: u64 = at16.iter().map(|c| c.kernel.best_us).sum();
    let reference_us: u64 = at16.iter().map(|c| c.reference.best_us).sum();
    let alloc_ratio = ratio(reference_allocs, kernel_allocs);
    let wall_ratio = ratio(reference_us, kernel_us);
    let alloc_target_met = alloc_ratio >= 3.0;
    let wall_target_met = wall_ratio >= 2.0;

    // Deterministic table: no wall-clock columns.
    let mut table = Table::new(
        "One-shot MCC vs reference (serial stage, first-rep allocation counts)",
        &[
            "Dataset",
            "Scale",
            "Groups",
            "Profiles",
            "NMI pairs",
            "Interner h/m",
            "Kernel allocs",
            "Ref allocs",
            "Alloc ratio",
        ],
    );
    for c in &cells {
        table.row(vec![
            c.dataset.clone(),
            format!("{}x", c.factor),
            c.kernel.groups.to_string(),
            c.kernel.counters.profiles_built.to_string(),
            c.kernel.counters.nmi_pairs.to_string(),
            format!("{}/{}", c.kernel.interner_hits, c.kernel.interner_misses),
            c.kernel.allocs.to_string(),
            c.reference.allocs.to_string(),
            fmt2(ratio(c.reference.allocs, c.kernel.allocs)),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");

    // Wall timings go to stdout and BENCH_perf.json only — never into
    // the cmp'd artifacts.
    let mut wall_table = Table::new(
        &format!("Wall time, best of {REPS} (µs) — non-deterministic"),
        &[
            "Dataset",
            "Scale",
            "Kernel",
            "Reference",
            "Parallel(4w)",
            "Ref/Kernel",
        ],
    );
    for c in &cells {
        wall_table.row(vec![
            c.dataset.clone(),
            format!("{}x", c.factor),
            c.kernel.best_us.to_string(),
            c.reference.best_us.to_string(),
            c.parallel_us.to_string(),
            fmt2(ratio(c.reference.best_us, c.kernel.best_us)),
        ]);
    }
    println!("{}", wall_table.render());
    println!(
        "acceptance @16x: alloc ratio {alloc_ratio:.2} (target >= 3.0), wall ratio {wall_ratio:.2} (target >= 2.0)"
    );

    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            JsonObj::new()
                .str("dataset", &c.dataset)
                .usize("slot_scale", c.factor)
                .usize("groups", c.kernel.groups)
                .u64("profiles_built", c.kernel.counters.profiles_built)
                .u64("nmi_pairs", c.kernel.counters.nmi_pairs)
                .u64("interner_hits", c.kernel.interner_hits)
                .u64("interner_misses", c.kernel.interner_misses)
                .u64("kernel_allocs", c.kernel.allocs)
                .u64("kernel_bytes", c.kernel.bytes)
                .u64("reference_allocs", c.reference.allocs)
                .u64("reference_bytes", c.reference.bytes)
                .f64("alloc_ratio", ratio(c.reference.allocs, c.kernel.allocs))
                .bool(
                    "kernel_matches_reference",
                    c.kernel.digest == c.reference.digest,
                )
                .bool("parallel_matches_serial", true)
                .build()
        })
        .collect();
    let fanout_json: Vec<String> = fanout_rows
        .iter()
        .map(|(name, sp, kr)| {
            JsonObj::new()
                .str("dataset", name)
                .bool("serial_equals_parallel", *sp)
                .bool("kernel_equals_reference", *kr)
                .build()
        })
        .collect();
    let acceptance = JsonObj::new()
        .usize("slot_scale", 16)
        .f64("alloc_ratio", alloc_ratio)
        .f64("alloc_target", 3.0)
        .bool("alloc_target_met", alloc_target_met)
        .f64("wall_target", 2.0)
        .bool("wall_target_met", wall_target_met)
        .build();
    let json = JsonObj::new()
        .u64("seed", seed)
        .str("scale", &scale_str)
        .usize("reps", REPS)
        .arr("rows", rows)
        .arr("fanout", fanout_json)
        .raw("acceptance", &acceptance)
        .build();

    match std::fs::create_dir_all("results")
        .and_then(|_| std::fs::write("results/perf.json", &json))
        .and_then(|_| std::fs::write("results/perf.txt", &rendered))
    {
        Ok(()) => println!("wrote results/perf.json, results/perf.txt"),
        Err(e) => println!("note: could not write results/: {e}"),
    }
    match schema_outline(&json) {
        Ok(outline) => println!("schema outline [perf]: {outline}"),
        Err(e) => println!("note: schema outline failed: {e}"),
    }
    check_schema("perf", &json);

    // Wall-clock companion artifact. Uppercase stem on purpose: it is
    // non-deterministic and must stay out of the schema/cmp gates that
    // cover the lowercase results/ artifacts.
    let bench_rows: Vec<String> = cells
        .iter()
        .map(|c| {
            JsonObj::new()
                .str("dataset", &c.dataset)
                .usize("slot_scale", c.factor)
                .u64("kernel_us", c.kernel.best_us)
                .u64("reference_us", c.reference.best_us)
                .u64("parallel4_us", c.parallel_us)
                .f64("wall_ratio", ratio(c.reference.best_us, c.kernel.best_us))
                .build()
        })
        .collect();
    let bench = JsonObj::new()
        .u64("seed", seed)
        .str("scale", &scale_str)
        .usize("reps", REPS)
        .arr("rows", bench_rows)
        .f64("wall_ratio_at_16x", wall_ratio)
        .f64("alloc_ratio_at_16x", alloc_ratio)
        .build();
    match std::fs::write("BENCH_perf.json", &bench) {
        Ok(()) => println!("wrote BENCH_perf.json"),
        Err(e) => println!("note: could not write BENCH_perf.json: {e}"),
    }

    assert!(
        alloc_target_met,
        "allocation target missed at 16x: reference/kernel = {alloc_ratio:.2} < 3.0"
    );
    assert!(
        wall_target_met,
        "wall-time target missed at 16x: reference/kernel = {wall_ratio:.2} < 2.0"
    );
    println!("perf targets met at 16x slot scale");
}
