//! Sharded cluster harness — proves 1-node == N-node answer parity
//! and measures throughput scaling across shard counts.
//!
//! The run tells one story in six acts:
//!
//! 1. **Parity** — each of the four datasets round-trips through
//!    `kg::persist`, publishes epoch 1, and serves the same workload on
//!    1-, 2-, 4- and 8-node clusters. Every verdict and the full
//!    abstain tally must match the single-node baseline bit for bit:
//!    because every node answers from the same shared snapshot, slot
//!    routing shifts *load*, never *answers*.
//! 2. **Router determinism** — the movies workload is routed on 1, 2
//!    and 4 router workers; the scheduling-independent trace (seq,
//!    shard, failover, verdict) must be byte-identical across counts.
//! 3. **Merge tier** — hot slots fan out to every replica and the
//!    per-shard verdicts reduce through the cross-shard merge; replicas
//!    must agree unanimously and the merged answer must equal the
//!    owner's.
//! 4. **Degraded serving** — a deterministic node-outage plan knocks
//!    nodes out per window; the router fails over to replicas, answers
//!    stay identical to the healthy baseline, and a fully-dark slot
//!    surfaces as a structured abstain — never a panic.
//! 5. **Rebalance & resize** — epoch 2 publishes into the cluster
//!    (stable ownership under an unchanged ring) and the fleet grows
//!    4 → 8 with bounded slot movement; parity holds through both.
//! 6. **Scaling** — the discrete-event fleet simulator replays the
//!    oracle's service times at a millions-of-queries replicated
//!    workload across shard counts; 8 shards must clear 3× the 1-shard
//!    throughput, and the cluster-wide histogram must equal the merge
//!    of the per-shard histograms.
//!
//! `results/cluster.json` is byte-identical for a fixed seed — the CI
//! cluster-smoke job runs this binary twice and diffs the artifacts.
//!
//! ```sh
//! cargo run --release -p multirag-bench --bin repro_cluster
//! ```

use std::sync::Arc;

use multirag_bench::{all_datasets, check_schema, seed};
use multirag_cluster::{
    cluster_closed_loop, outcome_json, serve_cluster, serve_fanout, Cluster, ClusterResponse,
    ClusterSimOutcome, SlotRouter, DEFAULT_VNODES,
};
use multirag_core::MultiRagConfig;
use multirag_datasets::Query;
use multirag_eval::table::Table;
use multirag_faults::FaultPlan;
use multirag_kg::persist;
use multirag_obs::json::{fmt_f64, JsonObj};
use multirag_obs::shard_series;
use multirag_serve::{
    build_workload, tally_answers, AnswerTally, EpochSnapshot, IndexWriter, ServeConfig,
    ServeRequest, ServeResponse, ServeVerdict, TripleUpdate,
};

/// Replication factor: every slot has an owner plus one replica.
const REPLICATION: usize = 2;
/// Topologies checked for answer parity against the 1-node baseline.
const TOPOLOGIES: [u32; 3] = [2, 4, 8];
/// Simulated requests driven through the scaling closed loop.
const SIM_TOTAL: usize = 1_000_000;

/// FNV-1a over a byte string — a stable fingerprint for the routing
/// trace, small enough to embed in the artifact.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The scheduling-independent routing trace: everything about a routed
/// batch except cache-hit flags and metered service times, which
/// legitimately vary with worker interleaving while the *answers* do
/// not.
fn routing_trace(responses: &[ClusterResponse]) -> String {
    let mut trace = String::new();
    for r in responses {
        let shard = r.shard.map_or(-1i64, i64::from);
        trace.push_str(&format!(
            "{}|{}|{}|{:?}\n",
            r.response.seq, shard, r.failover, r.response.verdict
        ));
    }
    trace
}

fn inner_responses(responses: &[ClusterResponse]) -> Vec<ServeResponse> {
    responses.iter().map(|r| r.response.clone()).collect()
}

fn tally(responses: &[ClusterResponse], wave: &[ServeRequest]) -> AnswerTally {
    let inner = inner_responses(responses);
    let queries: Vec<&Query> = wave.iter().map(|r| &r.query).collect();
    tally_answers(&inner, &queries)
}

/// Asserts verdict-for-verdict parity between two routed batches (the
/// shards serving each request may differ; the answers may not).
fn assert_parity(label: &str, baseline: &[ClusterResponse], other: &[ClusterResponse]) {
    assert_eq!(
        baseline.len(),
        other.len(),
        "{label}: batch length diverged"
    );
    for (a, b) in baseline.iter().zip(other) {
        assert_eq!(
            a.response.verdict, b.response.verdict,
            "{label}: verdict diverged at seq {}",
            a.response.seq
        );
    }
}

fn publish_dataset(
    data: &multirag_datasets::MultiSourceDataset,
    config: MultiRagConfig,
    seed: u64,
) -> (IndexWriter, Arc<EpochSnapshot>) {
    let dump = persist::dump(&data.graph);
    let mut writer = IndexWriter::warm_start(&dump, config, seed).expect("persist dump loads");
    let snap = writer.publish();
    (writer, snap)
}

fn main() {
    let seed = seed();
    let scale = multirag_bench::scale();
    let scale_str = format!("{scale:?}");
    let config = MultiRagConfig::default();
    let serve_cfg = ServeConfig {
        workers: 2,
        queue_depth: 8,
        ..ServeConfig::default()
    };
    println!(
        "Cluster harness: 4 datasets @ {scale_str}, seed {seed}, replication {REPLICATION}, \
         {DEFAULT_VNODES} vnodes"
    );

    // Act 1: answer + abstain-tally parity on every dataset, every
    // topology.
    let mut dataset_rows: Vec<String> = Vec::new();
    let mut movies: Option<(IndexWriter, Arc<EpochSnapshot>, Vec<ServeRequest>)> = None;
    for data in all_datasets() {
        let (writer, snap) = publish_dataset(&data, config, seed);
        let wave = build_workload(&data.queries, data.queries.len() * 2, seed);
        let baseline_cluster = Cluster::new(snap.clone(), 1, serve_cfg.clone(), REPLICATION);
        let baseline = serve_cluster(&baseline_cluster, &wave, 1);
        let base_tally = tally(&baseline, &wave);
        let mut spread_at_8 = 0usize;
        for shards in TOPOLOGIES {
            let cluster = Cluster::new(snap.clone(), shards, serve_cfg.clone(), REPLICATION);
            let routed = serve_cluster(&cluster, &wave, 1);
            assert_parity(
                &format!("{} @ {shards} shards", data.name),
                &baseline,
                &routed,
            );
            assert_eq!(
                tally(&routed, &wave),
                base_tally,
                "{} @ {shards} shards: abstain tally diverged from 1-node",
                data.name
            );
            if shards == 8 {
                let mut used: Vec<u32> = routed.iter().filter_map(|r| r.shard).collect();
                used.sort_unstable();
                used.dedup();
                spread_at_8 = used.len();
            }
        }
        println!(
            "parity: {:<8} {} requests identical on 1/2/4/8 nodes ({} of 8 shards used, \
             {} answered, {} abstained)",
            data.name,
            wave.len(),
            spread_at_8,
            base_tally.answered,
            base_tally.abstained
        );
        dataset_rows.push(
            JsonObj::new()
                .str("dataset", &data.name)
                .usize("requests", wave.len())
                .usize("answered", base_tally.answered)
                .usize("abstained", base_tally.abstained)
                .usize("correct", base_tally.correct)
                .usize("shards_used_at_8", spread_at_8)
                .bool("parity", true)
                .build(),
        );
        if data.name == "movies" {
            movies = Some((writer, snap, wave));
        }
    }
    let (mut writer, snap, wave) = movies.expect("movies dataset present");

    // Act 2: the routing trace is a pure function of the request
    // stream — byte-identical across router worker counts.
    let mut cluster4 = Cluster::new(snap.clone(), 4, serve_cfg.clone(), REPLICATION);
    let mut router = SlotRouter::new(&cluster4);
    let slots: Vec<String> = wave.iter().map(|r| router.slot_of(&r.query)).collect();
    cluster4.mark_hot_slots(slots.iter().map(String::as_str), 4);
    let mut canonical: Option<(String, Vec<ClusterResponse>)> = None;
    for workers in [1usize, 2, 4] {
        let routed = serve_cluster(&cluster4, &wave, workers);
        let trace = routing_trace(&routed);
        match &canonical {
            None => canonical = Some((trace, routed)),
            Some((expected, _)) => assert_eq!(
                expected, &trace,
                "routing trace diverged at {workers} router workers"
            ),
        }
    }
    let (trace, healthy4) = canonical.expect("router identity pass ran");
    let trace_hash = fnv1a(trace.as_bytes());
    println!(
        "router: trace byte-identical across 1/2/4 workers (fnv1a {trace_hash:016x}, {} requests)",
        wave.len()
    );

    // Act 3: merge tier — fan a sample of requests out to every
    // replica and reduce; replicas must agree unanimously.
    let mut fanout_checked = 0usize;
    let mut matched_claims = 0usize;
    for request in wave.iter().take(8) {
        let (merged, verdicts) = serve_fanout(&cluster4, &mut router, request);
        let merged = merged.expect("healthy fleet yields a merged verdict");
        assert!(
            merged.unanimous,
            "replicas disagreed on seq {} — shared-snapshot parity broken",
            request.seq
        );
        assert_eq!(merged.shards, verdicts.len());
        for (shard, answer) in &verdicts {
            assert_eq!(
                answer, &merged.answer,
                "shard {shard} verdict diverged from the merged answer at seq {}",
                request.seq
            );
        }
        fanout_checked += 1;
        matched_claims += merged.matched_claims;
    }
    println!(
        "merge: {fanout_checked} fan-outs unanimous across {REPLICATION} replicas \
         ({matched_claims} homologous claims matched)"
    );

    // Act 4: degraded serving under deterministic node outages.
    let outage_rate = 0.3;
    let degraded_cluster = Cluster::new(snap.clone(), 4, serve_cfg.clone(), REPLICATION)
        .with_outages(FaultPlan::node_outages(seed, outage_rate), 8);
    let degraded = serve_cluster(&degraded_cluster, &wave, 1);
    let failovers = degraded.iter().filter(|r| r.failover).count();
    let unrouted = degraded.iter().filter(|r| r.shard.is_none()).count();
    assert!(
        failovers > 0,
        "a {outage_rate} outage rate must force at least one failover"
    );
    for (healthy, down) in healthy4.iter().zip(&degraded) {
        match down.shard {
            // A routed request answers exactly like the healthy fleet,
            // even when a replica served it.
            Some(_) => assert_eq!(
                healthy.response.verdict, down.response.verdict,
                "failover changed an answer at seq {}",
                down.response.seq
            ),
            // A fully-dark slot degrades to a structured abstain.
            None => {
                let ServeVerdict::Answered(answer) = &down.response.verdict else {
                    panic!("unrouted request shed instead of abstaining");
                };
                assert!(answer.abstained, "unrouted request must abstain");
            }
        }
    }
    println!(
        "degraded: {} requests @ outage rate {outage_rate} — {failovers} failovers, \
         {unrouted} structured abstains, zero divergent answers",
        degraded.len()
    );

    // Act 5: epoch 2 publishes into the cluster, then the fleet grows.
    let mut applied = 0u32;
    for (i, request) in wave.iter().take(wave.len() / 4).enumerate() {
        if let Some(gold) = request.query.gold.first() {
            // Corroborate known slots from a late-joining stream
            // source: the slot universe is unchanged, so ownership must
            // be perfectly stable under the unchanged ring.
            writer.apply(&TripleUpdate {
                entity: request.query.entity.clone(),
                relation: request.query.attribute.clone(),
                value: gold.clone(),
                source: "movies-stream-0".to_string(),
                chunk: 9_000 + i as u32,
            });
            applied += 1;
        }
    }
    let snap2 = writer.publish();
    let total_slots = cluster4.assignments().len();
    let (publish_moved, publish_added) = cluster4.publish(snap2.clone());
    assert_eq!(
        publish_moved, 0,
        "an unchanged ring must keep every existing slot in place on publish"
    );
    assert_eq!(cluster4.counters().rebalances, 1);
    let epoch2_baseline = serve_cluster(
        &Cluster::new(snap2.clone(), 1, serve_cfg.clone(), REPLICATION),
        &wave,
        1,
    );
    let epoch2_routed = serve_cluster(&cluster4, &wave, 1);
    assert_parity("epoch 2 @ 4 shards", &epoch2_baseline, &epoch2_routed);

    let resize_moved = cluster4.resize(8);
    assert_eq!(cluster4.shards(), 8);
    assert!(resize_moved > 0, "growing the fleet must move some slots");
    assert!(
        resize_moved as usize <= total_slots * 65 / 100,
        "consistent hashing must bound movement under growth \
         ({resize_moved} of {total_slots} moved)"
    );
    let resized_routed = serve_cluster(&cluster4, &wave, 1);
    assert_parity("post-resize @ 8 shards", &epoch2_baseline, &resized_routed);
    println!(
        "rebalance: publish applied {applied} updates, moved {publish_moved}/+{publish_added} \
         slots; resize 4→8 moved {resize_moved}/{total_slots} slots; parity held through both"
    );

    // Act 6: scaling — replay the oracle's service times through the
    // fleet simulator at SIM_TOTAL requests per shard count.
    let base_service_us: Vec<u64> = healthy4
        .iter()
        .map(|r| (r.response.service_ms * 1000.0).round().max(1.0) as u64)
        .collect();
    let mut outcomes: Vec<ClusterSimOutcome> = Vec::new();
    for shards in [1u32, 2, 4, 8] {
        let ring = multirag_cluster::HashRing::new(shards, DEFAULT_VNODES, snap2.seed);
        let base_candidates: Vec<Vec<u32>> = slots
            .iter()
            .map(|slot| ring.candidates(slot, REPLICATION))
            .collect();
        let outcome = cluster_closed_loop(
            &base_service_us,
            &base_candidates,
            SIM_TOTAL,
            shards,
            64,
            2,
            serve_cfg.queue_depth,
            None,
        );
        // The merge-tier identity, asserted on the real workload: the
        // cluster-wide histogram equals the merge of per-shard ones.
        let mut merged = multirag_obs::LogHistogram::new();
        for h in &outcome.per_shard {
            merged.merge(h);
        }
        assert_eq!(
            merged, outcome.overall,
            "per-shard histograms must merge to the cluster-wide histogram"
        );
        outcomes.push(outcome);
    }
    let qps1 = outcomes[0].point.throughput_qps;
    let qps8 = outcomes[3].point.throughput_qps;
    let speedup = qps8 / qps1.max(f64::MIN_POSITIVE);
    assert!(
        speedup >= 3.0,
        "8 shards must clear 3× the 1-shard throughput (got {speedup:.2}×)"
    );

    // A degraded operating point for the report: same workload, 4
    // shards, nodes dropping per 50 ms outage window.
    let degraded_plan = FaultPlan::node_outages(seed, 0.2);
    let ring4 = multirag_cluster::HashRing::new(4, DEFAULT_VNODES, snap2.seed);
    let degraded_candidates: Vec<Vec<u32>> = slots
        .iter()
        .map(|slot| ring4.candidates(slot, REPLICATION))
        .collect();
    let sim_degraded = cluster_closed_loop(
        &base_service_us,
        &degraded_candidates,
        SIM_TOTAL,
        4,
        64,
        2,
        serve_cfg.queue_depth,
        Some((&degraded_plan, 50_000)),
    );
    assert!(
        sim_degraded.point.failovers > 0,
        "the degraded sim must exercise failover"
    );

    // Per-shard queue-depth gauges from the 8-shard operating point,
    // on the same registry the routing counters live in.
    let eight = &outcomes[3];
    for (shard, &peak) in eight.per_shard_peak_queue.iter().enumerate() {
        cluster4.metrics().gauge_set(
            &shard_series("cluster_shard_queue_depth", shard as u64),
            peak as f64,
        );
    }
    cluster4.export_ownership_metrics();
    let exposition = cluster4.metrics().snapshot().to_prometheus();
    for series in [
        "cluster_shard_queries_total{shard=\"000\"}",
        "cluster_shard_queue_depth{shard=\"007\"}",
        "cluster_shard_owned_slots{shard=\"003\"}",
        "cluster_rebalance_total",
        "cluster_resize_total",
        "cluster_failover_total",
    ] {
        assert!(
            exposition.contains(series),
            "metrics exposition is missing {series}"
        );
    }
    let q0 = exposition
        .find("cluster_shard_queries_total{shard=\"000\"}")
        .expect("shard 000 series present");
    let q3 = exposition
        .find("cluster_shard_queries_total{shard=\"003\"}")
        .expect("shard 003 series present");
    assert!(
        q0 < q3,
        "zero-padded shard labels must keep the exposition in shard order"
    );

    let mut table = Table::new(
        "Cluster scaling (simulated time, replicated movies workload)",
        &[
            "Shards", "Done", "Shed", "QPS", "p50/us", "p95/us", "p99/us", "Speedup",
        ],
    );
    for outcome in &outcomes {
        let p = &outcome.point;
        table.row(vec![
            p.shards.to_string(),
            p.completed.to_string(),
            p.shed.to_string(),
            format!("{:.0}", p.throughput_qps),
            p.p50_us.to_string(),
            p.p95_us.to_string(),
            p.p99_us.to_string(),
            format!("{:.2}x", p.throughput_qps / qps1.max(f64::MIN_POSITIVE)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "scaling: 8 shards = {speedup:.2}x the 1-shard throughput over {SIM_TOTAL} requests; \
         degraded point: {} failovers, {} unrouted",
        sim_degraded.point.failovers, sim_degraded.point.unrouted
    );

    let json = JsonObj::new()
        .u64("seed", seed)
        .str("scale", &scale_str)
        .u64("vnodes", DEFAULT_VNODES as u64)
        .usize("replication", REPLICATION)
        .arr("datasets", dataset_rows)
        .bool("router_identity", true)
        .str("trace_fnv1a", &format!("{trace_hash:016x}"))
        .raw(
            "merge",
            &JsonObj::new()
                .usize("fanout_checked", fanout_checked)
                .usize("matched_claims", matched_claims)
                .bool("unanimous", true)
                .build(),
        )
        .raw(
            "degraded",
            &JsonObj::new()
                .usize("requests", degraded.len())
                .f64("outage_rate", outage_rate)
                .usize("failovers", failovers)
                .usize("unrouted", unrouted)
                .bool("answers_match_healthy", true)
                .build(),
        )
        .raw(
            "rebalance",
            &JsonObj::new()
                .u64("publish_moved", publish_moved)
                .u64("publish_added", publish_added)
                .u64("resize_moved", resize_moved)
                .usize("total_slots", total_slots)
                .build(),
        )
        .arr("scaling", outcomes.iter().map(outcome_json))
        .raw("sim_degraded", &outcome_json(&sim_degraded))
        .raw("speedup_8x", &fmt_f64(speedup))
        .build();
    let out_dir = std::path::Path::new("results");
    if let Err(err) = std::fs::create_dir_all(out_dir)
        .and_then(|()| std::fs::write(out_dir.join("cluster.json"), &json))
    {
        println!("note: could not write results/cluster.json: {err}");
    } else {
        println!(
            "wrote results/cluster.json ({} bytes; bit-identical for a fixed seed)",
            json.len()
        );
    }
    check_schema("cluster", &json);
}
