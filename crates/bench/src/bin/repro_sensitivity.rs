//! Sensitivity sweep over MultiRAG's design-choice hyper-parameters
//! beyond the paper's α study (Fig. 7): the node-confidence threshold
//! θ, the graph-confidence threshold, the trusted-group extraction
//! width `trusted_top_k`, and the historical pseudo-count H. Run on the
//! two sparse datasets, where the confidence machinery is load-bearing.
//!
//! ```sh
//! cargo run --release -p multirag-bench --bin repro_sensitivity
//! ```

use multirag_bench::seed;
use multirag_core::MultiRagConfig;
use multirag_datasets::spec::MultiSourceDataset;
use multirag_datasets::{books::BooksSpec, stocks::StocksSpec};
use multirag_eval::run_multirag;
use multirag_eval::table::{fmt1, Table};

fn sweep(
    table: &mut Table,
    datasets: &[MultiSourceDataset],
    knob: &str,
    values: &[f64],
    make: impl Fn(f64) -> MultiRagConfig,
    seed: u64,
) {
    for &value in values {
        let config = make(value);
        let mut cells = vec![knob.to_string(), format!("{value}")];
        for data in datasets {
            let row = run_multirag(data, &data.graph, config, seed);
            cells.push(fmt1(row.f1));
        }
        table.row(cells);
    }
}

fn main() {
    let seed = seed();
    let scale = multirag_bench::scale();
    println!("Design-choice sensitivity (scale = {scale:?}, seed = {seed})");
    let datasets = vec![
        BooksSpec::at_scale(scale).generate(seed),
        StocksSpec::at_scale(scale).generate(seed),
    ];
    let mut table = Table::new(
        "Sensitivity: F1% per knob value",
        &["knob", "value", "books F1", "stocks F1"],
    );
    sweep(
        &mut table,
        &datasets,
        "node_threshold θ",
        &[0.3, 0.5, 0.7, 0.9, 1.1],
        |v| MultiRagConfig {
            node_threshold: v,
            ..MultiRagConfig::default()
        },
        seed,
    );
    sweep(
        &mut table,
        &datasets,
        "graph_threshold",
        &[0.1, 0.3, 0.5, 0.7, 0.9],
        |v| MultiRagConfig {
            graph_threshold: v,
            ..MultiRagConfig::default()
        },
        seed,
    );
    sweep(
        &mut table,
        &datasets,
        "trusted_top_k",
        &[1.0, 2.0, 3.0, 4.0],
        |v| MultiRagConfig {
            trusted_top_k: v as usize,
            ..MultiRagConfig::default()
        },
        seed,
    );
    sweep(
        &mut table,
        &datasets,
        "history_pseudo H",
        &[5.0, 50.0, 200.0, 1000.0],
        |v| MultiRagConfig {
            history_pseudo: v,
            ..MultiRagConfig::default()
        },
        seed,
    );
    sweep(
        &mut table,
        &datasets,
        "beta β",
        &[0.1, 0.5, 2.0, 5.0],
        |v| MultiRagConfig {
            beta: v,
            ..MultiRagConfig::default()
        },
        seed,
    );
    println!("{}", table.render());
    println!(
        "The paper's settings (θ=0.7, graph 0.5, top-k 2, H=50, β=0.5) should sit at or near\n\
         the per-knob optima; flat rows mean the design is robust to that knob."
    );
}
