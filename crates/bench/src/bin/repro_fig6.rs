//! Regenerates **Fig. 6** — F1 and query time of Movies and Books with
//! per-source corruption levels 0/10/30/50/70 % applied to each source
//! format group in turn.
//!
//! ```sh
//! cargo run --release -p multirag-bench --bin repro_fig6
//! ```

use multirag_bench::seed;
use multirag_core::MultiRagConfig;
use multirag_datasets::perturb;
use multirag_datasets::{books::BooksSpec, movies::MoviesSpec};
use multirag_eval::run_multirag;
use multirag_eval::table::{fmt1, fmt2, Table};

fn main() {
    let seed = seed();
    let scale = multirag_bench::scale();
    println!("Fig. 6: per-source corruption sweep (scale = {scale:?}, seed = {seed})");
    let datasets = vec![
        MoviesSpec::at_scale(scale).generate(seed),
        BooksSpec::at_scale(scale).generate(seed),
    ];
    let levels = [0.0, 0.1, 0.3, 0.5, 0.7];
    let mut table = Table::new(
        "Fig. 6: MultiRAG F1% and query time under corrupted sources",
        &["Dataset", "Corrupted format", "Level", "F1/%", "QT+PT/s"],
    );
    for data in &datasets {
        for format in data.format_tags() {
            let victims = data.sources_with_formats(&[format.as_str()]);
            for &level in &levels {
                let corrupted = if level == 0.0 {
                    data.clone()
                } else {
                    perturb::corrupt_sources(data, &victims, level, seed)
                };
                let row = run_multirag(
                    &corrupted,
                    &corrupted.graph,
                    MultiRagConfig::default(),
                    seed,
                );
                table.row(vec![
                    data.name.clone(),
                    format.clone(),
                    format!("{:.0}%", level * 100.0),
                    fmt1(row.f1),
                    fmt2(row.total_time_s()),
                ]);
            }
        }
    }
    println!("{}", table.render());
    println!("CSV (for plotting):\n{}", table.to_csv());
}
