//! Regenerates **Table II** — comparison with baseline and SOTA
//! methods for multi-source knowledge fusion: F1 (%) and total time (s)
//! per dataset × source-format combo.
//!
//! Cells (dataset × combo) are independent and fan out across threads;
//! each cell's methods remain sequential and seeded, so the output is
//! deterministic.
//!
//! ```sh
//! cargo run --release -p multirag-bench --bin repro_table2
//! ```

use multirag_bench::{combo_code, fusion_baselines, seed, sota_methods, source_combos};
use multirag_core::MultiRagConfig;
use multirag_eval::table::{fmt1, fmt2, Table};
use multirag_eval::{parallel_map, run_fusion_method, run_multirag, MethodResult};

fn main() {
    let seed = seed();
    println!(
        "Table II: multi-source knowledge fusion, F1% / time(s) (scale = {:?}, seed = {seed})",
        multirag_bench::scale()
    );
    let datasets = multirag_bench::all_datasets();
    let cells: Vec<(usize, Vec<&'static str>)> = datasets
        .iter()
        .enumerate()
        .flat_map(|(i, data)| source_combos(&data.name).into_iter().map(move |c| (i, c)))
        .collect();

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let results: Vec<(String, String, Vec<MethodResult>)> =
        parallel_map(cells, threads, |(i, combo)| {
            let data = &datasets[i];
            let graph = data.restricted_graph(&combo);
            let mut rows = Vec::new();
            for mut method in fusion_baselines(seed) {
                rows.push(run_fusion_method(data, &graph, method.as_mut()));
            }
            for mut method in sota_methods(seed) {
                rows.push(run_fusion_method(data, &graph, method.as_mut()));
            }
            rows.push(run_multirag(data, &graph, MultiRagConfig::default(), seed));
            (data.name.clone(), combo_code(&combo), rows)
        });

    let mut table = Table::new(
        "Table II",
        &[
            "Dataset", "Sources", "Method", "F1/%", "Time/s", "Wall/s", "Sim/s", "Halluc/%",
        ],
    );
    for (dataset, code, rows) in results {
        for row in rows {
            // One experiment's QT + PT phases accumulate into a single
            // wall/simulated decomposition.
            let mut time = row.qt;
            time += row.pt;
            table.row(vec![
                dataset.clone(),
                code.clone(),
                row.name.clone(),
                fmt1(row.f1),
                fmt1(row.total_time_s()),
                fmt2(time.wall_s),
                fmt2(time.simulated_s),
                fmt1(row.hallucination_rate * 100.0),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "Time/s = Wall/s (measured compute) + Sim/s (simulated LLM latency); see EXPERIMENTS.md."
    );
}
