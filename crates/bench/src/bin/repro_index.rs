//! Deterministic perf harness for the hierarchical tiered retrieval
//! index ([`multirag_kg::TieredIndex`]).
//!
//! Compares the retrieval stage — homologous matching plus per-query
//! slot narrowing — between two legs at 1×, 4× and 16× synthetic slot
//! scale, on every benchmark dataset:
//!
//! * **scan leg** (reference oracle): sort-based [`match_homologous`]
//!   plus a full linear scan over every triple per query;
//! * **descent leg**: [`match_homologous_tiered`] plus a bitset tier
//!   descent per query over a prebuilt [`TieredIndex`]. The build is
//!   timed separately (`build_us`) and excluded from the stage wall:
//!   serving builds the index once per epoch publish
//!   (`EpochSnapshot`) and amortizes it over every query of the
//!   epoch, exactly as this harness does.
//!
//! Two equivalence gates run inside the harness and abort on any
//! mismatch, at every `(dataset, scale)` cell:
//!
//! * **homologous sets** — group/isolated digests of the tiered
//!   matcher must equal the sorted-scan oracle's bit-for-bit;
//! * **per-query candidates** — the descent's candidate id lists must
//!   equal the linear scans' in content and order.
//!
//! Candidate-comparison accounting: the scan leg charges one
//! comparison per triple visited per query; the descent leg charges
//! its bitset membership AND ops (the index's own
//! `bitset_and_ops` counter). Acceptance at 16× slot scale, aggregated
//! over datasets: ≥ 4× fewer comparisons and ≥ 2× lower
//! retrieval-stage wall time.
//!
//! Artifacts: `results/index.json` + `results/index.txt`
//! (deterministic — CI runs the binary twice and `cmp`s both;
//! schema-gated by `MULTIRAG_CHECK_SCHEMA=1`) and `BENCH_index.json`
//! at the repo root (wall-clock timings, non-deterministic by nature,
//! never compared).
//!
//! ```sh
//! cargo run --release -p multirag-bench --bin repro_index
//! ```

use multirag_bench::{check_schema, replicate_graph, schema_outline, seed};
use multirag_core::{match_homologous, match_homologous_tiered, HomologousSets};
use multirag_eval::table::{fmt2, Table};
use multirag_kg::{
    EntityId, FxHasher, KnowledgeGraph, RelationId, SourceId, TieredIndex, TindexCounters, TripleId,
};
use multirag_obs::json::JsonObj;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Pass-through allocator that counts allocations and bytes. Only
/// `alloc`/`realloc` count — frees are irrelevant to the "how much
/// heap traffic does the stage generate" question the harness asks.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

/// Order-sensitive digest over a matching result: every group's slot
/// key, member ids and distinct-source count, plus the isolated list.
/// Two matchings digest equal iff they agree bit-for-bit.
fn digest_sets(sets: &HomologousSets) -> u64 {
    let mut h = FxHasher::default();
    sets.groups.len().hash(&mut h);
    for g in &sets.groups {
        g.entity.index().hash(&mut h);
        g.relation.index().hash(&mut h);
        g.source_count.hash(&mut h);
        g.triples.len().hash(&mut h);
        for t in &g.triples {
            t.index().hash(&mut h);
        }
    }
    sets.isolated.len().hash(&mut h);
    for t in &sets.isolated {
        t.index().hash(&mut h);
    }
    h.finish()
}

/// Order-sensitive digest over per-query candidate id lists.
fn digest_candidates(per_query: &[Vec<TripleId>]) -> u64 {
    let mut h = FxHasher::default();
    per_query.len().hash(&mut h);
    for hits in per_query {
        hits.len().hash(&mut h);
        for t in hits {
            t.index().hash(&mut h);
        }
    }
    h.finish()
}

const REPS: usize = 3;

/// One measured retrieval-stage leg (matching + per-query narrowing).
#[derive(Default)]
struct LegRun {
    sets_digest: u64,
    candidates_digest: u64,
    comparisons: u64,
    allocs: u64,
    bytes: u64,
    best_us: u64,
    groups: usize,
}

/// Reference oracle: sorted-scan matching plus a full linear scan of
/// every triple per query. Charges one candidate comparison per
/// triple visited.
fn scan_leg(graph: &KnowledgeGraph, queries: &[(EntityId, RelationId)]) -> LegRun {
    let mut run = LegRun {
        best_us: u64::MAX,
        ..LegRun::default()
    };
    for rep in 0..REPS {
        let (a0, b0) = alloc_snapshot();
        let start = Instant::now();
        let sets = match_homologous(graph);
        let mut comparisons = 0u64;
        let mut candidates: Vec<Vec<TripleId>> = Vec::with_capacity(queries.len());
        for &(entity, relation) in queries {
            let mut hits = Vec::new();
            for (tid, t) in graph.iter_triples() {
                comparisons += 1;
                if t.subject == entity && t.predicate == relation {
                    hits.push(tid);
                }
            }
            candidates.push(hits);
        }
        let us = start.elapsed().as_micros() as u64;
        let (a1, b1) = alloc_snapshot();
        run.best_us = run.best_us.min(us);
        if rep == 0 {
            run.sets_digest = digest_sets(&sets);
            run.candidates_digest = digest_candidates(&candidates);
            run.comparisons = comparisons;
            run.allocs = a1 - a0;
            run.bytes = b1 - b0;
            run.groups = sets.groups.len();
        }
    }
    run
}

/// Descent leg plus its index-side instrumentation.
struct DescentRun {
    leg: LegRun,
    build_us: u64,
    counters: TindexCounters,
    slots: usize,
    bitset_words: usize,
}

/// Tiered leg: one-pass tiered matching and a bitset tier descent per
/// query over a prebuilt index. The build is timed per repetition but
/// kept out of the stage wall — it is an epoch-publish cost, not a
/// per-query one. Charges the index's own `bitset_and_ops` counter as
/// its candidate comparisons.
fn descent_leg(graph: &KnowledgeGraph, queries: &[(EntityId, RelationId)]) -> DescentRun {
    let mut run = DescentRun {
        leg: LegRun {
            best_us: u64::MAX,
            ..LegRun::default()
        },
        build_us: u64::MAX,
        counters: TindexCounters::default(),
        slots: 0,
        bitset_words: 0,
    };
    for rep in 0..REPS {
        let t_build = Instant::now();
        let index = TieredIndex::build(graph);
        let build_us = t_build.elapsed().as_micros() as u64;
        run.build_us = run.build_us.min(build_us);
        let (a0, b0) = alloc_snapshot();
        let start = Instant::now();
        let sets = match_homologous_tiered(&index);
        let mut counters = TindexCounters::default();
        let mut candidates: Vec<Vec<TripleId>> = Vec::with_capacity(queries.len());
        for &(entity, relation) in queries {
            candidates.push(index.descend(entity, relation, &mut counters));
        }
        let us = start.elapsed().as_micros() as u64;
        let (a1, b1) = alloc_snapshot();
        run.leg.best_us = run.leg.best_us.min(us);
        if rep == 0 {
            run.leg.sets_digest = digest_sets(&sets);
            run.leg.candidates_digest = digest_candidates(&candidates);
            run.leg.comparisons = counters.bitset_and_ops;
            run.leg.allocs = a1 - a0;
            run.leg.bytes = b1 - b0;
            run.leg.groups = sets.groups.len();
            run.counters = counters;
            let stats = index.stats();
            run.slots = stats.slots;
            run.bitset_words = stats.bitset_words;
        }
    }
    run
}

/// Per `(dataset, slot scale)` measurement cell.
struct Cell {
    dataset: String,
    factor: usize,
    queries: usize,
    triples: usize,
    scan: LegRun,
    descent: DescentRun,
}

fn ratio(a: u64, b: u64) -> f64 {
    a as f64 / (b.max(1)) as f64
}

/// Resolves each benchmark query to its `(entity, relation)` slot key
/// on `graph`; queries whose entity or attribute is absent are
/// skipped (replica entities never shadow replica 0's names).
fn resolve_queries(
    graph: &KnowledgeGraph,
    queries: &[multirag_datasets::Query],
) -> Vec<(EntityId, RelationId)> {
    let domain = if graph.source_count() > 0 {
        graph.resolve(graph.source(SourceId(0)).domain).to_string()
    } else {
        String::new()
    };
    queries
        .iter()
        .filter_map(|q| {
            let entity = graph.find_entity(&q.entity, &domain)?;
            let relation = graph.find_relation(&q.attribute)?;
            Some((entity, relation))
        })
        .collect()
}

fn main() {
    let seed = seed();
    let scale = multirag_bench::scale();
    let scale_str = format!("{scale:?}");
    println!("Tiered-index retrieval harness @ {scale_str}, seed {seed} ({REPS} reps, best-of)");

    let datasets = multirag_bench::all_datasets();
    let mut cells: Vec<Cell> = Vec::new();

    for data in &datasets {
        for &factor in &[1usize, 4, 16] {
            let graph = replicate_graph(&data.graph, factor);
            let queries = resolve_queries(&graph, &data.queries);
            assert!(
                !queries.is_empty(),
                "{}: no benchmark query resolved against the graph",
                data.name
            );
            let scan = scan_leg(&graph, &queries);
            let descent = descent_leg(&graph, &queries);
            assert_eq!(
                scan.sets_digest, descent.leg.sets_digest,
                "{} @{factor}x: tiered homologous matching must equal the sorted-scan oracle",
                data.name
            );
            assert_eq!(
                scan.candidates_digest, descent.leg.candidates_digest,
                "{} @{factor}x: tier-descent candidates must equal the linear scans",
                data.name
            );
            assert!(
                descent.leg.comparisons < scan.comparisons,
                "{} @{factor}x: descent must examine fewer candidates than the scan",
                data.name
            );
            cells.push(Cell {
                dataset: data.name.clone(),
                factor,
                queries: queries.len(),
                triples: graph.triple_count(),
                scan,
                descent,
            });
        }
    }

    // Acceptance gate: ≥4× fewer candidate comparisons and ≥2× lower
    // retrieval-stage wall time at 16× slot scale, aggregated over
    // datasets. The index build is an epoch-publish cost and stays
    // out of the stage wall (reported separately as `build_us`).
    let at16: Vec<&Cell> = cells.iter().filter(|c| c.factor == 16).collect();
    let scan_cmp: u64 = at16.iter().map(|c| c.scan.comparisons).sum();
    let descent_cmp: u64 = at16.iter().map(|c| c.descent.leg.comparisons).sum();
    let scan_us: u64 = at16.iter().map(|c| c.scan.best_us).sum();
    let descent_us: u64 = at16.iter().map(|c| c.descent.leg.best_us).sum();
    let comparison_ratio = ratio(scan_cmp, descent_cmp);
    let wall_ratio = ratio(scan_us, descent_us);
    let comparison_target_met = comparison_ratio >= 4.0;
    let wall_target_met = wall_ratio >= 2.0;

    // Deterministic table: no wall-clock columns.
    let mut table = Table::new(
        "Tier descent vs linear scan (retrieval stage, first-rep counts)",
        &[
            "Dataset",
            "Scale",
            "Triples",
            "Slots",
            "Queries",
            "Scan cmps",
            "Descent cmps",
            "Pruned",
            "Cmp ratio",
        ],
    );
    for c in &cells {
        table.row(vec![
            c.dataset.clone(),
            format!("{}x", c.factor),
            c.triples.to_string(),
            c.descent.slots.to_string(),
            c.queries.to_string(),
            c.scan.comparisons.to_string(),
            c.descent.leg.comparisons.to_string(),
            c.descent.counters.candidates_pruned.to_string(),
            fmt2(ratio(c.scan.comparisons, c.descent.leg.comparisons)),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");

    // Wall timings go to stdout and BENCH_index.json only — never into
    // the cmp'd artifacts.
    let mut wall_table = Table::new(
        &format!("Wall time, best of {REPS} (µs) — non-deterministic"),
        &[
            "Dataset",
            "Scale",
            "Scan",
            "Descent",
            "(build)",
            "Scan/Descent",
        ],
    );
    for c in &cells {
        wall_table.row(vec![
            c.dataset.clone(),
            format!("{}x", c.factor),
            c.scan.best_us.to_string(),
            c.descent.leg.best_us.to_string(),
            c.descent.build_us.to_string(),
            fmt2(ratio(c.scan.best_us, c.descent.leg.best_us)),
        ]);
    }
    println!("{}", wall_table.render());
    println!(
        "acceptance @16x: comparison ratio {comparison_ratio:.2} (target >= 4.0), wall ratio {wall_ratio:.2} (target >= 2.0)"
    );

    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            JsonObj::new()
                .str("dataset", &c.dataset)
                .usize("slot_scale", c.factor)
                .usize("triples", c.triples)
                .usize("slots", c.descent.slots)
                .usize("bitset_words", c.descent.bitset_words)
                .usize("queries", c.queries)
                .usize("groups", c.descent.leg.groups)
                .u64("scan_comparisons", c.scan.comparisons)
                .u64("descent_comparisons", c.descent.leg.comparisons)
                .f64(
                    "comparison_ratio",
                    ratio(c.scan.comparisons, c.descent.leg.comparisons),
                )
                .u64("tier_descents", c.descent.counters.tier_descents)
                .u64("bitset_and_ops", c.descent.counters.bitset_and_ops)
                .u64("candidates_pruned", c.descent.counters.candidates_pruned)
                .u64("scan_allocs", c.scan.allocs)
                .u64("scan_bytes", c.scan.bytes)
                .u64("descent_allocs", c.descent.leg.allocs)
                .u64("descent_bytes", c.descent.leg.bytes)
                .bool(
                    "sets_match",
                    c.scan.sets_digest == c.descent.leg.sets_digest,
                )
                .bool(
                    "candidates_match",
                    c.scan.candidates_digest == c.descent.leg.candidates_digest,
                )
                .build()
        })
        .collect();
    let acceptance = JsonObj::new()
        .usize("slot_scale", 16)
        .f64("comparison_ratio", comparison_ratio)
        .f64("comparison_target", 4.0)
        .bool("comparison_target_met", comparison_target_met)
        .f64("wall_target", 2.0)
        .bool("wall_target_met", wall_target_met)
        .build();
    let json = JsonObj::new()
        .u64("seed", seed)
        .str("scale", &scale_str)
        .usize("reps", REPS)
        .arr("rows", rows)
        .raw("acceptance", &acceptance)
        .build();

    match std::fs::create_dir_all("results")
        .and_then(|_| std::fs::write("results/index.json", &json))
        .and_then(|_| std::fs::write("results/index.txt", &rendered))
    {
        Ok(()) => println!("wrote results/index.json, results/index.txt"),
        Err(e) => println!("note: could not write results/: {e}"),
    }
    match schema_outline(&json) {
        Ok(outline) => println!("schema outline [index]: {outline}"),
        Err(e) => println!("note: schema outline failed: {e}"),
    }
    check_schema("index", &json);

    // Wall-clock companion artifact. Uppercase stem on purpose: it is
    // non-deterministic and must stay out of the schema/cmp gates that
    // cover the lowercase results/ artifacts.
    let bench_rows: Vec<String> = cells
        .iter()
        .map(|c| {
            JsonObj::new()
                .str("dataset", &c.dataset)
                .usize("slot_scale", c.factor)
                .u64("scan_us", c.scan.best_us)
                .u64("descent_us", c.descent.leg.best_us)
                .u64("build_us", c.descent.build_us)
                .f64("wall_ratio", ratio(c.scan.best_us, c.descent.leg.best_us))
                .build()
        })
        .collect();
    let bench = JsonObj::new()
        .u64("seed", seed)
        .str("scale", &scale_str)
        .usize("reps", REPS)
        .arr("rows", bench_rows)
        .f64("wall_ratio_at_16x", wall_ratio)
        .f64("comparison_ratio_at_16x", comparison_ratio)
        .build();
    match std::fs::write("BENCH_index.json", &bench) {
        Ok(()) => println!("wrote BENCH_index.json"),
        Err(e) => println!("note: could not write BENCH_index.json: {e}"),
    }

    assert!(
        comparison_target_met,
        "comparison target missed at 16x: scan/descent = {comparison_ratio:.2} < 4.0"
    );
    assert!(
        wall_target_met,
        "wall-time target missed at 16x: scan/descent = {wall_ratio:.2} < 2.0"
    );
    println!("index targets met at 16x slot scale");
}
