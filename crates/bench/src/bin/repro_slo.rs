//! SLO telemetry harness — windowed burn-rate alerts, log-bucket
//! percentiles and tail-latency attribution over the serving loop.
//!
//! One observed sequential oracle produces per-request traces; each
//! request's service time is **rebuilt from its per-stage simulated
//! costs** (`multirag_serve::attrib`), so end-to-end latency decomposes
//! exactly into queue wait + stages + overhead. Three legs replay those
//! costs through the closed-loop simulator:
//!
//! * `clean-c4` — light load, healthy faults: every alert stays silent;
//! * `overload-c32` — 32 clients on one sim worker with a queue of 8:
//!   sheds burn the error budget and queueing blows the p99 target, so
//!   both alerts walk Pending → Firing;
//! * `faults-c8` — a query-time brownout ([`FaultPlan::brownout`]) plus
//!   a tight deadline: abstentions and latency spikes fire alerts with
//!   no admission pressure at all.
//!
//! Every leg feeds one [`SloEngine`]: sim-clock windows, burn-rate
//! evaluation, exemplar sampling, then tail attribution against the
//! exact nearest-rank p99.
//!
//! In-binary acceptance:
//!
//! * alerts fire on the overload and fault legs and stay silent on the
//!   clean leg;
//! * log-bucket p50/p95/p99 agree with exact nearest-rank within one
//!   bucket on every leg;
//! * attribution rows sum to total closed-loop latency, exactly, per
//!   leg.
//!
//! `results/slo.json` is byte-identical for a fixed seed — the CI
//! slo-smoke job runs this binary twice and diffs the artifacts.
//!
//! ```sh
//! cargo run --release -p multirag-bench --bin repro_slo
//! ```

use multirag_bench::{check_schema, seed};
use multirag_core::{LoopConfig, MultiRagConfig};
use multirag_datasets::movies::MoviesSpec;
use multirag_eval::table::Table;
use multirag_faults::FaultPlan;
use multirag_obs::json::JsonObj;
use multirag_obs::slo::{bucket_of, Completion, SloEngine, SloOutcome, SloSpec};
use multirag_obs::Observer;
use multirag_serve::{
    attribute, build_workload, closed_loop_timeline, request_costs, serve_sequential_observed,
    AttributionOutcome, CacheStack, IndexWriter, LoadPoint, RequestCost, RequestTiming,
    ServeConfig,
};

/// Brownout rate for the fault leg's query-time channels.
const FAULT_RATE: f64 = 0.3;
/// Retry deadline for the fault leg, simulated ms — tight enough that
/// brownout retries exhaust it and surface as structured abstains.
const FAULT_DEADLINE_MS: f64 = 300.0;
/// p99 latency target as a multiple of the clean leg's exact p99.
const TARGET_MULTIPLIER: u64 = 2;
/// Windows the clean leg's span is divided into (other legs run longer
/// and therefore see more windows of the same length).
const CLEAN_WINDOWS: u64 = 10;
/// Queue deep enough that nothing sheds on the unloaded legs.
const DEEP_QUEUE: usize = 1 << 16;

/// One processed leg: sim outcome + SLO verdicts + attribution.
struct Leg {
    label: &'static str,
    fault_rate: f64,
    concurrency: usize,
    sim_workers: usize,
    queue_depth: usize,
    point: LoadPoint,
    abstained: u64,
    cache_hits: u64,
    escalations: u64,
    exact: [u64; 3],
    approx: [u64; 3],
    outcome: SloOutcome,
    attribution: AttributionOutcome,
}

/// Exact integer nearest-rank (same ceiling rank the simulator uses).
fn exact_rank(sorted: &[u64], percent: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = (n * percent).div_ceil(100);
    sorted[(rank.clamp(1, n) - 1) as usize]
}

/// Replays one cost vector through the closed loop and runs the full
/// SLO pass over the resulting timeline.
#[allow(clippy::too_many_arguments)]
fn run_leg(
    label: &'static str,
    fault_rate: f64,
    costs: &[RequestCost],
    spec: SloSpec,
    concurrency: usize,
    sim_workers: usize,
    queue_depth: usize,
) -> Leg {
    let service_us: Vec<u64> = costs.iter().map(|c| c.service_us).collect();
    let (point, timings) = closed_loop_timeline(&service_us, concurrency, sim_workers, queue_depth);

    let mut engine = SloEngine::new(spec);
    let mut abstained = 0u64;
    let mut cache_hits = 0u64;
    let mut escalations = 0u64;
    for (cost, timing) in costs.iter().zip(&timings) {
        if timing.served {
            engine.record_completion(
                timing.completed_us,
                &Completion {
                    query_id: cost.query_id,
                    latency_us: timing.latency_us(),
                    abstained: cost.abstained,
                    cache_hit: cost.cache_hit,
                    escalations: cost.escalations,
                },
            );
            abstained += u64::from(cost.abstained);
            cache_hits += u64::from(cost.cache_hit);
            escalations += cost.escalations;
        } else {
            engine.record_shed(timing.submitted_us);
        }
    }
    let outcome = engine.finalize();

    let mut latencies: Vec<u64> = timings
        .iter()
        .filter(|t| t.served)
        .map(RequestTiming::latency_us)
        .collect();
    latencies.sort_unstable();
    let exact = [
        exact_rank(&latencies, 50),
        exact_rank(&latencies, 95),
        exact_rank(&latencies, 99),
    ];
    let approx = [
        engine.overall().quantile_us(50),
        engine.overall().quantile_us(95),
        engine.overall().quantile_us(99),
    ];

    let attribution = attribute(costs, &timings);
    Leg {
        label,
        fault_rate,
        concurrency,
        sim_workers,
        queue_depth,
        point,
        abstained,
        cache_hits,
        escalations,
        exact,
        approx,
        outcome,
        attribution,
    }
}

fn leg_json(leg: &Leg) -> String {
    let attrib = JsonObj::new()
        .u64("p99_cut_us", leg.attribution.p99_cut_us)
        .u64("total_us", leg.attribution.table.total_us())
        .u64("tail_total_us", leg.attribution.table.tail_total_us())
        .u64("tail_requests", leg.attribution.table.tail_requests())
        .str("owner", leg.attribution.table.owner().unwrap_or("none"))
        .arr(
            "rows",
            leg.attribution
                .table
                .rows()
                .iter()
                .map(|r| r.to_json(leg.attribution.table.tail_total_us())),
        )
        .build();
    JsonObj::new()
        .str("label", leg.label)
        .f64("fault_rate", leg.fault_rate)
        .usize("concurrency", leg.concurrency)
        .usize("sim_workers", leg.sim_workers)
        .usize("queue_depth", leg.queue_depth)
        .usize("offered", leg.point.offered)
        .usize("completed", leg.point.completed)
        .usize("shed", leg.point.shed)
        .u64("abstained", leg.abstained)
        .u64("cache_hits", leg.cache_hits)
        .u64("escalations", leg.escalations)
        .u64("exact_p50_us", leg.exact[0])
        .u64("exact_p95_us", leg.exact[1])
        .u64("exact_p99_us", leg.exact[2])
        .u64("approx_p50_us", leg.approx[0])
        .u64("approx_p95_us", leg.approx[1])
        .u64("approx_p99_us", leg.approx[2])
        .arr("windows", leg.outcome.windows.iter().map(|w| w.to_json()))
        .arr(
            "transitions",
            leg.outcome.transitions.iter().map(|t| t.to_json()),
        )
        .arr("alerts", leg.outcome.alerts.iter().map(|a| a.to_json()))
        .raw("attribution", &attrib)
        .build()
}

fn main() {
    let seed = seed();
    let scale = multirag_bench::scale();
    println!("SLO harness: movies @ {scale:?}, seed {seed}");

    let data = MoviesSpec::at_scale(scale).generate(seed);
    let mut writer = IndexWriter::new(data.graph, MultiRagConfig::default(), seed);
    let snapshot = writer.publish();
    let wave = build_workload(&data.queries, data.queries.len() * 3, seed);

    // One observed oracle per fault regime: the observer's capture
    // buffer holds one trace per computed answer, in stream order, and
    // attrib::request_costs rebuilds integer service times from the
    // per-stage costs in those traces.
    let loop_cfg = Some(LoopConfig::default().with_max_attempts(2));
    let healthy_cfg = ServeConfig {
        loop_control: loop_cfg,
        ..ServeConfig::default()
    };
    let healthy_obs = Observer::new();
    let healthy_responses = serve_sequential_observed(
        &snapshot,
        &CacheStack::new(),
        &healthy_cfg,
        &wave,
        &healthy_obs,
    );
    let healthy_costs = request_costs(&wave, &healthy_responses, &healthy_obs.take_traces());

    let fault_cfg = ServeConfig {
        deadline_ms: FAULT_DEADLINE_MS,
        fault_plan: Some(FaultPlan::brownout(seed, FAULT_RATE)),
        loop_control: loop_cfg,
        ..ServeConfig::default()
    };
    let fault_obs = Observer::new();
    let fault_responses =
        serve_sequential_observed(&snapshot, &CacheStack::new(), &fault_cfg, &wave, &fault_obs);
    let fault_costs = request_costs(&wave, &fault_responses, &fault_obs.take_traces());

    // The SLO is declared off the clean leg: p99 target at 2× its exact
    // p99, windows sized so the clean span holds CLEAN_WINDOWS of them.
    let healthy_service: Vec<u64> = healthy_costs.iter().map(|c| c.service_us).collect();
    let (clean_probe, clean_timings) = closed_loop_timeline(&healthy_service, 4, 4, DEEP_QUEUE);
    let mut clean_latencies: Vec<u64> = clean_timings
        .iter()
        .filter(|t| t.served)
        .map(RequestTiming::latency_us)
        .collect();
    clean_latencies.sort_unstable();
    let clean_p99 = exact_rank(&clean_latencies, 99);
    let spec = SloSpec::default()
        .with_window_us(((clean_probe.sim_total_ms * 1000.0) as u64 / CLEAN_WINDOWS).max(1))
        .with_p99_target_us(clean_p99 * TARGET_MULTIPLIER)
        .with_error_budget(0.05);
    println!(
        "declared SLO: p99 <= {}µs (clean p99 {}µs × {TARGET_MULTIPLIER}), window {}µs, \
         error budget {:.0}%",
        spec.p99_target_us,
        clean_p99,
        spec.window_us,
        spec.error_budget * 100.0
    );

    let legs = vec![
        run_leg("clean-c4", 0.0, &healthy_costs, spec, 4, 4, DEEP_QUEUE),
        run_leg("overload-c32", 0.0, &healthy_costs, spec, 32, 1, 8),
        run_leg(
            "faults-c8",
            FAULT_RATE,
            &fault_costs,
            spec,
            8,
            4,
            DEEP_QUEUE,
        ),
    ];

    let mut table = Table::new(
        "SLO legs (simulated time)",
        &[
            "Leg", "Done", "Shed", "Abstain", "p99/µs", "~p99/µs", "Fired", "Owner",
        ],
    );
    for leg in &legs {
        let fired: Vec<&str> = leg
            .outcome
            .alerts
            .iter()
            .filter(|a| a.fired)
            .map(|a| a.alert)
            .collect();
        table.row(vec![
            leg.label.to_string(),
            leg.point.completed.to_string(),
            leg.point.shed.to_string(),
            leg.abstained.to_string(),
            leg.exact[2].to_string(),
            leg.approx[2].to_string(),
            if fired.is_empty() {
                "-".to_string()
            } else {
                fired.join("+")
            },
            leg.attribution.table.owner().unwrap_or("none").to_string(),
        ]);
    }
    println!("{}", table.render());

    // Acceptance 1: alerts fire exactly where injected.
    let by_label = |label: &str| legs.iter().find(|l| l.label == label).expect("leg exists");
    let clean = by_label("clean-c4");
    assert!(
        clean.outcome.alerts.iter().all(|a| !a.fired),
        "the clean leg must stay silent"
    );
    assert!(
        clean.outcome.transitions.is_empty(),
        "the clean leg must not even go pending"
    );
    let overload = by_label("overload-c32");
    assert!(overload.point.shed > 0, "the overload leg must shed");
    assert!(
        overload.outcome.fired("latency_p99"),
        "sustained queueing must fire the latency alert"
    );
    assert!(
        overload.outcome.fired("error_budget"),
        "sustained sheds must fire the error-budget alert"
    );
    let faults = by_label("faults-c8");
    assert!(faults.abstained > 0, "the brownout must abstain");
    assert_eq!(
        faults.point.shed, 0,
        "the fault leg has no admission pressure"
    );
    assert!(
        faults.outcome.fired("error_budget") || faults.outcome.fired("latency_p99"),
        "the brownout must fire an alert with no admission pressure"
    );
    println!("acceptance: alerts fire on overload/fault legs only");

    // Acceptance 2: log-bucket percentiles agree with exact
    // nearest-rank within one bucket, on every leg.
    for leg in &legs {
        for (i, p) in [50u64, 95, 99].iter().enumerate() {
            let (exact, approx) = (leg.exact[i], leg.approx[i]);
            let diff = i32::from(bucket_of(exact)).abs_diff(i32::from(bucket_of(approx)));
            assert!(
                diff <= 1,
                "{}: p{p} log-bucket {approx}µs vs exact {exact}µs drifts {diff} buckets",
                leg.label
            );
        }
    }
    println!("acceptance: log-bucket p50/p95/p99 within one bucket of exact nearest-rank");

    // Acceptance 3: attribution rows sum to total closed-loop latency,
    // exactly — the integer identity the rebuilt service times buy.
    for leg in &legs {
        assert_eq!(
            leg.attribution.table.total_us(),
            leg.attribution.latency_total_us,
            "{}: attribution must decompose latency exactly",
            leg.label
        );
    }
    println!("acceptance: attribution rows sum to total closed-loop latency per leg");

    // Surface the verdicts the way a scrape would see them: transition
    // events into the trace-event stream, alert gauges and window
    // series into a registry.
    let slo_obs = Observer::metrics_only();
    for leg in &legs {
        for transition in &leg.outcome.transitions {
            slo_obs.record_event(&transition.trace_event());
        }
    }
    overload.outcome.export_metrics(&slo_obs.registry());
    let snap = slo_obs.registry().snapshot();
    assert_eq!(
        snap.gauge("slo_alert_state{alert=\"latency_p99\"}"),
        Some(2.0),
        "the overload leg's latency alert must export as firing"
    );
    assert!(
        snap.counter_family("slo_alert_events_total") > 0,
        "transitions must land in the trace-event metrics"
    );
    assert!(snap
        .to_prometheus()
        .contains("slo_offered_window{window=\"000000\"}"));

    let json = JsonObj::new()
        .u64("seed", seed)
        .str("scale", &format!("{scale:?}"))
        .str("dataset", &data.name)
        .usize("requests", wave.len())
        .u64("window_us", spec.window_us)
        .u64("p99_target_us", spec.p99_target_us)
        .f64("latency_budget", spec.latency_budget)
        .f64("error_budget", spec.error_budget)
        .f64("burn_threshold", spec.burn_threshold)
        .arr("legs", legs.iter().map(leg_json))
        .build();
    let out_dir = std::path::Path::new("results");
    if let Err(err) = std::fs::create_dir_all(out_dir)
        .and_then(|()| std::fs::write(out_dir.join("slo.json"), &json))
    {
        println!("note: could not write results/slo.json: {err}");
    } else {
        println!(
            "wrote results/slo.json ({} bytes; bit-identical for a fixed seed)",
            json.len()
        );
    }
    check_schema("slo", &json);
}
