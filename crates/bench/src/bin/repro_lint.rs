//! Determinism & panic-safety audit — the `multirag-lint` driver.
//!
//! Scans every workspace source file with the token-level analyzer,
//! reconciles the findings against the ratcheted budgets in
//! `lint_allow.toml`, and writes the byte-stable `results/lint.json`
//! artifact (sorted findings, no wall clock, no absolute paths — CI
//! runs this binary twice and `cmp`s the artifacts).
//!
//! Exit status:
//!
//! * any rule self-test failure, unreadable/invalid `lint_allow.toml`,
//!   or over-budget finding → non-zero (the ratchet never loosens);
//! * stale budgets (count dropped below budget) → non-zero only under
//!   `MULTIRAG_LINT_STRICT=1` (set in CI), so local burn-down work
//!   isn't blocked mid-stream;
//! * `MULTIRAG_LINT_UPDATE_BUDGETS=1` regenerates `lint_allow.toml`
//!   from observed counts instead of failing — justification comments
//!   must then be restored by hand in review.
//!
//! Before scanning, a self-test drives every rule over a positive and
//! a negative snippet: a broken rule (one that stops firing on code it
//! must catch, or fires on clean code) fails the run before any
//! reconciliation — the lint gate cannot be green because the lint
//! went blind.
//!
//! ```sh
//! cargo run --release -p multirag-bench --bin repro_lint
//! ```

use multirag_bench::check_schema;
use multirag_lint::{lint_json, lint_source, lint_workspace, AllowList, RULES};
use std::path::Path;
use std::process::ExitCode;

/// Per-rule positive/negative self-test snippets. The positive snippet
/// MUST produce at least one finding for the rule; the negative MUST
/// produce none.
const SELF_TESTS: &[(&str, &str, &str, &str)] = &[
    (
        "D01",
        "crates/x/src/lib.rs",
        "fn f(m: &FxHashMap<u8, u8>) -> Vec<u8> { m.keys().copied().collect() }",
        "fn f(m: &BTreeMap<u8, u8>) -> Vec<u8> { m.keys().copied().collect() }",
    ),
    (
        "D02",
        "crates/x/src/lib.rs",
        "fn f() -> Instant { Instant::now() }",
        "fn f(clock: &SimClock) -> u64 { clock.now_us() }",
    ),
    (
        "D03",
        "crates/x/src/lib.rs",
        "fn f(d: &FxHashMap<u8, f64>) -> f64 { d.values().sum::<f64>() }",
        "fn f(d: &BTreeMap<u8, f64>) -> f64 { d.values().sum::<f64>() }",
    ),
    (
        "R01",
        "crates/x/src/lib.rs",
        "fn f(o: Option<u8>) -> u8 { o.unwrap() }",
        "fn f(o: Option<u8>) -> u8 { o.unwrap_or(0) }",
    ),
    (
        "S01",
        "crates/bench/src/bin/repro_x.rs",
        "fn main() { std::fs::write(\"results/x.json\", b\"{}\").ok(); }",
        "fn main() { std::fs::write(\"results/x.json\", b\"{}\").ok(); check_schema(\"x\", \"\"); }",
    ),
    (
        "P01",
        "crates/x/src/lib.rs",
        "fn f() -> Config { Config { graph_threshold: 0.5 } }",
        "fn f(t: f64) -> Config { Config { graph_threshold: t } }",
    ),
];

/// Proves every rule still fires on code it must catch and stays
/// silent on clean code. Returns the failure messages (empty = pass).
fn rule_self_test() -> Vec<String> {
    let mut failures = Vec::new();
    for (rule, rel, positive, negative) in SELF_TESTS {
        let hits = |src: &str| {
            lint_source(rel, src)
                .iter()
                .filter(|f| f.rule == *rule)
                .count()
        };
        if hits(positive) == 0 {
            failures.push(format!(
                "{rule}: rule went blind — the positive snippet no longer produces a finding"
            ));
        }
        if hits(negative) != 0 {
            failures.push(format!(
                "{rule}: rule over-fires — the negative snippet produces a finding"
            ));
        }
    }
    failures
}

fn main() -> ExitCode {
    let strict = std::env::var("MULTIRAG_LINT_STRICT").as_deref() == Ok("1");
    let update = std::env::var("MULTIRAG_LINT_UPDATE_BUDGETS").as_deref() == Ok("1");
    println!("=== repro_lint: determinism & panic-safety audit ===");

    let self_test_failures = rule_self_test();
    if self_test_failures.is_empty() {
        println!(
            "self-test: {} rules × (positive fires, negative silent) — ok",
            SELF_TESTS.len()
        );
    } else {
        for failure in &self_test_failures {
            println!("self-test FAILED: {failure}");
        }
        return ExitCode::FAILURE;
    }

    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (files_scanned, findings) = lint_workspace(&root);

    let allow_path = root.join("lint_allow.toml");
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => match AllowList::parse(&text) {
            Ok(allow) => allow,
            Err(err) => {
                println!("lint_allow.toml is invalid: {err}");
                return ExitCode::FAILURE;
            }
        },
        Err(err) if update => {
            println!("lint_allow.toml missing ({err}); regenerating from scratch");
            AllowList::default()
        }
        Err(err) => {
            println!("cannot read {}: {err}", allow_path.display());
            return ExitCode::FAILURE;
        }
    };
    let recon = allow.reconcile(&findings);

    println!(
        "scanned {files_scanned} files: {} finding(s), {} exempted",
        recon.kept.len(),
        findings.len() - recon.kept.len()
    );
    println!(
        "{:<6} {:<22} {:>8} {:>8} {:>9}",
        "rule", "name", "found", "budget", "exempted"
    );
    for rule in RULES {
        println!(
            "{:<6} {:<22} {:>8} {:>8} {:>9}",
            rule.id,
            rule.name,
            recon.rule_count(rule.id),
            recon.rule_budget(rule.id),
            recon.rule_exempted(rule.id)
        );
    }

    if update {
        let rendered = allow.render_from(&recon);
        if let Err(err) = std::fs::write(&allow_path, rendered) {
            println!("could not write {}: {err}", allow_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "rewrote {} from observed counts — restore justification comments before committing",
            allow_path.display()
        );
    }

    let json = lint_json(files_scanned, &recon.kept, &recon);
    let out_dir = Path::new("results");
    if let Err(err) = std::fs::create_dir_all(out_dir)
        .and_then(|()| std::fs::write(out_dir.join("lint.json"), &json))
    {
        println!("note: could not write results/lint.json: {err}");
    } else {
        println!(
            "wrote results/lint.json ({} bytes; byte-identical across runs)",
            json.len()
        );
    }
    check_schema("lint", &json);

    if update {
        return ExitCode::SUCCESS;
    }
    for violation in &recon.violations {
        println!("VIOLATION: {violation}");
    }
    for stale in &recon.stale {
        if strict {
            println!("STALE: {stale}");
        } else {
            println!("stale (warn): {stale}");
        }
    }
    if !recon.violations.is_empty() || (strict && !recon.stale.is_empty()) {
        println!("lint gate: FAILED");
        return ExitCode::FAILURE;
    }
    println!("lint gate: clean (ratchet holds)");
    ExitCode::SUCCESS
}
