//! Determinism & panic-safety audit — the `multirag-lint` driver.
//!
//! Scans every workspace source file with the token-level analyzer,
//! reconciles the findings against the ratcheted budgets in
//! `lint_allow.toml`, and writes the byte-stable `results/lint.json`
//! artifact (sorted findings, no wall clock, no absolute paths — CI
//! runs this binary twice and `cmp`s the artifacts).
//!
//! Exit status:
//!
//! * any rule self-test failure, unreadable/invalid `lint_allow.toml`,
//!   or over-budget finding → non-zero (the ratchet never loosens);
//! * stale budgets (count dropped below budget) → non-zero only under
//!   `MULTIRAG_LINT_STRICT=1` (set in CI), so local burn-down work
//!   isn't blocked mid-stream;
//! * `MULTIRAG_LINT_UPDATE_BUDGETS=1` regenerates `lint_allow.toml`
//!   from observed counts instead of failing — justification comments
//!   must then be restored by hand in review.
//!
//! Before scanning, a self-test drives every rule over a positive and
//! a negative snippet: a broken rule (one that stops firing on code it
//! must catch, or fires on clean code) fails the run before any
//! reconciliation — the lint gate cannot be green because the lint
//! went blind.
//!
//! ```sh
//! cargo run --release -p multirag-bench --bin repro_lint
//! ```

use multirag_bench::check_schema;
use multirag_lint::walk::{classify, SourceEntry};
use multirag_lint::{analyze_sources, analyze_workspace, lint_json, lint_source, AllowList, RULES};
use std::path::Path;
use std::process::ExitCode;

/// Per-rule positive/negative self-test snippets. The positive snippet
/// MUST produce at least one finding for the rule; the negative MUST
/// produce none.
const SELF_TESTS: &[(&str, &str, &str, &str)] = &[
    (
        "D01",
        "crates/x/src/lib.rs",
        "fn f(m: &FxHashMap<u8, u8>) -> Vec<u8> { m.keys().copied().collect() }",
        "fn f(m: &BTreeMap<u8, u8>) -> Vec<u8> { m.keys().copied().collect() }",
    ),
    (
        "D02",
        "crates/x/src/lib.rs",
        "fn f() -> Instant { Instant::now() }",
        "fn f(clock: &SimClock) -> u64 { clock.now_us() }",
    ),
    (
        "D03",
        "crates/x/src/lib.rs",
        "fn f(d: &FxHashMap<u8, f64>) -> f64 { d.values().sum::<f64>() }",
        "fn f(d: &BTreeMap<u8, f64>) -> f64 { d.values().sum::<f64>() }",
    ),
    (
        "R01",
        "crates/x/src/lib.rs",
        "fn f(o: Option<u8>) -> u8 { o.unwrap() }",
        "fn f(o: Option<u8>) -> u8 { o.unwrap_or(0) }",
    ),
    (
        "S01",
        "crates/bench/src/bin/repro_x.rs",
        "fn main() { std::fs::write(\"results/x.json\", b\"{}\").ok(); }",
        "fn main() { std::fs::write(\"results/x.json\", b\"{}\").ok(); check_schema(\"x\", \"\"); }",
    ),
    (
        "P01",
        "crates/x/src/lib.rs",
        "fn f() -> Config { Config { graph_threshold: 0.5 } }",
        "fn f(t: f64) -> Config { Config { graph_threshold: t } }",
    ),
    (
        "C01",
        "crates/x/src/lib.rs",
        "fn f() { let (tx, rx) = std::sync::mpsc::channel(); }",
        "fn f() { let (tx, rx) = std::sync::mpsc::sync_channel(4); }",
    ),
];

/// Interprocedural T01 self-test snippets: each is a whole one-file
/// "workspace" driven through the call-graph + taint pass.
const TAINT_SELF_TESTS: &[(&str, &str, &str)] = &[(
    "T01",
    // Positive: hash iteration flows unsanitized into an artifact.
    "fn main() {\n\
       let m: HashMap<u8, u8> = HashMap::new();\n\
       let mut rows = Vec::new();\n\
       for v in m.values() { rows.push(*v); }\n\
       std::fs::write(\"results/x.json\", format!(\"{rows:?}\")).ok();\n\
     }",
    // Negative: the sort between source and sink sanitizes.
    "fn main() {\n\
       let m: HashMap<u8, u8> = HashMap::new();\n\
       let mut rows = Vec::new();\n\
       for v in m.values() { rows.push(*v); }\n\
       rows.sort();\n\
       std::fs::write(\"results/x.json\", format!(\"{rows:?}\")).ok();\n\
     }",
)];

/// Proves every rule still fires on code it must catch and stays
/// silent on clean code. Returns the failure messages (empty = pass).
fn rule_self_test() -> Vec<String> {
    let mut failures = Vec::new();
    for (rule, rel, positive, negative) in SELF_TESTS {
        let hits = |src: &str| {
            lint_source(rel, src)
                .iter()
                .filter(|f| f.rule == *rule)
                .count()
        };
        if hits(positive) == 0 {
            failures.push(format!(
                "{rule}: rule went blind — the positive snippet no longer produces a finding"
            ));
        }
        if hits(negative) != 0 {
            failures.push(format!(
                "{rule}: rule over-fires — the negative snippet produces a finding"
            ));
        }
    }
    for (rule, positive, negative) in TAINT_SELF_TESTS {
        let hits = |src: &str| {
            let rel = "crates/bench/src/bin/repro_selftest.rs";
            let sources = vec![(
                SourceEntry {
                    kind: classify(rel),
                    rel: rel.to_string(),
                },
                src.to_string(),
            )];
            analyze_sources(&sources)
                .findings
                .iter()
                .filter(|f| f.rule == *rule)
                .count()
        };
        if hits(positive) == 0 {
            failures.push(format!(
                "{rule}: taint pass went blind — the positive snippet no longer produces a chain"
            ));
        }
        if hits(negative) != 0 {
            failures.push(format!(
                "{rule}: taint pass over-fires — the sanitized snippet produces a chain"
            ));
        }
    }
    failures
}

fn main() -> ExitCode {
    let strict = std::env::var("MULTIRAG_LINT_STRICT").as_deref() == Ok("1");
    let update = std::env::var("MULTIRAG_LINT_UPDATE_BUDGETS").as_deref() == Ok("1");
    println!("=== repro_lint: determinism & panic-safety audit ===");

    let self_test_failures = rule_self_test();
    if self_test_failures.is_empty() {
        println!(
            "self-test: {} rules × (positive fires, negative silent) — ok",
            SELF_TESTS.len() + TAINT_SELF_TESTS.len()
        );
    } else {
        for failure in &self_test_failures {
            println!("self-test FAILED: {failure}");
        }
        return ExitCode::FAILURE;
    }

    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let analysis = analyze_workspace(&root);
    let (files_scanned, findings) = (analysis.files_scanned, &analysis.findings);
    println!(
        "call graph: {} node(s), {} edge(s) across the workspace",
        analysis.graph_nodes, analysis.graph_edges
    );

    let allow_path = root.join("lint_allow.toml");
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => match AllowList::parse(&text) {
            Ok(allow) => allow,
            Err(err) => {
                println!("lint_allow.toml is invalid: {err}");
                return ExitCode::FAILURE;
            }
        },
        Err(err) if update => {
            println!("lint_allow.toml missing ({err}); regenerating from scratch");
            AllowList::default()
        }
        Err(err) => {
            println!("cannot read {}: {err}", allow_path.display());
            return ExitCode::FAILURE;
        }
    };
    let recon = allow.reconcile(findings);

    println!(
        "scanned {files_scanned} files: {} finding(s), {} exempted",
        recon.kept.len(),
        findings.len() - recon.kept.len()
    );
    println!(
        "{:<6} {:<22} {:>8} {:>8} {:>9}",
        "rule", "name", "found", "budget", "exempted"
    );
    for rule in RULES {
        println!(
            "{:<6} {:<22} {:>8} {:>8} {:>9}",
            rule.id,
            rule.name,
            recon.rule_count(rule.id),
            recon.rule_budget(rule.id),
            recon.rule_exempted(rule.id)
        );
    }

    if update {
        let rendered = allow.render_from(&recon);
        if let Err(err) = std::fs::write(&allow_path, rendered) {
            println!("could not write {}: {err}", allow_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "rewrote {} from observed counts — restore justification comments before committing",
            allow_path.display()
        );
    }

    // Every discovered source→sink chain goes into the artifact; the
    // exempt flag marks chains whose source file is `[exempt.T01]`
    // (justified wall-clock measurement plumbing). Non-exempt chains
    // are hard failures below — T01 is burned down, never budgeted.
    let taint_paths: Vec<_> = analysis
        .taint_paths
        .iter()
        .map(|p| (p.clone(), allow.is_exempt("T01", &p.source_file)))
        .collect();
    for (path, exempt) in &taint_paths {
        let status = if *exempt { "exempt" } else { "UNSANITIZED" };
        println!(
            "taint [{status}] {} {}:{} -> {} via {}",
            path.kind,
            path.source_file,
            path.source_line,
            path.sink,
            path.chain.join(" -> ")
        );
    }
    let unsanitized = taint_paths.iter().filter(|(_, exempt)| !exempt).count();
    println!(
        "taint paths: {} total, {unsanitized} unsanitized",
        taint_paths.len()
    );

    let json = lint_json(
        files_scanned,
        &recon.kept,
        &recon,
        (analysis.graph_nodes, analysis.graph_edges),
        &taint_paths,
    );
    let out_dir = Path::new("results");
    if let Err(err) = std::fs::create_dir_all(out_dir)
        .and_then(|()| std::fs::write(out_dir.join("lint.json"), &json))
    {
        println!("note: could not write results/lint.json: {err}");
    } else {
        println!(
            "wrote results/lint.json ({} bytes; byte-identical across runs)",
            json.len()
        );
    }
    check_schema("lint", &json);

    if update {
        return ExitCode::SUCCESS;
    }
    for violation in &recon.violations {
        println!("VIOLATION: {violation}");
    }
    for stale in &recon.stale {
        if strict {
            println!("STALE: {stale}");
        } else {
            println!("stale (warn): {stale}");
        }
    }
    if unsanitized != 0 {
        println!("T01: {unsanitized} unsanitized taint path(s) — fix the source or justify an [exempt.T01] entry; T01 is never budgeted");
    }
    if !recon.violations.is_empty() || unsanitized != 0 || (strict && !recon.stale.is_empty()) {
        println!("lint gate: FAILED");
        return ExitCode::FAILURE;
    }
    println!("lint gate: clean (ratchet holds)");
    ExitCode::SUCCESS
}
