//! Regenerates **Fig. 7** — influence of the hyper-parameter α
//! (LLM-assessed vs historical authority, Eq. 9) on F1 and query time,
//! swept from 0.0 to 1.0.
//!
//! ```sh
//! cargo run --release -p multirag-bench --bin repro_fig7
//! ```

use multirag_bench::seed;
use multirag_core::MultiRagConfig;
use multirag_datasets::books::BooksSpec;
use multirag_eval::run_multirag;
use multirag_eval::table::{fmt1, fmt2, Table};

fn main() {
    let seed = seed();
    let scale = multirag_bench::scale();
    println!("Fig. 7: α sweep on the Books dataset (scale = {scale:?}, seed = {seed})");
    let data = BooksSpec::at_scale(scale).generate(seed);
    let mut table = Table::new("Fig. 7: F1% and time vs α", &["alpha", "F1/%", "QT+PT/s"]);
    for step in 0..=10 {
        let alpha = f64::from(step) / 10.0;
        let config = MultiRagConfig::default().with_alpha(alpha);
        let row = run_multirag(&data, &data.graph, config, seed);
        table.row(vec![
            format!("{alpha:.1}"),
            fmt1(row.f1),
            fmt2(row.total_time_s()),
        ]);
    }
    println!("{}", table.render());
    println!("CSV (for plotting):\n{}", table.to_csv());
}
