//! Regenerates **Table IV** — performance comparison on the HotpotQA
//! and 2WikiMultiHopQA analogues: answer precision (%) and Recall@5
//! (%) over gold supporting documents.
//!
//! ```sh
//! cargo run --release -p multirag-bench --bin repro_table4
//! ```

use multirag_baselines::multihop::{
    ChatKbqaMh, CotMh, IrCotMh, MdqaMh, MetaRagMh, MhContext, MultiHopMethod, RqRagMh,
    StandardRagMh,
};
use multirag_bench::seed;
use multirag_core::MultiRagConfig;
use multirag_datasets::multihop::{MultiHopFlavor, MultiHopSpec};
use multirag_eval::table::{fmt1, fmt2, Table};
use multirag_eval::{run_multihop_method, run_multirag_multihop};

fn main() {
    let seed = seed();
    let spec_scale = match std::env::var("MULTIRAG_SCALE").as_deref() {
        Ok("small") => MultiHopSpec::small(MultiHopFlavor::Hotpot),
        _ => MultiHopSpec::bench(MultiHopFlavor::Hotpot),
    };
    println!(
        "Table IV: multi-hop QA ({} questions per dataset, seed = {seed})",
        spec_scale.questions
    );
    let mut table = Table::new(
        "Table IV",
        &[
            "Dataset",
            "Method",
            "Precision/%",
            "Recall@5/%",
            "Recall σ",
            "Halluc/%",
            "Wall/s",
            "Sim/s",
        ],
    );
    for flavor in [MultiHopFlavor::Hotpot, MultiHopFlavor::TwoWiki] {
        let spec = MultiHopSpec {
            flavor,
            ..spec_scale
        };
        let data = spec.generate(seed);
        let label = match flavor {
            MultiHopFlavor::Hotpot => "HotpotQA",
            MultiHopFlavor::TwoWiki => "2WikiMultiHopQA",
        };
        let mut methods: Vec<Box<dyn MultiHopMethod + '_>> = vec![
            Box::new(StandardRagMh(MhContext::new(&data, seed))),
            Box::new(CotMh::new(&data, seed)),
            Box::new(IrCotMh(MhContext::new(&data, seed))),
            Box::new(ChatKbqaMh::new(&data, seed)),
            Box::new(MdqaMh(MhContext::new(&data, seed))),
            Box::new(RqRagMh(MhContext::new(&data, seed))),
            Box::new(MetaRagMh(MhContext::new(&data, seed))),
        ];
        let mut rows = Vec::new();
        for method in &mut methods {
            rows.push(run_multihop_method(&data, method.as_mut()));
        }
        rows.push(run_multirag_multihop(
            &data,
            MultiRagConfig::default(),
            seed,
        ));
        for row in rows {
            table.row(vec![
                label.to_string(),
                row.name.clone(),
                fmt1(row.precision),
                fmt1(row.recall_at_5),
                fmt1(row.recall_std),
                fmt1(row.hallucination_rate * 100.0),
                fmt2(row.time.wall_s),
                fmt2(row.time.simulated_s),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "Wall/s = measured compute; Sim/s = simulated LLM latency attributed by the cost model."
    );
}
