//! Closed-loop grounded generation harness — grade → escalate under a
//! deadline-bounded budget, with the cost visible in serving tails.
//!
//! Every benchmark dataset is perturbed (injected conflicts + masked
//! relations) so the single-pass pipeline demonstrably hallucinates,
//! then the escalation budget is swept over `max_attempts` ∈ {0,1,2,3}
//! crossed with grader fault rates {0, 5%}. Attempt budget 0 is the
//! loop disabled — byte-identical to the pre-loop pipeline. Each cell
//! reports the hallucination / abstention tallies plus closed-loop
//! latency percentiles: per-query metered service times (integer µs,
//! escalation charges included) feed the serving crate's discrete-event
//! queueing model, so the price of the loop lands where an operator
//! would see it — in p99.
//!
//! In-binary acceptance:
//!
//! * with a healthy grader, any budget ≥ 1 strictly reduces
//!   hallucinations versus the single pass, and never abstains less;
//! * a faulty grader degrades gracefully — hallucinations never exceed
//!   the single-pass count;
//! * escalation is not free: simulated time and closed-loop p99 are
//!   strictly higher than the single pass.
//!
//! `results/loop.json` is byte-identical for a fixed seed — the CI
//! loop-smoke job runs this binary twice and diffs the artifacts.
//!
//! ```sh
//! cargo run --release -p multirag-bench --bin repro_loop
//! ```

use multirag_bench::{all_datasets, check_schema, seed};
use multirag_core::{LoopConfig, MultiRagConfig};
use multirag_datasets::{perturb, render};
use multirag_eval::table::Table;
use multirag_eval::{run_loop_sweep, LoopSweepConfig};
use multirag_faults::{us_to_ms, FaultPlan};
use multirag_obs::json::JsonObj;
use multirag_serve::closed_loop;

/// Fixed per-request serving overhead, mirroring the serve engine's
/// admission + dispatch cost (µs).
const OVERHEAD_US: u64 = 200;
/// Fan-out workers for the sweep; outcomes are worker-count invariant.
const WORKERS: usize = 4;
/// Closed-loop clients driving the latency model.
const CONCURRENCY: usize = 4;
/// Queue deep enough that nothing sheds — every query's latency counts.
const QUEUE_DEPTH: usize = 1 << 16;

/// One (fault rate × attempt budget) cell aggregated over all datasets.
struct Cell {
    grader_fault: f64,
    max_attempts: u32,
    queries: usize,
    hallucinated: usize,
    abstained: usize,
    exhausted: usize,
    escalations: u64,
    sim_ms: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

fn run_cell(
    datasets: &[(
        multirag_datasets::spec::MultiSourceDataset,
        Vec<multirag_ingest::RawSource>,
    )],
    grader_fault: f64,
    max_attempts: u32,
    seed: u64,
) -> Cell {
    let mut cell = Cell {
        grader_fault,
        max_attempts,
        queries: 0,
        hallucinated: 0,
        abstained: 0,
        exhausted: 0,
        escalations: 0,
        sim_ms: 0.0,
        p50_ms: 0.0,
        p95_ms: 0.0,
        p99_ms: 0.0,
    };
    let mut service_us: Vec<u64> = Vec::new();
    for (data, reserves) in datasets {
        let sweep_cfg = LoopSweepConfig {
            config: MultiRagConfig::default(),
            loopcfg: Some(LoopConfig::default().with_max_attempts(max_attempts)),
            fault_plan: Some(FaultPlan {
                grader_failure_rate: grader_fault,
                ..FaultPlan::healthy(seed)
            }),
            reserves: reserves.clone(),
        };
        let sweep = run_loop_sweep(data, &data.graph, &sweep_cfg, seed, WORKERS);
        cell.queries += sweep.answers.len();
        cell.hallucinated += sweep.hallucinated();
        cell.abstained += sweep.abstained();
        cell.exhausted += sweep.escalation_exhausted();
        cell.escalations += sweep.escalation_attempts();
        cell.sim_ms += sweep.usage.simulated_ms;
        service_us.extend(sweep.service_us.iter().map(|&us| us + OVERHEAD_US));
    }
    let point = closed_loop(&service_us, CONCURRENCY, WORKERS, QUEUE_DEPTH);
    assert_eq!(
        point.completed, cell.queries,
        "queue must be deep enough that no request sheds"
    );
    cell.p50_ms = point.p50_ms;
    cell.p95_ms = point.p95_ms;
    cell.p99_ms = point.p99_ms;
    cell
}

fn cell_json(c: &Cell) -> String {
    JsonObj::new()
        .f64("grader_fault", c.grader_fault)
        .u64("max_attempts", u64::from(c.max_attempts))
        .usize("queries", c.queries)
        .usize("hallucinated", c.hallucinated)
        .usize("abstained", c.abstained)
        .usize("escalation_exhausted", c.exhausted)
        .u64("escalations", c.escalations)
        .f64("sim_ms", c.sim_ms)
        .f64("p50_ms", c.p50_ms)
        .f64("p95_ms", c.p95_ms)
        .f64("p99_ms", c.p99_ms)
        .build()
}

fn main() {
    let seed = seed();
    let scale = multirag_bench::scale();
    println!(
        "Closed-loop harness: 4 perturbed datasets @ {scale:?}, seed {seed}, {WORKERS} fan-out workers"
    );

    // Perturb every dataset so the single pass hallucinates; the clean
    // renders become the reserve sources the consult rung draws on.
    let datasets: Vec<_> = all_datasets()
        .into_iter()
        .map(|clean| {
            let reserves = render::render_all_sources(&clean);
            let data = perturb::inject_conflicts(&clean, 0.35, seed);
            let data = perturb::mask_relations(&data, 0.2, seed);
            (data, reserves)
        })
        .collect();

    let fault_rates = [0.0, 0.05];
    let budgets = [0u32, 1, 2, 3];
    let mut cells: Vec<Cell> = Vec::new();
    for &rate in &fault_rates {
        for &attempts in &budgets {
            cells.push(run_cell(&datasets, rate, attempts, seed));
        }
    }

    let mut table = Table::new(
        "Escalation budget sweep (aggregated over datasets)",
        &[
            "Fault", "Budget", "Halluc", "Abstain", "Exhaust", "Esc", "Sim/ms", "p50/ms", "p99/ms",
        ],
    );
    for c in &cells {
        table.row(vec![
            format!("{:.0}%", c.grader_fault * 100.0),
            c.max_attempts.to_string(),
            format!("{}/{}", c.hallucinated, c.queries),
            c.abstained.to_string(),
            c.exhausted.to_string(),
            c.escalations.to_string(),
            format!("{:.1}", c.sim_ms),
            format!("{:.2}", c.p50_ms),
            format!("{:.2}", c.p99_ms),
        ]);
    }
    println!("{}", table.render());

    // Acceptance: the loop must strictly earn its latency cost.
    for &rate in &fault_rates {
        let row = |attempts: u32| {
            cells
                .iter()
                .find(|c| c.grader_fault == rate && c.max_attempts == attempts)
                .expect("cell exists")
        };
        let baseline = row(0);
        assert!(
            baseline.hallucinated > 0,
            "perturbation must make the single pass hallucinate"
        );
        for attempts in [1u32, 2, 3] {
            let looped = row(attempts);
            if rate == 0.0 {
                assert!(
                    looped.hallucinated < baseline.hallucinated,
                    "budget {attempts} must strictly reduce hallucinations \
                     ({} vs baseline {})",
                    looped.hallucinated,
                    baseline.hallucinated
                );
            } else {
                // A faulty grader can only miss rescues, never create
                // hallucinations: graceful degradation is monotone.
                assert!(
                    looped.hallucinated <= baseline.hallucinated,
                    "budget {attempts} under grader faults must never hallucinate \
                     more than the single pass"
                );
            }
            assert!(
                looped.sim_ms > baseline.sim_ms,
                "escalation must charge metered time"
            );
            assert!(
                looped.p99_ms > baseline.p99_ms,
                "the loop's cost must be visible in closed-loop p99"
            );
        }
    }
    println!(
        "acceptance: budget>=1 strictly reduces hallucinations (healthy grader), \
         p99 strictly rises"
    );

    let json = JsonObj::new()
        .u64("seed", seed)
        .str("scale", &format!("{scale:?}"))
        .f64("conflict_fraction", 0.35)
        .f64("mask_fraction", 0.2)
        .usize("concurrency", CONCURRENCY)
        .usize("workers", WORKERS)
        .raw("overhead_us", &OVERHEAD_US.to_string())
        .f64("deadline_ms", us_to_ms(LoopConfig::default().deadline_us))
        .arr("cells", cells.iter().map(cell_json))
        .build();
    let out_dir = std::path::Path::new("results");
    if let Err(err) = std::fs::create_dir_all(out_dir)
        .and_then(|()| std::fs::write(out_dir.join("loop.json"), &json))
    {
        println!("note: could not write results/loop.json: {err}");
    } else {
        println!(
            "wrote results/loop.json ({} bytes; bit-identical for a fixed seed)",
            json.len()
        );
    }
    check_schema("loop", &json);
}
