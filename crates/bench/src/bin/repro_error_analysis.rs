//! Regenerates the paper's **Q4 error analysis** — the types and
//! frequency of hallucinations per method, on the sparse Books dataset
//! (the ambiguous-context regime the paper highlights).
//!
//! ```sh
//! cargo run --release -p multirag-bench --bin repro_error_analysis
//! ```

use multirag_baselines::chatkbqa::ChatKbqa;
use multirag_baselines::common::FusionMethod;
use multirag_baselines::metarag::MetaRag;
use multirag_baselines::standard_rag::StandardRag;
use multirag_bench::seed;
use multirag_core::{MklgpPipeline, MultiRagConfig};
use multirag_datasets::books::BooksSpec;
use multirag_eval::table::Table;
use multirag_eval::ErrorBreakdown;

fn main() {
    let seed = seed();
    let scale = multirag_bench::scale();
    println!("Q4 error analysis on Books (scale = {scale:?}, seed = {seed})");
    let data = BooksSpec::at_scale(scale).generate(seed);

    let mut table = Table::new(
        "Outcome taxonomy per method (counts)",
        &[
            "Method",
            "correct",
            "partial",
            "wrong-selection",
            "halluc-swap",
            "halluc-drop",
            "halluc-fabricate",
            "abstained",
            "halluc rate %",
        ],
    );
    let cell = |b: &ErrorBreakdown, o| b.count(o).to_string();
    let push = |table: &mut Table, name: &str, b: &ErrorBreakdown| {
        use multirag_eval::Outcome::*;
        table.row(vec![
            name.to_string(),
            cell(b, Correct),
            cell(b, PartiallyCorrect),
            cell(b, WrongSelection),
            cell(b, HallucinationSwap),
            cell(b, HallucinationDrop),
            cell(b, HallucinationFabricate),
            cell(b, Abstained),
            format!("{:.1}", b.hallucination_rate() * 100.0),
        ]);
    };

    // Baselines answer through their LLM; without a separate fusion
    // stage, fusion == generated and divergence shows as selection
    // errors. (A deeper per-mode attribution needs the pipeline's
    // fusion_values, which only MultiRAG exposes.)
    let mut methods: Vec<Box<dyn FusionMethod>> = vec![
        Box::new(StandardRag::new(seed)),
        Box::new(ChatKbqa::new(seed)),
        Box::new(MetaRag::new(seed)),
    ];
    for method in &mut methods {
        let mut breakdown = ErrorBreakdown::default();
        for q in &data.queries {
            let a = method.answer(&data.graph, q);
            breakdown.record(&a.values, &a.values, &q.gold);
        }
        push(&mut table, method.name(), &breakdown);
    }

    // MultiRAG: generated vs fusion separates selection errors from
    // generation hallucinations.
    let mut pipeline = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), seed);
    let mut breakdown = ErrorBreakdown::default();
    for q in &data.queries {
        let a = pipeline.answer(q);
        breakdown.record(&a.values, &a.fusion_values, &q.gold);
    }
    push(&mut table, "MultiRAG", &breakdown);

    // And the w/o MCC ablation, to show where the reduction comes from.
    let mut gutted = MklgpPipeline::new(&data.graph, MultiRagConfig::default().without_mcc(), seed);
    let mut breakdown = ErrorBreakdown::default();
    for q in &data.queries {
        let a = gutted.answer(q);
        breakdown.record(&a.values, &a.fusion_values, &q.gold);
    }
    push(&mut table, "MultiRAG w/o MCC", &breakdown);

    println!("{}", table.render());
    println!(
        "MultiRAG's hallucination classes shrink relative to w/o MCC and the baselines —\n\
         the confidence filtering removes exactly the ambiguous contexts that trigger them."
    );
}
