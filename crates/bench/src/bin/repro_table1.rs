//! Regenerates **Table I** — statistics of the four preprocessed
//! multi-source datasets.
//!
//! ```sh
//! cargo run --release -p multirag-bench --bin repro_table1
//! ```

use multirag_datasets::stats::{dataset_stats, render_table1};

fn main() {
    let stats: Vec<_> = multirag_bench::all_datasets()
        .iter()
        .map(dataset_stats)
        .collect();
    println!(
        "Table I: Statistics of the datasets preprocessed (scale = {:?}, seed = {})\n",
        multirag_bench::scale(),
        multirag_bench::seed()
    );
    println!("{}", render_table1(&stats));
}
