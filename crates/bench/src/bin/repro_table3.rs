//! Regenerates **Table III** — ablation experiments of multi-source
//! knowledge aggregation (MKA) and multi-level confidence computing
//! (MCC): F1 (%), QT (query-time seconds, measured) and PT
//! (prompting/preprocess seconds) per dataset × source combo ×
//! configuration.
//!
//! ```sh
//! cargo run --release -p multirag-bench --bin repro_table3
//! ```

use multirag_bench::{combo_code, seed, source_combos};
use multirag_core::MultiRagConfig;
use multirag_eval::run_multirag;
use multirag_eval::table::{fmt1, fmt2, Table};

fn main() {
    let seed = seed();
    println!(
        "Table III: MKA / MCC ablations (scale = {:?}, seed = {seed})",
        multirag_bench::scale()
    );
    let configs: Vec<(&str, MultiRagConfig)> = vec![
        ("MultiRAG", MultiRagConfig::default()),
        ("w/o MKA", MultiRagConfig::default().without_mka()),
        (
            "w/o Graph Level",
            MultiRagConfig::default().without_graph_level(),
        ),
        (
            "w/o Node Level",
            MultiRagConfig::default().without_node_level(),
        ),
        ("w/o MCC", MultiRagConfig::default().without_mcc()),
    ];
    let mut table = Table::new(
        "Table III",
        &[
            "Dataset", "Sources", "Config", "F1/%", "QT/s", "PT/s", "Wall/s", "Sim/s",
        ],
    );
    for data in multirag_bench::all_datasets() {
        for combo in source_combos(&data.name) {
            let graph = data.restricted_graph(&combo);
            for (name, config) in &configs {
                let row = run_multirag(&data, &graph, *config, seed);
                let mut time = row.qt;
                time.merge(&row.pt);
                table.row(vec![
                    data.name.clone(),
                    combo_code(&combo),
                    name.to_string(),
                    fmt1(row.f1),
                    fmt2(row.qt.total_s()),
                    fmt2(row.pt.total_s()),
                    fmt2(time.wall_s),
                    fmt2(time.simulated_s),
                ]);
            }
        }
    }
    println!("{}", table.render());
    println!("QT = measured query-loop seconds; PT = MLG build + simulated LLM prompting seconds.");
    println!("Wall/s and Sim/s decompose QT+PT into measured compute vs simulated LLM latency.");
}
