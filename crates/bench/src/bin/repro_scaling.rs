//! Scaling study behind the paper's Q5 complexity claims: MLG
//! construction is `O(n log n)`-ish in triples and per-query extraction
//! through the homologous index is independent of graph size, while the
//! unaggregated scan grows linearly — the mechanism that turns the
//! Flights dataset from "NAN" to seconds in Table III.
//!
//! ```sh
//! cargo run --release -p multirag-bench --bin repro_scaling
//! ```

use multirag_bench::seed;
use multirag_cluster::{cluster_closed_loop, HashRing, DEFAULT_VNODES};
use multirag_core::{kg_schema, MklgpPipeline, MultiRagConfig, MultiSourceLineGraph};
use multirag_datasets::movies::MoviesSpec;
use multirag_datasets::spec::Scale;
use multirag_eval::table::{fmt2, Table};
use multirag_eval::timing::Stopwatch;
use multirag_llmsim::client::MockLlm;
use multirag_serve::{
    build_workload, closed_loop, serve_sequential, CacheStack, IndexWriter, ServeConfig,
};

fn main() {
    let seed = seed();
    println!("Scaling study (seed = {seed})");
    let mut table = Table::new(
        "MLG construction and per-query extraction vs graph size",
        &[
            "entities",
            "triples",
            "mlg build/s",
            "100 queries w/ MKA (wall s)",
            "100 queries w/o MKA (wall s)",
        ],
    );
    for entities in [100usize, 400, 1000, 2500] {
        let data = MoviesSpec::at_scale(Scale {
            entities,
            queries: 100,
        })
        .generate(seed);

        let watch = Stopwatch::start();
        let mlg = MultiSourceLineGraph::build(&data.graph);
        let build_s = watch.elapsed_s();
        std::hint::black_box(mlg.stats());

        let run = |config: MultiRagConfig| {
            let mut pipeline = MklgpPipeline::new(&data.graph, config, seed);
            let watch = Stopwatch::start();
            for q in &data.queries {
                std::hint::black_box(pipeline.answer(q));
            }
            watch.elapsed_s()
        };
        let with_mka = run(MultiRagConfig::default());
        let without_mka = run(MultiRagConfig::default().without_mka());

        table.row(vec![
            entities.to_string(),
            data.graph.triple_count().to_string(),
            fmt2(build_s),
            fmt2(with_mka),
            fmt2(without_mka),
        ]);
    }
    println!("{}", table.render());
    println!(
        "With MKA the query column stays flat as the graph grows; without it the full-scan\n\
         extraction grows linearly with triples — extrapolate to web scale for the paper's NAN."
    );

    // Serve-path scaling: throughput vs worker-pool size at a fixed
    // dataset size. Per-request service times come from the sequential
    // oracle in *simulated* milliseconds and feed the deterministic
    // closed loop, so this table is byte-stable for a fixed seed
    // (unlike the wall-clock columns above).
    let data = MoviesSpec::at_scale(Scale {
        entities: 400,
        queries: 100,
    })
    .generate(seed);
    let mut writer = IndexWriter::new(data.graph.clone(), MultiRagConfig::default(), seed);
    let snapshot = writer.publish();
    let serve_cfg = ServeConfig::default();
    let wave = build_workload(&data.queries, data.queries.len() * 2, seed);
    let oracle = serve_sequential(&snapshot, &CacheStack::new(), &serve_cfg, &wave);
    let service_us: Vec<u64> = oracle
        .iter()
        .map(|r| (r.service_ms * 1000.0).round().max(1.0) as u64)
        .collect();

    let mut serve_table = Table::new(
        "Serve-path throughput vs workers (400 entities, 32 clients, sim time)",
        &["workers", "completed", "shed", "qps", "p50/ms", "p99/ms"],
    );
    let mut last_qps = 0.0;
    for workers in [1usize, 2, 4, 8] {
        let point = closed_loop(&service_us, 32, workers, serve_cfg.queue_depth);
        serve_table.row(vec![
            workers.to_string(),
            point.completed.to_string(),
            point.shed.to_string(),
            fmt2(point.throughput_qps),
            fmt2(point.p50_ms),
            fmt2(point.p99_ms),
        ]);
        assert!(
            point.throughput_qps >= last_qps,
            "throughput must not fall as workers are added"
        );
        last_qps = point.throughput_qps;
    }
    println!("{}", serve_table.render());
    println!(
        "Workers scale simulated throughput until queueing stops dominating; shed counts fall\n\
         as capacity absorbs the closed-loop burst (32 clients, queue depth {}).",
        serve_cfg.queue_depth
    );

    // Cluster scaling: throughput vs shard count at a fixed per-shard
    // worker pool. Each request's slot routes through the same
    // consistent-hash ring `multirag-cluster` serves with, so adding
    // shards spreads the replicated workload exactly as the fleet
    // would; `repro_cluster` proves the answers are unchanged while
    // this table shows the throughput side of the trade.
    let mut llm = MockLlm::new(kg_schema(&data.graph), seed);
    let slots: Vec<String> = wave
        .iter()
        .map(|r| {
            let q = &r.query;
            llm.logic_form(&q.text)
                .and_then(|lf| {
                    lf.relations
                        .first()
                        .map(|rel| multirag_cluster::slot_key(&lf.entity, rel))
                })
                .unwrap_or_else(|| multirag_cluster::slot_key(&q.entity, &q.attribute))
        })
        .collect();
    let mut cluster_table = Table::new(
        "Cluster throughput vs shard count (400 entities, 64 clients, 2 workers/shard, sim time)",
        &["shards", "completed", "shed", "qps", "p50/ms", "p99/ms"],
    );
    let mut last_qps = 0.0;
    for shards in [1u32, 2, 4, 8] {
        let ring = HashRing::new(shards, DEFAULT_VNODES, seed);
        let candidates: Vec<Vec<u32>> = slots.iter().map(|s| ring.candidates(s, 2)).collect();
        let outcome = cluster_closed_loop(
            &service_us,
            &candidates,
            200_000,
            shards,
            64,
            2,
            serve_cfg.queue_depth,
            None,
        );
        let point = &outcome.point;
        cluster_table.row(vec![
            shards.to_string(),
            point.completed.to_string(),
            point.shed.to_string(),
            fmt2(point.throughput_qps),
            fmt2(point.p50_us as f64 / 1000.0),
            fmt2(point.p99_us as f64 / 1000.0),
        ]);
        assert!(
            point.throughput_qps >= last_qps,
            "throughput must not fall as shards are added"
        );
        last_qps = point.throughput_qps;
    }
    println!("{}", cluster_table.render());
    println!(
        "Shards scale the same workload horizontally: every node answers from the shared\n\
         epoch snapshot, so the curve above is pure capacity — never answer drift."
    );
}
