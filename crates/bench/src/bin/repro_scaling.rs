//! Scaling study behind the paper's Q5 complexity claims: MLG
//! construction is `O(n log n)`-ish in triples and per-query extraction
//! through the homologous index is independent of graph size, while the
//! unaggregated scan grows linearly — the mechanism that turns the
//! Flights dataset from "NAN" to seconds in Table III.
//!
//! ```sh
//! cargo run --release -p multirag-bench --bin repro_scaling
//! ```

use multirag_bench::seed;
use multirag_core::{MklgpPipeline, MultiRagConfig, MultiSourceLineGraph};
use multirag_datasets::movies::MoviesSpec;
use multirag_datasets::spec::Scale;
use multirag_eval::table::{fmt2, Table};
use multirag_eval::timing::Stopwatch;

fn main() {
    let seed = seed();
    println!("Scaling study (seed = {seed})");
    let mut table = Table::new(
        "MLG construction and per-query extraction vs graph size",
        &[
            "entities",
            "triples",
            "mlg build/s",
            "100 queries w/ MKA (wall s)",
            "100 queries w/o MKA (wall s)",
        ],
    );
    for entities in [100usize, 400, 1000, 2500] {
        let data = MoviesSpec::at_scale(Scale {
            entities,
            queries: 100,
        })
        .generate(seed);

        let watch = Stopwatch::start();
        let mlg = MultiSourceLineGraph::build(&data.graph);
        let build_s = watch.elapsed_s();
        std::hint::black_box(mlg.stats());

        let run = |config: MultiRagConfig| {
            let mut pipeline = MklgpPipeline::new(&data.graph, config, seed);
            let watch = Stopwatch::start();
            for q in &data.queries {
                std::hint::black_box(pipeline.answer(q));
            }
            watch.elapsed_s()
        };
        let with_mka = run(MultiRagConfig::default());
        let without_mka = run(MultiRagConfig::default().without_mka());

        table.row(vec![
            entities.to_string(),
            data.graph.triple_count().to_string(),
            fmt2(build_s),
            fmt2(with_mka),
            fmt2(without_mka),
        ]);
    }
    println!("{}", table.render());
    println!(
        "With MKA the query column stays flat as the graph grows; without it the full-scan\n\
         extraction grows linearly with triples — extrapolate to web scale for the paper's NAN."
    );
}
