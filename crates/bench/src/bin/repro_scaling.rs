//! Scaling study behind the paper's Q5 complexity claims: MLG
//! construction is `O(n log n)`-ish in triples and per-query extraction
//! through the homologous index is independent of graph size, while the
//! unaggregated scan grows linearly — the mechanism that turns the
//! Flights dataset from "NAN" to seconds in Table III.
//!
//! ```sh
//! cargo run --release -p multirag-bench --bin repro_scaling
//! ```

use multirag_bench::seed;
use multirag_core::{MklgpPipeline, MultiRagConfig, MultiSourceLineGraph};
use multirag_datasets::movies::MoviesSpec;
use multirag_datasets::spec::Scale;
use multirag_eval::table::{fmt2, Table};
use multirag_eval::timing::Stopwatch;
use multirag_serve::{
    build_workload, closed_loop, serve_sequential, CacheStack, IndexWriter, ServeConfig,
};

fn main() {
    let seed = seed();
    println!("Scaling study (seed = {seed})");
    let mut table = Table::new(
        "MLG construction and per-query extraction vs graph size",
        &[
            "entities",
            "triples",
            "mlg build/s",
            "100 queries w/ MKA (wall s)",
            "100 queries w/o MKA (wall s)",
        ],
    );
    for entities in [100usize, 400, 1000, 2500] {
        let data = MoviesSpec::at_scale(Scale {
            entities,
            queries: 100,
        })
        .generate(seed);

        let watch = Stopwatch::start();
        let mlg = MultiSourceLineGraph::build(&data.graph);
        let build_s = watch.elapsed_s();
        std::hint::black_box(mlg.stats());

        let run = |config: MultiRagConfig| {
            let mut pipeline = MklgpPipeline::new(&data.graph, config, seed);
            let watch = Stopwatch::start();
            for q in &data.queries {
                std::hint::black_box(pipeline.answer(q));
            }
            watch.elapsed_s()
        };
        let with_mka = run(MultiRagConfig::default());
        let without_mka = run(MultiRagConfig::default().without_mka());

        table.row(vec![
            entities.to_string(),
            data.graph.triple_count().to_string(),
            fmt2(build_s),
            fmt2(with_mka),
            fmt2(without_mka),
        ]);
    }
    println!("{}", table.render());
    println!(
        "With MKA the query column stays flat as the graph grows; without it the full-scan\n\
         extraction grows linearly with triples — extrapolate to web scale for the paper's NAN."
    );

    // Serve-path scaling: throughput vs worker-pool size at a fixed
    // dataset size. Per-request service times come from the sequential
    // oracle in *simulated* milliseconds and feed the deterministic
    // closed loop, so this table is byte-stable for a fixed seed
    // (unlike the wall-clock columns above).
    let data = MoviesSpec::at_scale(Scale {
        entities: 400,
        queries: 100,
    })
    .generate(seed);
    let mut writer = IndexWriter::new(data.graph.clone(), MultiRagConfig::default(), seed);
    let snapshot = writer.publish();
    let serve_cfg = ServeConfig::default();
    let wave = build_workload(&data.queries, data.queries.len() * 2, seed);
    let oracle = serve_sequential(&snapshot, &CacheStack::new(), &serve_cfg, &wave);
    let service_us: Vec<u64> = oracle
        .iter()
        .map(|r| (r.service_ms * 1000.0).round().max(1.0) as u64)
        .collect();

    let mut serve_table = Table::new(
        "Serve-path throughput vs workers (400 entities, 32 clients, sim time)",
        &["workers", "completed", "shed", "qps", "p50/ms", "p99/ms"],
    );
    let mut last_qps = 0.0;
    for workers in [1usize, 2, 4, 8] {
        let point = closed_loop(&service_us, 32, workers, serve_cfg.queue_depth);
        serve_table.row(vec![
            workers.to_string(),
            point.completed.to_string(),
            point.shed.to_string(),
            fmt2(point.throughput_qps),
            fmt2(point.p50_ms),
            fmt2(point.p99_ms),
        ]);
        assert!(
            point.throughput_qps >= last_qps,
            "throughput must not fall as workers are added"
        );
        last_qps = point.throughput_qps;
    }
    println!("{}", serve_table.render());
    println!(
        "Workers scale simulated throughput until queueing stops dominating; shed counts fall\n\
         as capacity absorbs the closed-loop burst (32 clients, queue depth {}).",
        serve_cfg.queue_depth
    );
}
