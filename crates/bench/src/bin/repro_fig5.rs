//! Regenerates **Fig. 5** — robustness to multi-source data sparsity
//! (relationship masking at 30/50/70 %) and inconsistency (shuffled
//! triple increments at 30/50/70 %): MultiRAG vs ChatKBQA F1 on all
//! four datasets.
//!
//! ```sh
//! cargo run --release -p multirag-bench --bin repro_fig5
//! ```

use multirag_baselines::chatkbqa::ChatKbqa;
use multirag_bench::seed;
use multirag_core::MultiRagConfig;
use multirag_datasets::perturb;
use multirag_datasets::spec::MultiSourceDataset;
use multirag_eval::table::{fmt1, Table};
use multirag_eval::{run_fusion_method, run_multirag};

fn f1_pair(data: &MultiSourceDataset, seed: u64) -> (f64, f64) {
    let multirag = run_multirag(data, &data.graph, MultiRagConfig::default(), seed).f1;
    let mut ckbqa = ChatKbqa::new(seed);
    let chatkbqa = run_fusion_method(data, &data.graph, &mut ckbqa).f1;
    (multirag, chatkbqa)
}

fn main() {
    let seed = seed();
    println!(
        "Fig. 5: sparsity & consistency robustness (scale = {:?}, seed = {seed})",
        multirag_bench::scale()
    );
    let levels = [0.0, 0.3, 0.5, 0.7];

    let mut sparsity = Table::new(
        "Fig. 5 (a/b): relation masking — F1%",
        &["Dataset", "Mask", "MultiRAG", "ChatKBQA"],
    );
    let mut consistency = Table::new(
        "Fig. 5 (c/d): shuffled triple increments — F1%",
        &["Dataset", "Increment", "MultiRAG", "ChatKBQA"],
    );
    for data in multirag_bench::all_datasets() {
        for &level in &levels {
            let masked = if level == 0.0 {
                data.clone()
            } else {
                perturb::mask_relations(&data, level, seed)
            };
            let (mr, ck) = f1_pair(&masked, seed);
            sparsity.row(vec![
                data.name.clone(),
                format!("{:.0}%", level * 100.0),
                fmt1(mr),
                fmt1(ck),
            ]);
        }
        for &level in &levels {
            let noisy = if level == 0.0 {
                data.clone()
            } else {
                perturb::inject_conflicts(&data, level, seed)
            };
            let (mr, ck) = f1_pair(&noisy, seed);
            consistency.row(vec![
                data.name.clone(),
                format!("+{:.0}%", level * 100.0),
                fmt1(mr),
                fmt1(ck),
            ]);
        }
    }
    println!("{}", sparsity.render());
    println!("{}", consistency.render());
    println!("CSV (for plotting):\n{}", sparsity.to_csv());
    println!("{}", consistency.to_csv());
}
