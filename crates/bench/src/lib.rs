//! # multirag-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! paper. Each `repro_*` binary prints one artifact:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `repro_table1` | Table I — dataset statistics |
//! | `repro_table2` | Table II — F1 & time vs baselines/SOTA |
//! | `repro_table3` | Table III — MKA / MCC ablations |
//! | `repro_table4` | Table IV — HotpotQA / 2WikiMultiHopQA |
//! | `repro_fig5`   | Fig. 5 — sparsity & consistency robustness |
//! | `repro_fig6`   | Fig. 6 — per-source corruption sweep |
//! | `repro_fig7`   | Fig. 7 — α hyper-parameter sweep |
//! | `repro_error_analysis` | §IV Q4 — hallucination / failure taxonomy |
//! | `repro_sensitivity` | design-choice sweeps beyond α (θ, graph threshold, top-k, H, β) |
//! | `repro_scaling` | Q5 scaling study + serve-path throughput vs workers |
//! | `repro_serve` | serving harness: epochs, caches, closed-loop load (`results/serve.json`) |
//! | `repro_slo` | SLO telemetry: burn-rate alerts, log-bucket percentiles, tail attribution (`results/slo.json`) |
//! | `repro_cluster` | sharded serving: 1-node == N-node parity, merge tier, shard scaling (`results/cluster.json`) |
//!
//! Criterion microbenches (in `benches/`) cover module-level costs
//! (Q5): MLG construction, homologous matching, MI confidence, BM25 /
//! TF-IDF retrieval, the parsers and the end-to-end pipeline.
//!
//! Scale is controlled by `MULTIRAG_SCALE` (`small` | `bench` |
//! `large`, default `bench`) and `MULTIRAG_SEED` (default 42) so CI can
//! smoke-run the binaries quickly.

use multirag_baselines::chatkbqa::ChatKbqa;
use multirag_baselines::common::FusionMethod;
use multirag_baselines::cot::Cot;
use multirag_baselines::fusionquery::FusionQuery;
use multirag_baselines::ircot::IrCot;
use multirag_baselines::ltm::Ltm;
use multirag_baselines::mdqa::Mdqa;
use multirag_baselines::metarag::MetaRag;
use multirag_baselines::mv::MajorityVote;
use multirag_baselines::rqrag::RqRag;
use multirag_baselines::standard_rag::StandardRag;
use multirag_baselines::truthfinder::TruthFinder;
use multirag_datasets::spec::{MultiSourceDataset, Scale};
use multirag_datasets::{
    books::BooksSpec, flights::FlightsSpec, movies::MoviesSpec, stocks::StocksSpec,
};
use multirag_ingest::JsonValue;
use multirag_kg::{KnowledgeGraph, Object, RelationId};

/// Reads the experiment scale from `MULTIRAG_SCALE`.
pub fn scale() -> Scale {
    match std::env::var("MULTIRAG_SCALE").as_deref() {
        Ok("small") => Scale::small(),
        Ok("large") => Scale::large(),
        _ => Scale::bench(),
    }
}

/// Reads the experiment seed from `MULTIRAG_SEED`.
pub fn seed() -> u64 {
    std::env::var("MULTIRAG_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// All four benchmark datasets at the configured scale.
pub fn all_datasets() -> Vec<MultiSourceDataset> {
    let s = scale();
    let seed = seed();
    vec![
        MoviesSpec::at_scale(s).generate(seed),
        BooksSpec::at_scale(s).generate(seed),
        FlightsSpec::at_scale(s).generate(seed),
        StocksSpec::at_scale(s).generate(seed),
    ]
}

/// Replicates a graph `factor` times: relations and sources are shared
/// (ids map 1:1), entities of replica `r > 0` are renamed
/// `name#rep<r>` so their slots stay disjoint, and every triple is
/// re-added per replica with subject/object entities remapped. The
/// result has `factor`× the homologous groups of the original, each
/// group identical in shape to its template — synthetic slot scale
/// without changing per-slot statistics. Shared by `repro_perf` and
/// `repro_index` so both harnesses scale workloads identically.
pub fn replicate_graph(graph: &KnowledgeGraph, factor: usize) -> KnowledgeGraph {
    let mut out =
        KnowledgeGraph::with_capacity(graph.entity_count() * factor, graph.triple_count() * factor);
    for r in 0..graph.relation_count() {
        out.add_relation(graph.relation_name(RelationId(r as u32)));
    }
    for s in graph.source_ids() {
        let rec = graph.source(s);
        out.add_source(
            graph.resolve(rec.name),
            graph.resolve(rec.format),
            graph.resolve(rec.domain),
        );
    }
    for rep in 0..factor {
        let mut entities = Vec::with_capacity(graph.entity_count());
        for e in graph.entity_ids() {
            let name = graph.entity_name(e);
            let scoped = if rep == 0 {
                name.to_string()
            } else {
                format!("{name}#rep{rep}")
            };
            entities.push(out.add_entity(&scoped, graph.entity_domain(e)));
        }
        for (_, t) in graph.iter_triples() {
            // Entity ids are dense and every subject/object was just
            // re-added above, so the lookups always hit; skipping (not
            // panicking) keeps the library panic-free by construction.
            let Some(subject) = entities.get(t.subject.index()).copied() else {
                continue;
            };
            let object = match &t.object {
                Object::Entity(e) => match entities.get(e.index()).copied() {
                    Some(mapped) => Object::Entity(mapped),
                    None => continue,
                },
                Object::Literal(v) => Object::Literal(v.clone()),
            };
            out.add_triple(subject, t.predicate, object, t.source, t.chunk);
        }
    }
    out
}

/// The Table II source-format combos per dataset (J=json, C=csv,
/// X=xml, K=kg).
pub fn source_combos(dataset: &str) -> Vec<Vec<&'static str>> {
    match dataset {
        "movies" => vec![
            vec!["json", "kg"],
            vec!["json", "csv"],
            vec!["kg", "csv"],
            vec!["json", "kg", "csv"],
        ],
        "books" => vec![
            vec!["json", "csv"],
            vec!["json", "xml"],
            vec!["csv", "xml"],
            vec!["json", "csv", "xml"],
        ],
        "flights" | "stocks" => vec![vec!["csv", "json"]],
        other => panic!("unknown dataset {other}"),
    }
}

/// Renders a combo as the paper's letter code ("J/K/C").
pub fn combo_code(combo: &[&str]) -> String {
    combo
        .iter()
        .map(|f| multirag_datasets::stats::format_letter(f))
        .collect::<Vec<_>>()
        .join("/")
}

/// The Table II baseline roster (data-fusion methods).
pub fn fusion_baselines(seed: u64) -> Vec<Box<dyn FusionMethod>> {
    vec![
        Box::new(MajorityVote),
        Box::new(TruthFinder::default()),
        Box::new(Ltm::default()),
        Box::new(Cot::new(seed)),
        Box::new(StandardRag::new(seed)),
    ]
}

/// Structural outline of a JSON document: object keys and value types,
/// with arrays collapsed to their distinct element shapes. Two
/// documents with the same outline share a schema even when every value
/// differs, so the outline is the drift detector the
/// `MULTIRAG_CHECK_SCHEMA=1` gate compares against
/// `golden/obs_schema.txt`.
pub fn schema_outline(json: &str) -> Result<String, String> {
    let doc = multirag_ingest::json::parse(json).map_err(|e| e.to_string())?;
    Ok(outline(&doc))
}

fn outline(v: &JsonValue) -> String {
    match v {
        JsonValue::Null => "null".to_string(),
        JsonValue::Bool(_) => "bool".to_string(),
        JsonValue::Int(_) | JsonValue::Float(_) => "number".to_string(),
        JsonValue::Str(_) => "string".to_string(),
        JsonValue::Array(items) => {
            let mut shapes: Vec<String> = Vec::new();
            for item in items {
                let shape = outline(item);
                if !shapes.contains(&shape) {
                    shapes.push(shape);
                }
            }
            format!("[{}]", shapes.join("|"))
        }
        JsonValue::Object(members) => {
            let body: Vec<String> = members
                .iter()
                .map(|(k, v)| format!("{k}:{}", outline(v)))
                .collect();
            format!("{{{}}}", body.join(","))
        }
    }
}

/// The checked-in golden outline for one `[section]` of
/// `golden/obs_schema.txt` (one outline per section, `#` comments and
/// blank lines ignored). The goldens are generated at the CI smoke
/// configuration: `MULTIRAG_SCALE=small`, seed 42.
pub fn golden_schema(section: &str) -> Option<&'static str> {
    let golden = include_str!("../golden/obs_schema.txt");
    let mut in_section = false;
    for line in golden.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            in_section = name == section;
        } else if in_section {
            return Some(line);
        }
    }
    None
}

/// When `MULTIRAG_CHECK_SCHEMA=1`, asserts that `json`'s outline
/// matches the checked-in golden for `section` — the repro binaries
/// call this on their `results/obs_*.json` artifacts so CI fails on
/// schema drift. A no-op without the env var.
pub fn check_schema(section: &str, json: &str) {
    if std::env::var("MULTIRAG_CHECK_SCHEMA").as_deref() != Ok("1") {
        return;
    }
    let actual =
        schema_outline(json).unwrap_or_else(|e| panic!("[{section}] emitted invalid JSON: {e}"));
    let golden = golden_schema(section).unwrap_or_else(|| {
        panic!("no golden schema for [{section}] in crates/bench/golden/obs_schema.txt")
    });
    assert_eq!(
        actual, golden,
        "[{section}] schema drift vs golden/obs_schema.txt — regenerate the golden if intentional"
    );
    println!("schema check [{section}]: ok");
}

/// The Table II SOTA roster.
pub fn sota_methods(seed: u64) -> Vec<Box<dyn FusionMethod>> {
    vec![
        Box::new(IrCot::new(seed)),
        Box::new(ChatKbqa::new(seed)),
        Box::new(Mdqa::new(seed)),
        Box::new(FusionQuery::default()),
        Box::new(RqRag::new(seed)),
        Box::new(MetaRag::new(seed)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combos_match_table_2() {
        assert_eq!(source_combos("movies").len(), 4);
        assert_eq!(source_combos("books").len(), 4);
        assert_eq!(source_combos("flights").len(), 1);
        assert_eq!(combo_code(&["json", "kg", "csv"]), "J/K/C");
    }

    #[test]
    fn rosters_are_complete() {
        assert_eq!(fusion_baselines(1).len(), 5);
        assert_eq!(sota_methods(1).len(), 6);
        let names: Vec<&str> = sota_methods(1).iter().map(|m| m.name()).collect();
        assert!(names.contains(&"ChatKBQA"));
        assert!(names.contains(&"FusionQuery"));
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        source_combos("nope");
    }

    #[test]
    fn replicate_scales_slots_without_changing_shape() {
        let data = MoviesSpec::small().generate(42);
        let big = replicate_graph(&data.graph, 4);
        assert_eq!(big.triple_count(), data.graph.triple_count() * 4);
        assert_eq!(big.entity_count(), data.graph.entity_count() * 4);
        assert_eq!(big.relation_count(), data.graph.relation_count());
        assert_eq!(big.source_count(), data.graph.source_count());
        // Factor 1 is an identity replication.
        let same = replicate_graph(&data.graph, 1);
        assert_eq!(same.triple_count(), data.graph.triple_count());
    }

    #[test]
    fn outline_collapses_values_to_shapes() {
        let json = r#"{"seed":42,"name":"movies","f1":93.5,"ok":true,"none":null}"#;
        assert_eq!(
            schema_outline(json).unwrap(),
            "{seed:number,name:string,f1:number,ok:bool,none:null}"
        );
    }

    #[test]
    fn outline_dedups_array_element_shapes() {
        assert_eq!(schema_outline("[1,2,3]").unwrap(), "[number]");
        assert_eq!(schema_outline("[]").unwrap(), "[]");
        assert_eq!(schema_outline(r#"[1,"a",2]"#).unwrap(), "[number|string]");
        assert_eq!(
            schema_outline(r#"[{"a":1},{"a":2.5}]"#).unwrap(),
            "[{a:number}]"
        );
    }

    #[test]
    fn outline_is_value_independent() {
        let a = schema_outline(r#"{"curves":[{"name":"x","points":[{"f1":1.0}]}]}"#).unwrap();
        let b = schema_outline(r#"{"curves":[{"name":"y","points":[{"f1":93.25}]}]}"#).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn outline_rejects_invalid_json() {
        assert!(schema_outline("{nope").is_err());
    }

    #[test]
    fn serve_golden_enumerates_every_abstain_reason() {
        let golden = golden_schema("serve").expect("serve golden exists");
        let (_, rest) = golden
            .split_once("abstain:{")
            .expect("serve golden has an abstain tally object");
        let (body, _) = rest.split_once('}').expect("abstain object closes");
        let keys: Vec<&str> = body
            .split(',')
            .map(|kv| kv.split_once(':').expect("key:type pair").0)
            .collect();
        assert_eq!(
            keys,
            multirag_core::AbstainReason::ALL_SLUGS,
            "the serve schema golden must enumerate exactly the abstain \
             reasons, in declaration order — adding a reason is a reviewed \
             schema change"
        );
    }

    #[test]
    fn golden_sections_exist_and_parse() {
        for section in [
            "obs_profile",
            "obs_chaos",
            "serve",
            "loop",
            "slo",
            "cluster",
            "index",
        ] {
            let outline = golden_schema(section)
                .unwrap_or_else(|| panic!("missing golden section [{section}]"));
            assert!(
                outline.starts_with('{'),
                "[{section}] golden should be an object outline"
            );
        }
        assert!(golden_schema("no_such_section").is_none());
    }
}
