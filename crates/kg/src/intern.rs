//! String interning.
//!
//! Entity names, relation names, attribute names and string literal
//! values are interned into dense [`Symbol`] ids so the rest of the
//! system can key maps and compare identities with `u32`s instead of
//! strings. Interning is append-only; symbols are never invalidated.

use crate::hash::FxHashMap;
use std::fmt;

/// A dense handle to an interned string.
///
/// Symbols are only meaningful relative to the [`Interner`] that created
/// them. They order by insertion order, which the datasets crate relies
/// on for deterministic iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The raw index of the symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// An append-only string interner.
///
/// # Examples
///
/// ```
/// use multirag_kg::intern::Interner;
///
/// let mut interner = Interner::new();
/// let a = interner.intern("CA981");
/// let b = interner.intern("CA981");
/// assert_eq!(a, b);
/// assert_eq!(interner.resolve(a), "CA981");
/// ```
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: Vec<Box<str>>,
    lookup: FxHashMap<Box<str>, Symbol>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an interner with capacity for `capacity` distinct strings.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            strings: Vec::with_capacity(capacity),
            lookup: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
        }
    }

    /// Interns `s`, returning its symbol. Re-interning an existing
    /// string returns the original symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.lookup.get(s) {
            return sym;
        }
        let sym = Symbol(
            u32::try_from(self.strings.len())
                .expect("interner overflow: >u32::MAX distinct strings"),
        );
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.lookup.insert(boxed, sym);
        sym
    }

    /// Looks up a string without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.lookup.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Resolves a symbol, returning `None` for foreign symbols.
    pub fn try_resolve(&self, sym: Symbol) -> Option<&str> {
        self.strings.get(sym.index()).map(|s| &**s)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates `(Symbol, &str)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), &**s))
    }
}

/// A canonical-key interner for claim values.
///
/// The confidence machinery compares claims by their
/// [`Value::canonical_key`] equivalence class. Building that `String`
/// once per *comparison* dominates the MCC hot path, so this wrapper
/// interns keys once and hands out [`Symbol`]s: symbol equality is
/// exactly canonical-key equality for symbols from the same
/// `KeyInterner`. [`KeyInterner::for_graph`] additionally precomputes
/// the key of every triple's **standardized** object value, so per-slot
/// profile construction is a table lookup instead of a string build.
///
/// A single scratch buffer is reused across [`KeyInterner::key_of`]
/// calls; hit/miss counters feed the `claim_key_interner_*` metrics.
#[derive(Debug, Default, Clone)]
pub struct KeyInterner {
    keys: Interner,
    /// `triple_keys[tid]` — key of triple `tid`'s standardized value
    /// (empty unless built with [`KeyInterner::for_graph`]).
    triple_keys: Vec<Symbol>,
    scratch: String,
    hits: u64,
    misses: u64,
}

impl KeyInterner {
    /// An empty interner with no per-triple cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the interner for a graph, precomputing the canonical key
    /// of every triple's standardized object value ([`Value::Str`] of
    /// the entity name for entity objects — the same form the
    /// confidence layer compares).
    pub fn for_graph(kg: &crate::graph::KnowledgeGraph) -> Self {
        let mut this = Self {
            keys: Interner::with_capacity(kg.triple_count() / 2 + 1),
            triple_keys: Vec::with_capacity(kg.triple_count()),
            ..Self::default()
        };
        for (tid, _) in kg.iter_triples() {
            let value = kg.triple_value(tid).standardized();
            let sym = this.key_of(&value);
            this.triple_keys.push(sym);
        }
        this
    }

    /// Interns `value`'s canonical key, reusing the scratch buffer.
    pub fn key_of(&mut self, value: &crate::value::Value) -> Symbol {
        self.scratch.clear();
        value.write_canonical_key(&mut self.scratch);
        let before = self.keys.len();
        let sym = self.keys.intern(&self.scratch);
        if self.keys.len() == before {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        sym
    }

    /// The precomputed key of a triple's standardized value, if this
    /// interner was built with [`KeyInterner::for_graph`] over a graph
    /// containing `tid`. Cache uses count as interner hits.
    pub fn triple_key(&mut self, tid: crate::graph::TripleId) -> Option<Symbol> {
        let sym = self.triple_keys.get(tid.index()).copied();
        if sym.is_some() {
            self.hits += 1;
        }
        sym
    }

    /// Resolves a key symbol back to its canonical-key string.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.keys.resolve(sym)
    }

    /// Number of distinct interned keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no keys have been interned.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Lookups that found an existing key (including triple-cache uses).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that interned a new key.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut interner = Interner::new();
        let a = interner.intern("alpha");
        let b = interner.intern("alpha");
        assert_eq!(a, b);
        assert_eq!(interner.len(), 1);
    }

    #[test]
    fn symbols_are_dense_and_ordered() {
        let mut interner = Interner::new();
        let a = interner.intern("a");
        let b = interner.intern("b");
        let c = interner.intern("c");
        assert_eq!(a, Symbol(0));
        assert_eq!(b, Symbol(1));
        assert_eq!(c, Symbol(2));
        assert!(a < b && b < c);
    }

    #[test]
    fn resolve_round_trips() {
        let mut interner = Interner::new();
        let words = ["CA981", "Beijing", "New York", "typhoon", ""];
        let syms: Vec<Symbol> = words.iter().map(|w| interner.intern(w)).collect();
        for (w, s) in words.iter().zip(&syms) {
            assert_eq!(interner.resolve(*s), *w);
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut interner = Interner::new();
        assert_eq!(interner.get("missing"), None);
        assert_eq!(interner.len(), 0);
        let s = interner.intern("present");
        assert_eq!(interner.get("present"), Some(s));
    }

    #[test]
    fn try_resolve_rejects_foreign_symbols() {
        let interner = Interner::new();
        assert_eq!(interner.try_resolve(Symbol(99)), None);
    }

    #[test]
    fn iter_yields_insertion_order() {
        let mut interner = Interner::new();
        interner.intern("x");
        interner.intern("y");
        let collected: Vec<(Symbol, String)> =
            interner.iter().map(|(s, w)| (s, w.to_string())).collect();
        assert_eq!(
            collected,
            vec![(Symbol(0), "x".to_string()), (Symbol(1), "y".to_string())]
        );
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut interner = Interner::with_capacity(16);
        assert!(interner.is_empty());
        interner.intern("z");
        assert!(!interner.is_empty());
    }

    #[test]
    fn empty_string_is_a_valid_key() {
        let mut interner = Interner::new();
        let e = interner.intern("");
        assert_eq!(interner.resolve(e), "");
        assert_eq!(interner.intern(""), e);
    }

    #[test]
    fn key_interner_symbols_match_canonical_keys() {
        use crate::value::Value;
        let mut keys = KeyInterner::new();
        let a = keys.key_of(&Value::from("Delayed "));
        let b = keys.key_of(&Value::from("delayed"));
        let c = keys.key_of(&Value::Int(3));
        let d = keys.key_of(&Value::Float(3.0));
        assert_eq!(a, b, "same equivalence class, same symbol");
        assert_eq!(c, d, "3 and 3.0 collapse");
        assert_ne!(a, c);
        assert_eq!(keys.resolve(a), Value::from("delayed").canonical_key());
        assert_eq!(keys.hits(), 2);
        assert_eq!(keys.misses(), 2);
    }

    #[test]
    fn key_interner_for_graph_precomputes_triple_keys() {
        use crate::graph::{KnowledgeGraph, TripleId};
        use crate::value::Value;
        let mut kg = KnowledgeGraph::new();
        let flight = kg.add_entity("CA981", "flights");
        let status = kg.add_relation("status");
        let s0 = kg.add_source("s0", "json", "flights");
        let s1 = kg.add_source("s1", "json", "flights");
        let t0 = kg.add_triple(flight, status, Value::from("Delayed"), s0, 0);
        let t1 = kg.add_triple(flight, status, Value::from("delayed"), s1, 0);
        let mut keys = KeyInterner::for_graph(&kg);
        let k0 = keys.triple_key(t0).expect("cached");
        let k1 = keys.triple_key(t1).expect("cached");
        assert_eq!(k0, k1, "standardized keys collapse surface variants");
        assert_eq!(
            keys.resolve(k0),
            Value::from("Delayed").standardized().canonical_key()
        );
        assert_eq!(keys.triple_key(TripleId(99)), None, "foreign triple");
    }
}
