//! The literal value model shared across the workspace.
//!
//! Multi-source data carries heterogeneous literals (strings, numbers,
//! booleans, lists — e.g. the multiple directors of a movie). [`Value`]
//! is the normalized representation produced by the ingest adapters and
//! stored as triple objects. The confidence machinery buckets values into
//! discrete categories via [`Value::canonical_key`], so `Value`
//! implements `Eq`/`Hash` with float canonicalization (NaN collapses to a
//! single bucket, `-0.0 == 0.0`).

use std::fmt;

/// A literal value attached to a triple object or record field.
#[derive(Debug, Clone)]
pub enum Value {
    /// Absent / null value.
    Null,
    /// Boolean literal.
    Bool(bool),
    /// 64-bit signed integer literal.
    Int(i64),
    /// 64-bit float literal.
    Float(f64),
    /// UTF-8 string literal.
    Str(String),
    /// Ordered list of values (e.g. multiple authors).
    List(Vec<Value>),
}

impl Value {
    /// Returns a string form that identifies the value's equivalence
    /// class. Two values with the same canonical key are treated as the
    /// same claim by the consistency machinery.
    ///
    /// Strings are trimmed and lower-cased; integral floats collapse to
    /// their integer form so `3` and `3.0` agree across sources.
    pub fn canonical_key(&self) -> String {
        let mut out = String::new();
        self.write_canonical_key(&mut out);
        out
    }

    /// Appends the canonical key to `out` without allocating a fresh
    /// `String` per call. Hot paths (the claim-key interner) hold one
    /// scratch buffer and reuse it across every triple; the bytes
    /// produced are identical to [`Value::canonical_key`].
    pub fn write_canonical_key(&self, out: &mut String) {
        use std::fmt::Write as _;
        // Writing to a `String` cannot fail; the `let _ =` keeps the
        // signature infallible.
        match self {
            Value::Null => out.push_str("\u{0}null"),
            Value::Bool(b) => {
                let _ = write!(out, "\u{0}b:{b}");
            }
            Value::Int(i) => {
                let _ = write!(out, "\u{0}n:{i}");
            }
            Value::Float(f) => {
                if f.is_nan() {
                    out.push_str("\u{0}n:nan");
                } else if f.fract() == 0.0 && f.abs() < 9.0e15 {
                    let _ = write!(out, "\u{0}n:{}", *f as i64);
                } else {
                    let _ = write!(out, "\u{0}n:{f}");
                }
            }
            Value::Str(s) => {
                out.push_str("\u{0}s:");
                let trimmed = s.trim();
                if trimmed.is_ascii() && !trimmed.bytes().any(|b| b.is_ascii_uppercase()) {
                    // Already lower-case ASCII: skip the `to_lowercase`
                    // String (the common case for standardized values).
                    out.push_str(trimmed);
                } else {
                    out.push_str(&trimmed.to_lowercase());
                }
            }
            Value::List(items) => {
                // Member keys must sort lexicographically, so the list
                // form still materializes per-member strings.
                let mut keys: Vec<String> = items.iter().map(Value::canonical_key).collect();
                keys.sort();
                out.push_str("\u{0}l:[");
                for (i, k) in keys.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(k);
                }
                out.push(']');
            }
        }
    }

    /// Whether the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrow the string content, if this is a string literal.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view of the value (ints widen to floats).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view of the value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view of the value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// List view of the value.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// Flattens the value into its scalar claims: a list yields each
    /// element, everything else yields itself. Used when a single source
    /// field asserts several answers (a movie with three directors).
    pub fn scalar_claims(&self) -> Vec<Value> {
        match self {
            Value::List(items) => items.iter().flat_map(Value::scalar_claims).collect(),
            other => vec![other.clone()],
        }
    }

    /// A representation-insensitive answer key: lowercase alphanumeric
    /// tokens, sorted. `"Mann, Michael"`, `"MICHAEL MANN"` and
    /// `"Michael  Mann."` all share one answer key — the equivalence
    /// evaluation uses, and the one MultiRAG's entity standardization
    /// (the `std.py` analogue) restores before voting. Exact-match
    /// fusion methods that bucket by [`Value::canonical_key`] fragment
    /// across these variants; that is the multi-source representation
    /// diversity the paper's Challenge 2 describes.
    pub fn answer_key(&self) -> String {
        match self {
            Value::Str(s) => {
                let mut tokens: Vec<String> = s
                    .split(|c: char| !c.is_alphanumeric())
                    .filter(|t| !t.is_empty())
                    .map(str::to_lowercase)
                    .collect();
                tokens.sort();
                format!("\u{0}s:{}", tokens.join(" "))
            }
            Value::List(items) => {
                let mut keys: Vec<String> = items.iter().map(Value::answer_key).collect();
                keys.sort();
                format!("\u{0}l:[{}]", keys.join(","))
            }
            other => other.canonical_key(),
        }
    }

    /// The standardized rendering of the value: string content with
    /// tokens in sorted order (the deterministic normal form the
    /// `std.py` analogue maps every surface variant onto).
    pub fn standardized(&self) -> Value {
        match self {
            Value::Str(s) => {
                let mut tokens: Vec<String> = s
                    .split(|c: char| !c.is_alphanumeric())
                    .filter(|t| !t.is_empty())
                    .map(str::to_lowercase)
                    .collect();
                tokens.sort();
                Value::Str(tokens.join(" "))
            }
            Value::List(items) => Value::List(items.iter().map(Value::standardized).collect()),
            other => other.clone(),
        }
    }

    /// A rough, deterministic "semantic" distance in `[0, 1]` between two
    /// values: 0 for identical claims, 1 for unrelated ones. Numeric
    /// values compare by relative error; strings by normalized edit
    /// similarity on their canonical forms.
    pub fn distance(&self, other: &Value) -> f64 {
        if self.canonical_key() == other.canonical_key() {
            return 0.0;
        }
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => {
                let denom = a.abs().max(b.abs()).max(1e-12);
                ((a - b).abs() / denom).min(1.0)
            }
            _ => {
                let a = content_form(self);
                let b = content_form(other);
                1.0 - jaccard_bigrams(&a, &b)
            }
        }
    }
}

/// Content view for textual distance: strings compare on their trimmed
/// lowercase content (no canonical-key tag prefix, which would make all
/// same-typed values look partially similar).
fn content_form(v: &Value) -> String {
    match v {
        Value::Str(s) => s.trim().to_lowercase(),
        other => other.canonical_key(),
    }
}

/// Jaccard similarity of the byte-bigram sets of two strings. Equal
/// strings score 1; strings too short to have bigrams score 0 against
/// anything unequal.
fn jaccard_bigrams(a: &str, b: &str) -> f64 {
    if a == b {
        return 1.0;
    }
    let bigrams = |s: &str| -> crate::hash::FxHashSet<[u8; 2]> {
        s.as_bytes().windows(2).map(|w| [w[0], w[1]]).collect()
    };
    let sa = bigrams(a);
    let sb = bigrams(b);
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    let union = (sa.len() + sb.len()) as f64 - inter;
    if union == 0.0 {
        0.0
    } else {
        inter / union
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => canonical_bits(*a) == canonical_bits(*b),
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                b.fract() == 0.0 && *a as f64 == *b
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::List(a), Value::List(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash through the canonical key so Eq/Hash stay consistent
        // (Int(3) == Float(3.0) must hash identically).
        self.canonical_key().hash(state);
    }
}

fn canonical_bits(f: f64) -> u64 {
    if f.is_nan() {
        f64::NAN.to_bits()
    } else if f == 0.0 {
        0u64
    } else {
        f.to_bits()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::List(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn canonical_key_normalizes_strings() {
        assert_eq!(
            Value::from("  Typhoon ").canonical_key(),
            Value::from("typhoon").canonical_key()
        );
        assert_ne!(
            Value::from("typhoon").canonical_key(),
            Value::from("storm").canonical_key()
        );
    }

    #[test]
    fn canonical_key_unifies_integral_floats_and_ints() {
        assert_eq!(
            Value::Int(3).canonical_key(),
            Value::Float(3.0).canonical_key()
        );
        assert_ne!(
            Value::Int(3).canonical_key(),
            Value::Float(3.5).canonical_key()
        );
    }

    #[test]
    fn eq_and_hash_are_consistent_for_mixed_numerics() {
        let a = Value::Int(3);
        let b = Value::Float(3.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn nan_collapses_to_one_bucket() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(-f64::NAN);
        assert_eq!(a, b);
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn zero_signs_agree() {
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
    }

    #[test]
    fn list_canonical_key_is_order_insensitive() {
        let a = Value::from(vec!["alice", "bob"]);
        let b = Value::from(vec!["bob", "alice"]);
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn scalar_claims_flattens_nested_lists() {
        let v = Value::List(vec![
            Value::from("a"),
            Value::List(vec![Value::from("b"), Value::from("c")]),
        ]);
        let claims = v.scalar_claims();
        assert_eq!(claims.len(), 3);
        assert_eq!(claims[2], Value::from("c"));
    }

    #[test]
    fn distance_is_zero_for_equal_claims() {
        assert_eq!(
            Value::from("delayed").distance(&Value::from("Delayed ")),
            0.0
        );
        assert_eq!(Value::Int(10).distance(&Value::Float(10.0)), 0.0);
    }

    #[test]
    fn numeric_distance_scales_with_relative_error() {
        let d_small = Value::Float(100.0).distance(&Value::Float(101.0));
        let d_large = Value::Float(100.0).distance(&Value::Float(200.0));
        assert!(d_small < d_large);
        assert!(d_large <= 1.0);
    }

    #[test]
    fn string_distance_orders_by_similarity() {
        let base = Value::from("typhoon in beijing");
        let near = Value::from("typhoon in Beijing");
        let far = Value::from("clear skies");
        assert!(base.distance(&near) < base.distance(&far));
    }

    #[test]
    fn accessors_return_expected_variants() {
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(5i64).as_i64(), Some(5));
        assert_eq!(Value::from(5i64).as_f64(), Some(5.0));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert!(Value::Null.is_null());
        assert!(Value::from("x").as_bool().is_none());
        let list = Value::from(vec![1i64, 2]);
        assert_eq!(list.as_list().unwrap().len(), 2);
    }

    #[test]
    fn display_renders_lists() {
        let v = Value::from(vec!["a", "b"]);
        assert_eq!(v.to_string(), "[a, b]");
        assert_eq!(Value::Null.to_string(), "null");
    }
}
