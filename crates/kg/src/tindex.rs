//! Tiered retrieval index: a columnar, arena-backed triple store with
//! bitset adjacency (DESIGN.md §5.15).
//!
//! MultiRAG's entity → attribute-slot → claim hierarchy is implicit in
//! the `(subject, predicate)` slot structure of the knowledge graph;
//! this module materializes it as three explicit node tiers so
//! logic-form queries, homologous candidate selection and line-graph
//! neighborhood expansion resolve by *tier descent* instead of linear
//! walks:
//!
//! * **tier 0 — entities**: each entity owns a contiguous span of
//!   slots (`entity_slot_offsets`), contiguous because slots are
//!   sorted by `(entity, relation)`;
//! * **tier 1 — attribute slots**: struct-of-arrays columns
//!   (`slot_entities`, `slot_relations`, per-slot distinct-source
//!   counts) plus a CSR arena of claim postings per slot;
//! * **tier 2 — claims**: the columnar triple store (subject /
//!   predicate / object-entity / source columns over dense ids) plus
//!   per-relation claim [`Bitset`]s — the compact adjacency that turns
//!   "claims of entity `e` under relation `r`" into a probe of `e`'s
//!   claim span against `r`'s bitset.
//!
//! Everything is built from sorted dense ids in flat arenas: no
//! per-triple allocation after construction, no hash-order iteration
//! anywhere, and every query iterates ascending ids — the determinism
//! argument is that each array is a pure function of the insertion
//! order the graph already fixes. The old linear scans are retained by
//! callers as selectable reference oracles; `repro_index` gates the
//! two paths on outcome-digest equality.

use crate::graph::{KnowledgeGraph, TripleId};
use crate::triple::{EntityId, Object, RelationId, SourceId};

/// Sentinel for "no entity" in the object-entity column (literals).
const NO_ENTITY: u32 = u32::MAX;

/// A fixed-width bitset over dense `u32` ids: `u64` blocks,
/// intersection via word-wise AND, iteration in ascending id order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitset {
    words: Vec<u64>,
}

impl Bitset {
    /// An empty bitset sized for ids `0..bits`.
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: vec![0u64; bits.div_ceil(64)],
        }
    }

    /// Sets `bit`, growing the block array as needed. Returns whether
    /// the bit was newly set.
    pub fn insert(&mut self, bit: u32) -> bool {
        let word = (bit / 64) as usize;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << (bit % 64);
        match self.words.get_mut(word) {
            Some(w) => {
                let fresh = *w & mask == 0;
                *w |= mask;
                fresh
            }
            None => false,
        }
    }

    /// Whether `bit` is set. Out-of-range ids are simply absent.
    pub fn contains(&self, bit: u32) -> bool {
        self.words
            .get((bit / 64) as usize)
            .is_some_and(|w| w & (1u64 << (bit % 64)) != 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of `u64` blocks backing the set.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// The intersection `self AND other`, counting one op per word
    /// pair visited into `ops` (the cost model `repro_index` reports).
    pub fn intersect(&self, other: &Bitset, ops: &mut u64) -> Bitset {
        let words: Vec<u64> = self
            .words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| {
                *ops += 1;
                a & b
            })
            .collect();
        Bitset { words }
    }

    /// Whether `self AND other` is empty, without materializing it.
    pub fn is_disjoint(&self, other: &Bitset, ops: &mut u64) -> bool {
        self.words.iter().zip(other.words.iter()).all(|(a, b)| {
            *ops += 1;
            a & b == 0
        })
    }

    /// In-place union (used to prove shard sub-index coverage).
    pub fn union_with(&mut self, other: &Bitset) {
        if self.words.len() < other.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// Set bits in ascending order — the sorted-id iteration every
    /// deterministic consumer relies on.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let base = (w as u32) * 64;
            std::iter::from_fn({
                let mut rest = word;
                move || {
                    if rest == 0 {
                        None
                    } else {
                        let tz = rest.trailing_zeros();
                        rest &= rest - 1;
                        Some(base + tz)
                    }
                }
            })
        })
    }
}

/// Dense id of one attribute slot (tier 1), assigned in ascending
/// `(entity, relation)` order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(pub u32);

impl SlotId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Monotonic descent-cost counters. Plain integers (not atomics) by
/// design: each pipeline owns its own counter block, so flushing
/// deltas into a metrics registry can never double-count, and the
/// values are a pure function of the query stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TindexCounters {
    /// Tier descents performed (entity → slot → claims resolutions).
    pub tier_descents: u64,
    /// Bitset word/membership AND operations spent in descents.
    pub bitset_and_ops: u64,
    /// Candidate claims pruned relative to the entity's full claim
    /// span (what a per-entity scan would have examined).
    pub candidates_pruned: u64,
}

impl TindexCounters {
    /// Counter deltas since `earlier` (for registry flushes).
    pub fn since(self, earlier: TindexCounters) -> TindexCounters {
        TindexCounters {
            tier_descents: self.tier_descents - earlier.tier_descents,
            bitset_and_ops: self.bitset_and_ops - earlier.bitset_and_ops,
            candidates_pruned: self.candidates_pruned - earlier.candidates_pruned,
        }
    }
}

/// Index shape summary (for bench tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TindexStats {
    /// Tier-0 entity count.
    pub entities: usize,
    /// Tier-1 slot count.
    pub slots: usize,
    /// Tier-2 claim count.
    pub claims: usize,
    /// Relations with a claim bitset.
    pub relations: usize,
    /// Total `u64` blocks across the relation bitsets.
    pub bitset_words: usize,
}

/// The three-tier index. All arrays are flat arenas over dense ids;
/// see the module docs for the tier layout.
#[derive(Debug, Clone, Default)]
pub struct TieredIndex {
    // -- tier 2: columnar claim store (struct of arrays) --
    subjects: Vec<EntityId>,
    predicates: Vec<RelationId>,
    /// Object entity id, or [`NO_ENTITY`] for literal objects.
    object_entities: Vec<u32>,
    sources: Vec<SourceId>,
    // -- tier 1: slots sorted by (entity, relation) --
    slot_entities: Vec<EntityId>,
    slot_relations: Vec<RelationId>,
    /// CSR offsets into `slot_claims` (`slots + 1` entries).
    slot_offsets: Vec<u32>,
    /// Claim postings arena: ascending [`TripleId`] within each slot.
    slot_claims: Vec<TripleId>,
    /// Distinct sources asserting each slot.
    slot_sources: Vec<u32>,
    /// Claim → owning slot.
    claim_slot: Vec<u32>,
    // -- tier 0: entity spans over the slot array --
    /// CSR offsets into the slot array (`entities + 1` entries).
    entity_slot_offsets: Vec<u32>,
    // -- adjacency --
    /// Per-relation claim bitsets (tier-1 → tier-2 adjacency).
    relation_bits: Vec<Bitset>,
    /// CSR offsets of per-entity touching-claim spans.
    touch_offsets: Vec<u32>,
    /// Claims touching each entity (subject or object), ascending.
    touch_claims: Vec<TripleId>,
}

impl TieredIndex {
    /// Builds the index from a graph. Construction sorts the claim
    /// keys once (`O(n log n)`, same bound as homologous matching) and
    /// fills every arena with counting passes — sorted vectors only,
    /// no hash-order iteration.
    pub fn build(kg: &KnowledgeGraph) -> Self {
        let n = kg.triple_count();
        let entities = kg.entity_count();
        let relations = kg.relation_count();

        let mut subjects = Vec::with_capacity(n);
        let mut predicates = Vec::with_capacity(n);
        let mut object_entities = Vec::with_capacity(n);
        let mut sources = Vec::with_capacity(n);
        for (_, t) in kg.iter_triples() {
            subjects.push(t.subject);
            predicates.push(t.predicate);
            object_entities.push(match &t.object {
                Object::Entity(e) => e.0,
                Object::Literal(_) => NO_ENTITY,
            });
            sources.push(t.source);
        }

        // Tier-1 slots: sort claims by (entity, relation, id). Ids
        // ascend within each slot, so slot postings match the graph's
        // own `slot_triples` insertion order exactly.
        let mut keyed: Vec<(EntityId, RelationId, TripleId)> = kg
            .iter_triples()
            .map(|(tid, t)| (t.subject, t.predicate, tid))
            .collect();
        keyed.sort_unstable();

        let mut slot_entities = Vec::new();
        let mut slot_relations = Vec::new();
        let mut slot_offsets = vec![0u32];
        let mut slot_claims = Vec::with_capacity(n);
        let mut slot_sources = Vec::new();
        let mut claim_slot = vec![0u32; n];
        let mut scratch_sources: Vec<SourceId> = Vec::new();
        let mut i = 0usize;
        while let Some(&(entity, relation, _)) = keyed.get(i) {
            let mut j = i;
            while keyed
                .get(j)
                .is_some_and(|&(e, r, _)| e == entity && r == relation)
            {
                j += 1;
            }
            let slot = slot_entities.len() as u32;
            slot_entities.push(entity);
            slot_relations.push(relation);
            scratch_sources.clear();
            for &(_, _, tid) in keyed.get(i..j).unwrap_or(&[]) {
                slot_claims.push(tid);
                if let Some(entry) = claim_slot.get_mut(tid.index()) {
                    *entry = slot;
                }
                if let Some(&source) = sources.get(tid.index()) {
                    scratch_sources.push(source);
                }
            }
            scratch_sources.sort_unstable();
            scratch_sources.dedup();
            slot_sources.push(scratch_sources.len() as u32);
            slot_offsets.push(slot_claims.len() as u32);
            i = j;
        }

        // Tier-0 spans: slots are entity-sorted, so each entity's
        // slots are contiguous; a counting pass yields the offsets.
        let mut entity_slot_counts = vec![0u32; entities];
        for e in &slot_entities {
            if let Some(c) = entity_slot_counts.get_mut(e.index()) {
                *c += 1;
            }
        }
        let mut entity_slot_offsets = Vec::with_capacity(entities + 1);
        let mut acc = 0u32;
        entity_slot_offsets.push(0);
        for c in &entity_slot_counts {
            acc += c;
            entity_slot_offsets.push(acc);
        }

        // Per-relation claim bitsets.
        let mut relation_bits: Vec<Bitset> =
            (0..relations).map(|_| Bitset::with_capacity(n)).collect();
        for (tid, r) in predicates.iter().enumerate() {
            if let Some(bits) = relation_bits.get_mut(r.index()) {
                bits.insert(tid as u32);
            }
        }

        // Touching-claim CSR: subject claims plus object claims
        // (self-loops counted once), filled with cursors then sorted
        // per span — ascending ids by construction.
        let mut touch_counts = vec![0u32; entities];
        for (tid, s) in subjects.iter().enumerate() {
            if let Some(c) = touch_counts.get_mut(s.index()) {
                *c += 1;
            }
            let obj = object_entities.get(tid).copied().unwrap_or(NO_ENTITY);
            if obj != NO_ENTITY && obj != s.0 {
                if let Some(c) = touch_counts.get_mut(obj as usize) {
                    *c += 1;
                }
            }
        }
        let mut touch_offsets = Vec::with_capacity(entities + 1);
        let mut acc = 0u32;
        touch_offsets.push(0);
        for c in &touch_counts {
            acc += c;
            touch_offsets.push(acc);
        }
        let mut cursors: Vec<u32> = touch_offsets.iter().take(entities).copied().collect();
        let mut touch_claims = vec![TripleId(0); acc as usize];
        {
            let mut place = |entity: usize, tid: u32, cursors: &mut Vec<u32>| {
                if let Some(cursor) = cursors.get_mut(entity) {
                    if let Some(cell) = touch_claims.get_mut(*cursor as usize) {
                        *cell = TripleId(tid);
                        *cursor += 1;
                    }
                }
            };
            for (tid, s) in subjects.iter().enumerate() {
                place(s.index(), tid as u32, &mut cursors);
                let obj = object_entities.get(tid).copied().unwrap_or(NO_ENTITY);
                if obj != NO_ENTITY && obj != s.0 {
                    place(obj as usize, tid as u32, &mut cursors);
                }
            }
        }
        for e in 0..entities {
            let (a, b) = (
                touch_offsets.get(e).copied().unwrap_or(0) as usize,
                touch_offsets.get(e + 1).copied().unwrap_or(0) as usize,
            );
            if let Some(span) = touch_claims.get_mut(a..b) {
                span.sort_unstable();
            }
        }

        Self {
            subjects,
            predicates,
            object_entities,
            sources,
            slot_entities,
            slot_relations,
            slot_offsets,
            slot_claims,
            slot_sources,
            claim_slot,
            entity_slot_offsets,
            relation_bits,
            touch_offsets,
            touch_claims,
        }
    }

    /// Tier-1 slot count.
    pub fn slot_count(&self) -> usize {
        self.slot_entities.len()
    }

    /// Tier-2 claim count.
    pub fn claim_count(&self) -> usize {
        self.subjects.len()
    }

    /// Tier-0 entity count.
    pub fn entity_count(&self) -> usize {
        self.entity_slot_offsets.len().saturating_sub(1)
    }

    /// The slot's entity.
    pub fn slot_entity(&self, slot: SlotId) -> EntityId {
        self.slot_entities
            .get(slot.index())
            .copied()
            .unwrap_or(EntityId(0))
    }

    /// The slot's relation.
    pub fn slot_relation(&self, slot: SlotId) -> RelationId {
        self.slot_relations
            .get(slot.index())
            .copied()
            .unwrap_or(RelationId(0))
    }

    /// Distinct sources asserting the slot.
    pub fn slot_source_count(&self, slot: SlotId) -> usize {
        self.slot_sources.get(slot.index()).copied().unwrap_or(0) as usize
    }

    /// The slot's claim postings, ascending by id — identical to the
    /// graph's `slot_triples` for the same `(entity, relation)`.
    pub fn claims(&self, slot: SlotId) -> &[TripleId] {
        let a = self.slot_offsets.get(slot.index()).copied().unwrap_or(0) as usize;
        let b = self
            .slot_offsets
            .get(slot.index() + 1)
            .copied()
            .unwrap_or(0) as usize;
        self.slot_claims.get(a..b).unwrap_or(&[])
    }

    /// The slot owning a claim.
    pub fn slot_of_claim(&self, claim: TripleId) -> Option<SlotId> {
        self.claim_slot.get(claim.index()).copied().map(SlotId)
    }

    /// The contiguous range of slot ids belonging to `entity`.
    fn entity_slot_range(&self, entity: EntityId) -> (usize, usize) {
        let lo = self
            .entity_slot_offsets
            .get(entity.index())
            .copied()
            .unwrap_or(0) as usize;
        let hi = self
            .entity_slot_offsets
            .get(entity.index() + 1)
            .copied()
            .unwrap_or(lo as u32) as usize;
        (lo, hi)
    }

    /// Slot ids of `entity`, in ascending relation order.
    pub fn slots_of(&self, entity: EntityId) -> impl Iterator<Item = SlotId> + '_ {
        let (lo, hi) = self.entity_slot_range(entity);
        (lo as u32..hi as u32).map(SlotId)
    }

    /// Tier-0 → tier-1 lookup: binary search for `relation` within the
    /// entity's slot span (slots are relation-sorted within an entity).
    pub fn slot_of(&self, entity: EntityId, relation: RelationId) -> Option<SlotId> {
        let (lo, hi) = self.entity_slot_range(entity);
        let span = self.slot_relations.get(lo..hi).unwrap_or(&[]);
        span.binary_search(&relation)
            .ok()
            .map(|pos| SlotId((lo + pos) as u32))
    }

    /// All claims whose subject is `entity`: the concatenation of the
    /// entity's slot postings (contiguous in the arena by layout).
    pub fn entity_claims(&self, entity: EntityId) -> &[TripleId] {
        let (lo, hi) = self.entity_slot_range(entity);
        let a = self.slot_offsets.get(lo).copied().unwrap_or(0) as usize;
        let b = self.slot_offsets.get(hi).copied().unwrap_or(0) as usize;
        self.slot_claims.get(a..b).unwrap_or(&[])
    }

    /// Tier descent: entity lookup → slot bitset → claim postings.
    /// Probes the entity's claim span against the relation's claim
    /// bitset; the survivors are exactly the slot's postings, in
    /// ascending id order (bit-identical to the linear-scan oracle).
    /// Costs are charged to `counters`: one descent, one AND op per
    /// membership probe, and every non-surviving claim counts as
    /// pruned (what an entity-neighborhood scan would have examined).
    pub fn descend(
        &self,
        entity: EntityId,
        relation: RelationId,
        counters: &mut TindexCounters,
    ) -> Vec<TripleId> {
        counters.tier_descents += 1;
        let span = self.entity_claims(entity);
        let mut kept = Vec::new();
        if let Some(bits) = self.relation_bits.get(relation.index()) {
            for &tid in span {
                counters.bitset_and_ops += 1;
                if bits.contains(tid.0) {
                    kept.push(tid);
                }
            }
        }
        counters.candidates_pruned += (span.len() - kept.len()) as u64;
        kept
    }

    /// Allocation-free variant of [`TieredIndex::descend`]: resolves
    /// the slot by binary search and returns the arena slice directly.
    /// Same answer set; used where the caller only needs to borrow.
    pub fn descend_slice(
        &self,
        entity: EntityId,
        relation: RelationId,
        counters: &mut TindexCounters,
    ) -> &[TripleId] {
        counters.tier_descents += 1;
        let span_len = self.entity_claims(entity).len();
        let claims = match self.slot_of(entity, relation) {
            Some(slot) => self.claims(slot),
            None => &[],
        };
        counters.candidates_pruned += (span_len - claims.len()) as u64;
        claims
    }

    /// Line-graph neighborhood by tier descent: claims sharing an
    /// endpoint with `claim` (ascending, excluding `claim` itself) —
    /// the same adjacency [`crate::LineGraph`] materializes globally,
    /// resolved from the per-entity touching spans instead.
    pub fn neighbors_of(&self, claim: TripleId, counters: &mut TindexCounters) -> Vec<TripleId> {
        counters.tier_descents += 1;
        let subject_span = match self.subjects.get(claim.index()) {
            Some(s) => self.touching(*s),
            None => &[],
        };
        let object_span = match self.object_entities.get(claim.index()) {
            Some(&o) if o != NO_ENTITY => self.touching(EntityId(o)),
            _ => &[],
        };
        // Sorted merge with dedup; both spans are ascending.
        let mut out = Vec::with_capacity(subject_span.len() + object_span.len());
        let (mut a, mut b) = (
            subject_span.iter().peekable(),
            object_span.iter().peekable(),
        );
        loop {
            let next = match (a.peek(), b.peek()) {
                (Some(&&x), Some(&&y)) => {
                    if x <= y {
                        if x == y {
                            b.next();
                        }
                        a.next();
                        x
                    } else {
                        b.next();
                        y
                    }
                }
                (Some(&&x), None) => {
                    a.next();
                    x
                }
                (None, Some(&&y)) => {
                    b.next();
                    y
                }
                (None, None) => break,
            };
            if next != claim {
                out.push(next);
            }
        }
        out
    }

    /// Claims touching `entity` as subject or object, ascending.
    pub fn touching(&self, entity: EntityId) -> &[TripleId] {
        let a = self.touch_offsets.get(entity.index()).copied().unwrap_or(0) as usize;
        let b = self
            .touch_offsets
            .get(entity.index() + 1)
            .copied()
            .unwrap_or(0) as usize;
        self.touch_claims.get(a..b).unwrap_or(&[])
    }

    /// The claim's subject (tier-2 column read).
    pub fn claim_subject(&self, claim: TripleId) -> Option<EntityId> {
        self.subjects.get(claim.index()).copied()
    }

    /// The claim's predicate (tier-2 column read).
    pub fn claim_predicate(&self, claim: TripleId) -> Option<RelationId> {
        self.predicates.get(claim.index()).copied()
    }

    /// The claim's source (tier-2 column read).
    pub fn claim_source(&self, claim: TripleId) -> Option<SourceId> {
        self.sources.get(claim.index()).copied()
    }

    /// The relation's claim bitset, when the relation exists.
    pub fn relation_claims(&self, relation: RelationId) -> Option<&Bitset> {
        self.relation_bits.get(relation.index())
    }

    /// Index shape summary.
    pub fn stats(&self) -> TindexStats {
        TindexStats {
            entities: self.entity_count(),
            slots: self.slot_count(),
            claims: self.claim_count(),
            relations: self.relation_bits.len(),
            bitset_words: self.relation_bits.iter().map(Bitset::word_count).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sample() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        let s0 = kg.add_source("a", "csv", "flights");
        let s1 = kg.add_source("b", "json", "flights");
        let f1 = kg.add_entity("CA981", "flights");
        let f2 = kg.add_entity("CA982", "flights");
        let status = kg.add_relation("status");
        let gate = kg.add_relation("gate");
        let follows = kg.add_relation("follows");
        kg.add_triple(f1, status, Value::from("delayed"), s0, 0);
        kg.add_triple(f1, status, Value::from("on-time"), s1, 0);
        kg.add_triple(f1, gate, Value::Int(12), s0, 0);
        kg.add_triple(f2, status, Value::from("boarding"), s1, 0);
        kg.add_triple(f2, follows, Object::Entity(f1), s0, 1);
        kg
    }

    #[test]
    fn bitset_round_trip_and_iteration_order() {
        let mut bits = Bitset::with_capacity(10);
        for b in [130u32, 3, 64, 3, 0] {
            bits.insert(b);
        }
        assert!(bits.contains(130) && bits.contains(0));
        assert!(!bits.contains(65));
        assert_eq!(bits.iter().collect::<Vec<_>>(), vec![0, 3, 64, 130]);
        assert_eq!(bits.count(), 4);
    }

    #[test]
    fn bitset_intersection_counts_word_ops() {
        let mut a = Bitset::with_capacity(128);
        let mut b = Bitset::with_capacity(128);
        a.insert(1);
        a.insert(100);
        b.insert(100);
        b.insert(127);
        let mut ops = 0u64;
        let both = a.intersect(&b, &mut ops);
        assert_eq!(both.iter().collect::<Vec<_>>(), vec![100]);
        assert_eq!(ops, 2, "two 64-bit words ANDed");
        let mut ops = 0u64;
        assert!(!a.is_disjoint(&b, &mut ops));
    }

    #[test]
    fn slot_postings_match_graph_slot_triples() {
        let kg = sample();
        let index = TieredIndex::build(&kg);
        for e in kg.entity_ids() {
            for r in 0..kg.relation_count() {
                let r = RelationId(r as u32);
                let expect = kg.slot_triples(e, r);
                let got = match index.slot_of(e, r) {
                    Some(slot) => index.claims(slot),
                    None => &[],
                };
                assert_eq!(got, expect, "slot ({e:?},{r:?})");
            }
        }
    }

    #[test]
    fn descend_equals_slice_equals_graph() {
        let kg = sample();
        let index = TieredIndex::build(&kg);
        let mut c = TindexCounters::default();
        for e in kg.entity_ids() {
            for r in 0..kg.relation_count() {
                let r = RelationId(r as u32);
                let probed = index.descend(e, r, &mut c);
                let sliced = index.descend_slice(e, r, &mut c).to_vec();
                assert_eq!(probed, sliced);
                assert_eq!(probed, kg.slot_triples(e, r).to_vec());
            }
        }
        assert!(c.tier_descents > 0);
        assert!(c.bitset_and_ops > 0);
    }

    #[test]
    fn pruning_counts_non_slot_claims() {
        let kg = sample();
        let index = TieredIndex::build(&kg);
        let f1 = kg.find_entity("CA981", "flights").unwrap();
        let gate = kg.find_relation("gate").unwrap();
        let mut c = TindexCounters::default();
        let kept = index.descend(f1, gate, &mut c);
        assert_eq!(kept.len(), 1);
        // CA981 has 3 subject claims; 2 are pruned by the gate bitset.
        assert_eq!(c.candidates_pruned, 2);
        assert_eq!(c.bitset_and_ops, 3);
    }

    #[test]
    fn neighbors_match_shared_endpoint_definition() {
        let kg = sample();
        let index = TieredIndex::build(&kg);
        let mut c = TindexCounters::default();
        for (tid, t) in kg.iter_triples() {
            let got = index.neighbors_of(tid, &mut c);
            let mut expect: Vec<TripleId> = kg
                .iter_triples()
                .filter(|&(o, other)| o != tid && t.shares_endpoint(other))
                .map(|(o, _)| o)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "neighbors of {tid:?}");
        }
    }

    #[test]
    fn entity_claims_are_the_subject_postings() {
        let kg = sample();
        let index = TieredIndex::build(&kg);
        for e in kg.entity_ids() {
            let mut expect = kg.outgoing(e).to_vec();
            expect.sort_unstable();
            let mut got = index.entity_claims(e).to_vec();
            got.sort_unstable();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn stats_and_empty_graph() {
        let kg = sample();
        let stats = TieredIndex::build(&kg).stats();
        assert_eq!(stats.claims, kg.triple_count());
        assert_eq!(stats.slots, 4);
        assert_eq!(stats.entities, kg.entity_count());
        let empty = TieredIndex::build(&KnowledgeGraph::new());
        assert_eq!(empty.slot_count(), 0);
        assert_eq!(empty.claim_count(), 0);
        let mut c = TindexCounters::default();
        assert!(empty.descend(EntityId(0), RelationId(0), &mut c).is_empty());
    }

    #[test]
    fn slot_of_claim_round_trips() {
        let kg = sample();
        let index = TieredIndex::build(&kg);
        for (tid, t) in kg.iter_triples() {
            let slot = index.slot_of_claim(tid).unwrap();
            assert_eq!(index.slot_entity(slot), t.subject);
            assert_eq!(index.slot_relation(slot), t.predicate);
            assert!(index.claims(slot).contains(&tid));
        }
    }
}
