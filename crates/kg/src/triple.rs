//! Triples with provenance.
//!
//! A triple asserts `(subject, predicate, object)` where the object is
//! either another entity or a literal [`Value`]. Every triple carries the
//! [`SourceId`] of the data source it came from plus the chunk index
//! within that source — the provenance the confidence machinery needs to
//! weight claims by source credibility (Eq. 11 of the paper).

use crate::intern::Symbol;
use crate::value::Value;
use std::fmt;

/// Identifier of an entity node in a [`crate::KnowledgeGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub u32);

impl EntityId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Identifier of a relation (predicate) kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationId(pub u32);

impl RelationId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of a data source (one of the multi-source feeds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(pub u32);

impl SourceId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "src{}", self.0)
    }
}

/// The object position of a triple: entity reference or literal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Object {
    /// Reference to another entity node.
    Entity(EntityId),
    /// Literal value.
    Literal(Value),
}

impl Object {
    /// Entity view of the object.
    pub fn as_entity(&self) -> Option<EntityId> {
        match self {
            Object::Entity(e) => Some(*e),
            Object::Literal(_) => None,
        }
    }

    /// Literal view of the object.
    pub fn as_literal(&self) -> Option<&Value> {
        match self {
            Object::Entity(_) => None,
            Object::Literal(v) => Some(v),
        }
    }

    /// Canonical bucketing key for consistency computations. Entities
    /// bucket by id; literals by [`Value::canonical_key`].
    pub fn canonical_key(&self) -> String {
        match self {
            Object::Entity(e) => format!("\u{0}e:{}", e.0),
            Object::Literal(v) => v.canonical_key(),
        }
    }
}

impl From<EntityId> for Object {
    fn from(e: EntityId) -> Self {
        Object::Entity(e)
    }
}

impl From<Value> for Object {
    fn from(v: Value) -> Self {
        Object::Literal(v)
    }
}

/// A provenance-carrying triple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Triple {
    /// Subject entity.
    pub subject: EntityId,
    /// Predicate / relation kind.
    pub predicate: RelationId,
    /// Object: entity or literal.
    pub object: Object,
    /// Source that asserted this triple.
    pub source: SourceId,
    /// Chunk index within the source the triple was extracted from.
    pub chunk: u32,
}

impl Triple {
    /// Creates a triple with explicit provenance.
    pub fn new(
        subject: EntityId,
        predicate: RelationId,
        object: impl Into<Object>,
        source: SourceId,
        chunk: u32,
    ) -> Self {
        Self {
            subject,
            predicate,
            object: object.into(),
            source,
            chunk,
        }
    }

    /// Whether the triple's object is an entity (a graph edge) rather
    /// than a literal (an attribute).
    pub fn is_edge(&self) -> bool {
        matches!(self.object, Object::Entity(_))
    }

    /// The entity endpoints the triple touches: always the subject, plus
    /// the object when it is an entity. Line-graph adjacency
    /// (Definition 2) is defined over these endpoints.
    pub fn endpoints(&self) -> (EntityId, Option<EntityId>) {
        (self.subject, self.object.as_entity())
    }

    /// Whether two triples share at least one entity endpoint —
    /// the adjacency predicate of the line-graph transform.
    pub fn shares_endpoint(&self, other: &Triple) -> bool {
        let (s1, o1) = self.endpoints();
        let (s2, o2) = other.endpoints();
        s1 == s2 || Some(s1) == o2 || Some(s2) == o1 || (o1.is_some() && o1 == o2)
    }

    /// The `(subject, predicate)` slot this triple fills. Triples from
    /// different sources in the same slot are *homologous candidates*
    /// (Definition 3).
    pub fn slot(&self) -> (EntityId, RelationId) {
        (self.subject, self.predicate)
    }
}

/// Human-readable names backing the ids of a graph (resolved through the
/// graph's interner).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TripleNames {
    /// Subject entity name.
    pub subject: String,
    /// Predicate name.
    pub predicate: String,
    /// Object rendering.
    pub object: String,
}

/// Marker trait-free helper: a symbol pair naming an entity with its
/// domain (e.g. `("CA981", "flights")`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EntityKey {
    /// Interned entity name.
    pub name: Symbol,
    /// Interned domain the entity belongs to.
    pub domain: Symbol,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, p: u32, o: Object) -> Triple {
        Triple::new(EntityId(s), RelationId(p), o, SourceId(0), 0)
    }

    #[test]
    fn endpoints_of_attribute_triples_exclude_object() {
        let triple = t(1, 2, Object::Literal(Value::from("14:30")));
        assert_eq!(triple.endpoints(), (EntityId(1), None));
        assert!(!triple.is_edge());
    }

    #[test]
    fn endpoints_of_edge_triples_include_object() {
        let triple = t(1, 2, Object::Entity(EntityId(9)));
        assert_eq!(triple.endpoints(), (EntityId(1), Some(EntityId(9))));
        assert!(triple.is_edge());
    }

    #[test]
    fn shares_endpoint_matches_all_four_cases() {
        let a = t(1, 0, Object::Entity(EntityId(2)));
        // subject == subject
        assert!(a.shares_endpoint(&t(1, 1, Object::Entity(EntityId(3)))));
        // subject == other.object
        assert!(a.shares_endpoint(&t(5, 1, Object::Entity(EntityId(1)))));
        // object == other.subject
        assert!(a.shares_endpoint(&t(2, 1, Object::Entity(EntityId(7)))));
        // object == other.object
        assert!(a.shares_endpoint(&t(8, 1, Object::Entity(EntityId(2)))));
        // disjoint
        assert!(!a.shares_endpoint(&t(8, 1, Object::Entity(EntityId(9)))));
    }

    #[test]
    fn literal_objects_never_create_adjacency() {
        let a = t(1, 0, Object::Literal(Value::from("x")));
        let b = t(2, 0, Object::Literal(Value::from("x")));
        assert!(!a.shares_endpoint(&b));
    }

    #[test]
    fn slot_groups_by_subject_and_predicate() {
        let a = t(1, 4, Object::Literal(Value::from("x")));
        let b = Triple::new(EntityId(1), RelationId(4), Value::from("y"), SourceId(3), 7);
        assert_eq!(a.slot(), b.slot());
    }

    #[test]
    fn object_canonical_keys_distinguish_entities_from_literals() {
        let e = Object::Entity(EntityId(3));
        let l = Object::Literal(Value::Int(3));
        assert_ne!(e.canonical_key(), l.canonical_key());
    }

    #[test]
    fn object_accessors() {
        let e = Object::Entity(EntityId(3));
        assert_eq!(e.as_entity(), Some(EntityId(3)));
        assert!(e.as_literal().is_none());
        let l = Object::Literal(Value::from("v"));
        assert!(l.as_entity().is_none());
        assert_eq!(l.as_literal().unwrap().as_str(), Some("v"));
    }

    #[test]
    fn display_impls_are_compact() {
        assert_eq!(EntityId(4).to_string(), "e4");
        assert_eq!(RelationId(2).to_string(), "r2");
        assert_eq!(SourceId(1).to_string(), "src1");
    }
}
