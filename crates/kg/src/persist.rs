//! Graph persistence: a line-oriented text dump format.
//!
//! The paper stores normalized knowledge as linked data; this module
//! gives the knowledge graph a durable, diffable on-disk form so
//! pipelines can snapshot an aggregated graph and reload it without
//! re-running ingestion. The format is deliberately simple:
//!
//! ```text
//! #multirag-kg v1
//! S|<name>|<format>|<domain>          one line per source
//! E|<name>|<domain>                   one line per entity
//! T|<subj-idx>|<pred>|<kind>|<object>|<src-idx>|<chunk>
//! ```
//!
//! `kind` is `e` (object entity index), `s` (string), `i` (int),
//! `f` (float), `b` (bool) or `n` (null). Strings are escaped
//! (`\|`, `\\`, `\n`, `\r`).

use crate::graph::KnowledgeGraph;
use crate::triple::{EntityId, Object, SourceId};
use crate::value::Value;

/// Errors from [`load`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "kg dump error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PersistError {}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '|' => out.push_str("\\|"),
            '\n' => out.push_str("\\n"),
            // A raw `\r` must not reach the dump: `load` splits on
            // `text.lines()`, which treats `\r\n` as one terminator and
            // would silently swallow a trailing carriage return.
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('|') => out.push('|'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Splits a dump line on unescaped `|`.
fn split_fields(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut chars = line.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                current.push('\\');
                if let Some(next) = chars.next() {
                    current.push(next);
                }
            }
            '|' => fields.push(std::mem::take(&mut current)),
            c => current.push(c),
        }
    }
    fields.push(current);
    fields
}

/// Serializes a graph to the dump format.
pub fn dump(kg: &KnowledgeGraph) -> String {
    let mut out = String::from("#multirag-kg v1\n");
    for sid in kg.source_ids() {
        let rec = kg.source(sid);
        out.push_str(&format!(
            "S|{}|{}|{}\n",
            escape(kg.resolve(rec.name)),
            escape(kg.resolve(rec.format)),
            escape(kg.resolve(rec.domain)),
        ));
    }
    for e in kg.entity_ids() {
        out.push_str(&format!(
            "E|{}|{}\n",
            escape(kg.entity_name(e)),
            escape(kg.entity_domain(e)),
        ));
    }
    for (_, t) in kg.iter_triples() {
        let (kind, object) = match &t.object {
            Object::Entity(e) => ("e", e.0.to_string()),
            Object::Literal(Value::Str(s)) => ("s", escape(s)),
            Object::Literal(Value::Int(i)) => ("i", i.to_string()),
            Object::Literal(Value::Float(f)) => ("f", format!("{f:?}")),
            Object::Literal(Value::Bool(b)) => ("b", b.to_string()),
            Object::Literal(Value::Null) => ("n", String::new()),
            Object::Literal(Value::List(items)) => {
                ("s", escape(&Value::List(items.clone()).to_string()))
            }
        };
        out.push_str(&format!(
            "T|{}|{}|{kind}|{object}|{}|{}\n",
            t.subject.0,
            escape(kg.relation_name(t.predicate)),
            t.source.0,
            t.chunk,
        ));
    }
    out
}

/// Parses a dump back into a graph.
pub fn load(text: &str) -> Result<KnowledgeGraph, PersistError> {
    let err = |line: usize, message: &str| PersistError {
        line,
        message: message.to_string(),
    };
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, header)) if header.trim() == "#multirag-kg v1" => {}
        _ => return Err(err(1, "missing '#multirag-kg v1' header")),
    }
    let mut kg = KnowledgeGraph::new();
    let mut entities: Vec<EntityId> = Vec::new();
    let mut sources: Vec<SourceId> = Vec::new();
    for (idx, line) in lines {
        let line_no = idx + 1;
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let fields = split_fields(line);
        match fields[0].as_str() {
            "S" => {
                if fields.len() != 4 {
                    return Err(err(line_no, "source line needs 4 fields"));
                }
                sources.push(kg.add_source(
                    &unescape(&fields[1]),
                    &unescape(&fields[2]),
                    &unescape(&fields[3]),
                ));
            }
            "E" => {
                if fields.len() != 3 {
                    return Err(err(line_no, "entity line needs 3 fields"));
                }
                entities.push(kg.add_entity(&unescape(&fields[1]), &unescape(&fields[2])));
            }
            "T" => {
                if fields.len() != 7 {
                    return Err(err(line_no, "triple line needs 7 fields"));
                }
                let subj: usize = fields[1]
                    .parse()
                    .map_err(|_| err(line_no, "bad subject index"))?;
                let subject = *entities
                    .get(subj)
                    .ok_or_else(|| err(line_no, "subject index out of range"))?;
                let predicate = kg.add_relation(&unescape(&fields[2]));
                let object: Object = match fields[3].as_str() {
                    "e" => {
                        let oi: usize = fields[4]
                            .parse()
                            .map_err(|_| err(line_no, "bad object entity index"))?;
                        Object::Entity(
                            *entities
                                .get(oi)
                                .ok_or_else(|| err(line_no, "object entity index out of range"))?,
                        )
                    }
                    "s" => Object::Literal(Value::Str(unescape(&fields[4]))),
                    "i" => Object::Literal(Value::Int(
                        fields[4].parse().map_err(|_| err(line_no, "bad int"))?,
                    )),
                    "f" => Object::Literal(Value::Float(
                        fields[4].parse().map_err(|_| err(line_no, "bad float"))?,
                    )),
                    "b" => Object::Literal(Value::Bool(
                        fields[4].parse().map_err(|_| err(line_no, "bad bool"))?,
                    )),
                    "n" => Object::Literal(Value::Null),
                    other => return Err(err(line_no, &format!("unknown kind '{other}'"))),
                };
                let src: usize = fields[5]
                    .parse()
                    .map_err(|_| err(line_no, "bad source index"))?;
                let source = *sources
                    .get(src)
                    .ok_or_else(|| err(line_no, "source index out of range"))?;
                let chunk: u32 = fields[6].parse().map_err(|_| err(line_no, "bad chunk"))?;
                kg.add_triple(subject, predicate, object, source, chunk);
            }
            other => return Err(err(line_no, &format!("unknown record '{other}'"))),
        }
    }
    Ok(kg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        let s0 = kg.add_source("feed|weird", "csv", "flights");
        let s1 = kg.add_source("feed-b", "json", "flights");
        let f = kg.add_entity("CA981", "flights");
        let city = kg.add_entity("New\nYork", "flights");
        let status = kg.add_relation("status");
        let dest = kg.add_relation("destination");
        let count = kg.add_relation("gate");
        kg.add_triple(f, status, Value::from("delayed|badly"), s0, 0);
        kg.add_triple(f, dest, city, s0, 1);
        kg.add_triple(f, count, Value::Int(12), s1, 0);
        kg.add_triple(f, count, Value::Float(2.5), s1, 1);
        kg.add_triple(f, count, Value::Bool(true), s1, 2);
        kg.add_triple(f, count, Value::Null, s1, 3);
        kg
    }

    #[test]
    fn dump_load_round_trips() {
        let kg = sample();
        let text = dump(&kg);
        let loaded = load(&text).unwrap();
        assert_eq!(loaded.source_count(), kg.source_count());
        assert_eq!(loaded.entity_count(), kg.entity_count());
        assert_eq!(loaded.triple_count(), kg.triple_count());
        // Value-level equality of every triple.
        for ((_, a), (_, b)) in kg.iter_triples().zip(loaded.iter_triples()) {
            assert_eq!(a.object.canonical_key(), b.object.canonical_key());
            assert_eq!(a.source, b.source);
            assert_eq!(a.chunk, b.chunk);
        }
        // Escaped names survive.
        assert!(loaded.find_entity("New\nYork", "flights").is_some());
        assert_eq!(loaded.source_name(SourceId(0)), "feed|weird");
    }

    #[test]
    fn entity_edges_reconnect() {
        let kg = sample();
        let loaded = load(&dump(&kg)).unwrap();
        let f = loaded.find_entity("CA981", "flights").unwrap();
        let city = loaded.find_entity("New\nYork", "flights").unwrap();
        assert_eq!(loaded.neighbors(f), vec![city]);
    }

    #[test]
    fn rejects_missing_header() {
        assert!(load("S|a|b|c\n").is_err());
        assert!(load("").is_err());
    }

    #[test]
    fn rejects_malformed_lines() {
        let cases = [
            "#multirag-kg v1\nS|only|two\n",
            "#multirag-kg v1\nE|one\n",
            "#multirag-kg v1\nT|0|r|s|v|0\n",
            "#multirag-kg v1\nX|what\n",
            "#multirag-kg v1\nE|a|d\nS|s|f|d\nT|9|r|s|v|0|0\n",
            "#multirag-kg v1\nE|a|d\nS|s|f|d\nT|0|r|e|9|0|0\n",
            "#multirag-kg v1\nE|a|d\nS|s|f|d\nT|0|r|i|notanint|0|0\n",
        ];
        for (i, case) in cases.iter().enumerate() {
            assert!(load(case).is_err(), "case {i} should fail");
        }
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "#multirag-kg v1\n\n# a comment\nE|a|d\nS|s|f|d\nT|0|r|i|5|0|0\n";
        let kg = load(text).unwrap();
        assert_eq!(kg.triple_count(), 1);
    }

    #[test]
    fn float_precision_survives() {
        let mut kg = KnowledgeGraph::new();
        let s = kg.add_source("s", "csv", "d");
        let e = kg.add_entity("e", "d");
        let r = kg.add_relation("r");
        kg.add_triple(e, r, Value::Float(0.1 + 0.2), s, 0);
        let loaded = load(&dump(&kg)).unwrap();
        let t = loaded.triple(crate::graph::TripleId(0));
        assert_eq!(t.object.as_literal().unwrap().as_f64().unwrap(), 0.1 + 0.2);
    }

    #[test]
    fn generated_dataset_round_trips() {
        // A bigger structural round trip via stats equality.
        let mut kg = KnowledgeGraph::new();
        let s = kg.add_source("s", "kg", "d");
        let r = kg.add_relation("r");
        let ids: Vec<_> = (0..50)
            .map(|i| kg.add_entity(&format!("n{i}"), "d"))
            .collect();
        for i in 0..49 {
            kg.add_triple(ids[i], r, ids[i + 1], s, i as u32);
        }
        let loaded = load(&dump(&kg)).unwrap();
        assert_eq!(loaded.stats(), kg.stats());
    }
}
