//! The multi-source line-graph transform (Definition 2).
//!
//! Given a knowledge graph `G`, its line graph `G'` has one node per
//! triple, with an edge between two nodes iff the underlying triples
//! share an entity endpoint. Homologous subgraphs (stars around a
//! synthetic center node) transform into cliques (Fig. 4 of the paper),
//! which is what makes consistency checks over homologous data a local
//! operation.
//!
//! Construction buckets triples by endpoint and materializes the clique
//! over each bucket, giving `O(Σ k_e²)` work where `k_e` is the number of
//! triples touching entity `e` — in practice far below the naive
//! all-pairs `O(n²)`.

use crate::graph::{KnowledgeGraph, TripleId};
use crate::triple::{EntityId, Triple};

/// Aggregate statistics of a line graph.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LineGraphStats {
    /// Node count (== triple count of the source graph / subset).
    pub nodes: usize,
    /// Undirected edge count.
    pub edges: usize,
    /// Maximum node degree.
    pub max_degree: usize,
    /// Mean node degree.
    pub mean_degree: f64,
}

/// An adjacency-list line graph over a set of triples.
///
/// Node indices are *positions into the triple subset* used to build the
/// graph; [`LineGraph::triple_id`] maps back to the source graph's
/// [`TripleId`]s.
#[derive(Debug, Clone, Default)]
pub struct LineGraph {
    /// For node `i`, `triples[i]` is the backing triple id.
    triples: Vec<TripleId>,
    /// Adjacency lists, sorted and deduplicated.
    adjacency: Vec<Vec<u32>>,
}

impl LineGraph {
    /// Builds the line graph of the *entire* knowledge graph.
    pub fn from_graph(kg: &KnowledgeGraph) -> Self {
        let ids: Vec<TripleId> = kg.iter_triples().map(|(id, _)| id).collect();
        Self::from_triples(kg, &ids)
    }

    /// Builds the line graph of a subset of triples (e.g. the triples
    /// retrieved for one query).
    pub fn from_triples(kg: &KnowledgeGraph, subset: &[TripleId]) -> Self {
        let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); subset.len()];
        // Bucket node positions by entity endpoint. A BTreeMap keeps
        // the bucket walk in entity order — adjacency lists come out
        // identical regardless of insertion history.
        let mut buckets: std::collections::BTreeMap<EntityId, Vec<u32>> =
            std::collections::BTreeMap::new();
        for (pos, &tid) in subset.iter().enumerate() {
            let triple: &Triple = kg.triple(tid);
            let (s, o) = triple.endpoints();
            buckets.entry(s).or_default().push(pos as u32);
            if let Some(o) = o {
                if o != s {
                    buckets.entry(o).or_default().push(pos as u32);
                }
            }
        }
        for bucket in buckets.values() {
            for (i, &a) in bucket.iter().enumerate() {
                for &b in &bucket[i + 1..] {
                    adjacency[a as usize].push(b);
                    adjacency[b as usize].push(a);
                }
            }
        }
        for list in &mut adjacency {
            list.sort_unstable();
            list.dedup();
        }
        Self {
            triples: subset.to_vec(),
            adjacency,
        }
    }

    /// Number of line-graph nodes.
    pub fn node_count(&self) -> usize {
        self.triples.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// The triple behind line-graph node `node`.
    pub fn triple_id(&self, node: u32) -> TripleId {
        self.triples[node as usize]
    }

    /// All backing triple ids in node order.
    pub fn triple_ids(&self) -> &[TripleId] {
        &self.triples
    }

    /// Neighbour node positions of `node`.
    pub fn neighbors(&self, node: u32) -> &[u32] {
        &self.adjacency[node as usize]
    }

    /// Degree of `node`.
    pub fn degree(&self, node: u32) -> usize {
        self.adjacency[node as usize].len()
    }

    /// Whether two nodes are adjacent (binary search over the sorted
    /// adjacency list).
    pub fn adjacent(&self, a: u32, b: u32) -> bool {
        self.adjacency[a as usize].binary_search(&b).is_ok()
    }

    /// Whether the node subset forms a clique — the structural signature
    /// of a homologous group after transformation (Fig. 4).
    pub fn is_clique(&self, nodes: &[u32]) -> bool {
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                if !self.adjacent(a, b) {
                    return false;
                }
            }
        }
        true
    }

    /// Connected components over line-graph nodes; each component is a
    /// sorted list of node positions.
    pub fn components(&self) -> Vec<Vec<u32>> {
        let n = self.node_count();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        let mut stack = Vec::new();
        for start in 0..n as u32 {
            if seen[start as usize] {
                continue;
            }
            let mut component = Vec::new();
            stack.push(start);
            seen[start as usize] = true;
            while let Some(node) = stack.pop() {
                component.push(node);
                for &next in self.neighbors(node) {
                    if !seen[next as usize] {
                        seen[next as usize] = true;
                        stack.push(next);
                    }
                }
            }
            component.sort_unstable();
            out.push(component);
        }
        out
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> LineGraphStats {
        let nodes = self.node_count();
        let degrees: Vec<usize> = self.adjacency.iter().map(Vec::len).collect();
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let total: usize = degrees.iter().sum();
        LineGraphStats {
            nodes,
            edges: total / 2,
            max_degree,
            mean_degree: if nodes == 0 {
                0.0
            } else {
                total as f64 / nodes as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    /// Star: center entity with 4 homologous attribute triples — the
    /// paper's Fig. 4 example. Its line graph must be K4.
    fn star_graph() -> (KnowledgeGraph, Vec<TripleId>) {
        let mut kg = KnowledgeGraph::new();
        let center = kg.add_entity("CA981", "flights");
        let rel = kg.add_relation("status");
        let mut ids = Vec::new();
        for i in 0..4 {
            let src = kg.add_source(&format!("s{i}"), "csv", "flights");
            ids.push(kg.add_triple(center, rel, Value::from(format!("v{i}")), src, 0));
        }
        (kg, ids)
    }

    #[test]
    fn homologous_star_becomes_complete_graph() {
        let (kg, ids) = star_graph();
        let lg = LineGraph::from_triples(&kg, &ids);
        assert_eq!(lg.node_count(), 4);
        assert_eq!(lg.edge_count(), 6); // K4
        assert!(lg.is_clique(&[0, 1, 2, 3]));
        assert_eq!(lg.stats().max_degree, 3);
    }

    #[test]
    fn disjoint_triples_produce_no_edges() {
        let mut kg = KnowledgeGraph::new();
        let src = kg.add_source("s", "csv", "movies");
        let rel = kg.add_relation("directed_by");
        let a = kg.add_entity("A", "movies");
        let b = kg.add_entity("B", "movies");
        let t1 = kg.add_triple(a, rel, Value::from("x"), src, 0);
        let t2 = kg.add_triple(b, rel, Value::from("y"), src, 0);
        let lg = LineGraph::from_triples(&kg, &[t1, t2]);
        assert_eq!(lg.edge_count(), 0);
        assert!(!lg.adjacent(0, 1));
        assert_eq!(lg.components().len(), 2);
    }

    #[test]
    fn chain_of_edges_links_consecutive_triples() {
        // a -> b -> c : triples (a,b) and (b,c) share endpoint b.
        let mut kg = KnowledgeGraph::new();
        let src = kg.add_source("s", "kg", "movies");
        let rel = kg.add_relation("linked");
        let a = kg.add_entity("a", "movies");
        let b = kg.add_entity("b", "movies");
        let c = kg.add_entity("c", "movies");
        let t1 = kg.add_triple(a, rel, b, src, 0);
        let t2 = kg.add_triple(b, rel, c, src, 0);
        let lg = LineGraph::from_triples(&kg, &[t1, t2]);
        assert!(lg.adjacent(0, 1));
        assert_eq!(lg.components().len(), 1);
    }

    #[test]
    fn self_loop_endpoints_do_not_double_count() {
        let mut kg = KnowledgeGraph::new();
        let src = kg.add_source("s", "kg", "movies");
        let rel = kg.add_relation("self");
        let a = kg.add_entity("a", "movies");
        let t1 = kg.add_triple(a, rel, a, src, 0);
        let t2 = kg.add_triple(a, rel, Value::from("v"), src, 0);
        let lg = LineGraph::from_triples(&kg, &[t1, t2]);
        // One edge, not two, despite the self-loop having both endpoints = a.
        assert_eq!(lg.edge_count(), 1);
        assert_eq!(lg.neighbors(0), &[1]);
    }

    #[test]
    fn from_graph_covers_all_triples() {
        let (kg, ids) = star_graph();
        let lg = LineGraph::from_graph(&kg);
        assert_eq!(lg.node_count(), ids.len());
        assert_eq!(lg.triple_ids().len(), ids.len());
        assert_eq!(lg.triple_id(2), ids[2]);
    }

    #[test]
    fn mixed_structure_components_separate() {
        let mut kg = KnowledgeGraph::new();
        let src = kg.add_source("s", "kg", "m");
        let rel = kg.add_relation("r");
        let a = kg.add_entity("a", "m");
        let b = kg.add_entity("b", "m");
        let c = kg.add_entity("c", "m");
        let d = kg.add_entity("d", "m");
        kg.add_triple(a, rel, b, src, 0);
        kg.add_triple(b, rel, Value::from("attr"), src, 0);
        kg.add_triple(c, rel, d, src, 0);
        let lg = LineGraph::from_graph(&kg);
        let comps = lg.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1]);
        assert_eq!(comps[1], vec![2]);
    }

    #[test]
    fn stats_of_empty_linegraph() {
        let kg = KnowledgeGraph::new();
        let lg = LineGraph::from_graph(&kg);
        let stats = lg.stats();
        assert_eq!(stats.nodes, 0);
        assert_eq!(stats.edges, 0);
        assert_eq!(stats.mean_degree, 0.0);
    }

    #[test]
    fn is_clique_detects_missing_edges() {
        let mut kg = KnowledgeGraph::new();
        let src = kg.add_source("s", "kg", "m");
        let rel = kg.add_relation("r");
        let a = kg.add_entity("a", "m");
        let b = kg.add_entity("b", "m");
        let c = kg.add_entity("c", "m");
        let t1 = kg.add_triple(a, rel, b, src, 0); // touches a,b
        let t2 = kg.add_triple(b, rel, c, src, 0); // touches b,c
        let t3 = kg.add_triple(c, rel, Value::from("v"), src, 0); // touches c
        let lg = LineGraph::from_triples(&kg, &[t1, t2, t3]);
        // t1-t2 share b; t2-t3 share c; t1-t3 share nothing.
        assert!(lg.is_clique(&[0, 1]));
        assert!(lg.is_clique(&[1, 2]));
        assert!(!lg.is_clique(&[0, 1, 2]));
    }
}
