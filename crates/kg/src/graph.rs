//! The indexed multi-source triple store.
//!
//! [`KnowledgeGraph`] owns the interner, the entity / relation / source
//! tables and the triple log, and maintains secondary indexes over
//! subject, object entity, predicate and `(subject, predicate)` slots so
//! the retrieval and homologous-matching layers never scan the full log.

use crate::hash::FxHashMap;
use crate::intern::{Interner, Symbol};
use crate::triple::{EntityId, Object, RelationId, SourceId, Triple, TripleNames};
use crate::value::Value;

/// Identifier of a triple within its graph — also the node id of the
/// triple's image in the line graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TripleId(pub u32);

impl TripleId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TripleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Entity record: interned name plus the domain it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntityRecord {
    /// Interned entity name.
    pub name: Symbol,
    /// Interned domain (e.g. "movies", "flights").
    pub domain: Symbol,
}

/// Source record: interned name, declared format and domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceRecord {
    /// Interned source name.
    pub name: Symbol,
    /// Interned storage format tag ("csv", "json", "xml", "kg", "text").
    pub format: Symbol,
    /// Interned domain the source covers.
    pub domain: Symbol,
}

/// Aggregate statistics of a graph (backs Table I).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GraphStats {
    /// Number of entity nodes.
    pub entities: usize,
    /// Number of distinct relation kinds.
    pub relations: usize,
    /// Number of triples.
    pub triples: usize,
    /// Number of registered sources.
    pub sources: usize,
    /// Number of entity→entity edges (non-literal triples).
    pub edges: usize,
    /// Mean out-degree over entities (triples per subject).
    pub mean_degree: f64,
}

/// The multi-source knowledge graph `G` of the paper.
///
/// # Examples
///
/// ```
/// use multirag_kg::{KnowledgeGraph, Value};
///
/// let mut kg = KnowledgeGraph::new();
/// let src = kg.add_source("airline-feed", "csv", "flights");
/// let flight = kg.add_entity("CA981", "flights");
/// let status = kg.add_relation("status");
/// kg.add_triple(flight, status, Value::from("delayed"), src, 0);
/// assert_eq!(kg.stats().triples, 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct KnowledgeGraph {
    interner: Interner,
    entities: Vec<EntityRecord>,
    entity_lookup: FxHashMap<(Symbol, Symbol), EntityId>,
    relations: Vec<Symbol>,
    relation_lookup: FxHashMap<Symbol, RelationId>,
    sources: Vec<SourceRecord>,
    triples: Vec<Triple>,
    by_subject: Vec<Vec<TripleId>>,
    by_object_entity: FxHashMap<EntityId, Vec<TripleId>>,
    by_predicate: FxHashMap<RelationId, Vec<TripleId>>,
    by_slot: FxHashMap<(EntityId, RelationId), Vec<TripleId>>,
}

impl KnowledgeGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph pre-sized for roughly `entities` entities and
    /// `triples` triples.
    pub fn with_capacity(entities: usize, triples: usize) -> Self {
        Self {
            interner: Interner::with_capacity(entities),
            entities: Vec::with_capacity(entities),
            entity_lookup: FxHashMap::with_capacity_and_hasher(entities, Default::default()),
            triples: Vec::with_capacity(triples),
            by_subject: Vec::with_capacity(entities),
            ..Self::default()
        }
    }

    // ---------------------------------------------------------------
    // Registration
    // ---------------------------------------------------------------

    /// Interns an arbitrary string through the graph's interner.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.interner.intern(s)
    }

    /// Resolves a symbol interned by this graph.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// Adds (or finds) an entity named `name` in `domain`.
    pub fn add_entity(&mut self, name: &str, domain: &str) -> EntityId {
        let name = self.interner.intern(name);
        let domain = self.interner.intern(domain);
        if let Some(&id) = self.entity_lookup.get(&(name, domain)) {
            return id;
        }
        let id = EntityId(self.entities.len() as u32);
        self.entities.push(EntityRecord { name, domain });
        self.by_subject.push(Vec::new());
        self.entity_lookup.insert((name, domain), id);
        id
    }

    /// Looks up an entity without creating it.
    pub fn find_entity(&self, name: &str, domain: &str) -> Option<EntityId> {
        let name = self.interner.get(name)?;
        let domain = self.interner.get(domain)?;
        self.entity_lookup.get(&(name, domain)).copied()
    }

    /// Adds (or finds) a relation kind.
    pub fn add_relation(&mut self, name: &str) -> RelationId {
        let sym = self.interner.intern(name);
        if let Some(&id) = self.relation_lookup.get(&sym) {
            return id;
        }
        let id = RelationId(self.relations.len() as u32);
        self.relations.push(sym);
        self.relation_lookup.insert(sym, id);
        id
    }

    /// Looks up a relation without creating it.
    pub fn find_relation(&self, name: &str) -> Option<RelationId> {
        let sym = self.interner.get(name)?;
        self.relation_lookup.get(&sym).copied()
    }

    /// Registers a data source.
    pub fn add_source(&mut self, name: &str, format: &str, domain: &str) -> SourceId {
        let record = SourceRecord {
            name: self.interner.intern(name),
            format: self.interner.intern(format),
            domain: self.interner.intern(domain),
        };
        let id = SourceId(self.sources.len() as u32);
        self.sources.push(record);
        id
    }

    /// Appends a triple, updating every secondary index.
    pub fn add_triple(
        &mut self,
        subject: EntityId,
        predicate: RelationId,
        object: impl Into<Object>,
        source: SourceId,
        chunk: u32,
    ) -> TripleId {
        let triple = Triple::new(subject, predicate, object, source, chunk);
        debug_assert!(subject.index() < self.entities.len(), "unknown subject");
        let id = TripleId(self.triples.len() as u32);
        self.by_subject[subject.index()].push(id);
        if let Object::Entity(obj) = triple.object {
            debug_assert!(obj.index() < self.entities.len(), "unknown object entity");
            self.by_object_entity.entry(obj).or_default().push(id);
        }
        self.by_predicate.entry(predicate).or_default().push(id);
        self.by_slot
            .entry((subject, predicate))
            .or_default()
            .push(id);
        self.triples.push(triple);
        id
    }

    // ---------------------------------------------------------------
    // Access
    // ---------------------------------------------------------------

    /// The triple behind an id.
    pub fn triple(&self, id: TripleId) -> &Triple {
        &self.triples[id.index()]
    }

    /// All triples in insertion order.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// The triple's object as a [`Value`]: literals verbatim, entity
    /// objects as their surface name — the form the confidence layer
    /// standardizes and compares.
    pub fn triple_value(&self, id: TripleId) -> Value {
        match &self.triple(id).object {
            Object::Entity(e) => Value::Str(self.entity_name(*e).to_string()),
            Object::Literal(v) => v.clone(),
        }
    }

    /// Iterates `(TripleId, &Triple)`.
    pub fn iter_triples(&self) -> impl Iterator<Item = (TripleId, &Triple)> {
        self.triples
            .iter()
            .enumerate()
            .map(|(i, t)| (TripleId(i as u32), t))
    }

    /// Entity record behind an id.
    pub fn entity(&self, id: EntityId) -> &EntityRecord {
        &self.entities[id.index()]
    }

    /// Entity name behind an id.
    pub fn entity_name(&self, id: EntityId) -> &str {
        self.interner.resolve(self.entities[id.index()].name)
    }

    /// Entity domain behind an id.
    pub fn entity_domain(&self, id: EntityId) -> &str {
        self.interner.resolve(self.entities[id.index()].domain)
    }

    /// Relation name behind an id.
    pub fn relation_name(&self, id: RelationId) -> &str {
        self.interner.resolve(self.relations[id.index()])
    }

    /// Source record behind an id.
    pub fn source(&self, id: SourceId) -> &SourceRecord {
        &self.sources[id.index()]
    }

    /// Source name behind an id.
    pub fn source_name(&self, id: SourceId) -> &str {
        self.interner.resolve(self.sources[id.index()].name)
    }

    /// Number of entities.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Number of relation kinds.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Number of triples.
    pub fn triple_count(&self) -> usize {
        self.triples.len()
    }

    /// Number of sources.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Iterates all entity ids.
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityId> {
        (0..self.entities.len() as u32).map(EntityId)
    }

    /// Iterates all source ids.
    pub fn source_ids(&self) -> impl Iterator<Item = SourceId> {
        (0..self.sources.len() as u32).map(SourceId)
    }

    // ---------------------------------------------------------------
    // Index queries
    // ---------------------------------------------------------------

    /// Triples whose subject is `e`.
    pub fn outgoing(&self, e: EntityId) -> &[TripleId] {
        &self.by_subject[e.index()]
    }

    /// Triples whose object entity is `e`.
    pub fn incoming(&self, e: EntityId) -> &[TripleId] {
        self.by_object_entity
            .get(&e)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Triples with predicate `r`.
    pub fn with_predicate(&self, r: RelationId) -> &[TripleId] {
        self.by_predicate.get(&r).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Triples filling the `(subject, predicate)` slot — the homologous
    /// candidate set for that slot (Definition 3).
    pub fn slot_triples(&self, subject: EntityId, predicate: RelationId) -> &[TripleId] {
        self.by_slot
            .get(&(subject, predicate))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All triples touching `e` as subject or object.
    pub fn touching(&self, e: EntityId) -> Vec<TripleId> {
        let mut out: Vec<TripleId> =
            Vec::with_capacity(self.outgoing(e).len() + self.incoming(e).len());
        out.extend_from_slice(self.outgoing(e));
        out.extend_from_slice(self.incoming(e));
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Entity neighbours of `e` via edge triples (both directions).
    pub fn neighbors(&self, e: EntityId) -> Vec<EntityId> {
        let mut out = Vec::new();
        for &tid in self.outgoing(e) {
            if let Object::Entity(obj) = self.triples[tid.index()].object {
                out.push(obj);
            }
        }
        for &tid in self.incoming(e) {
            out.push(self.triples[tid.index()].subject);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Literal attribute values of `e` under predicate `r`.
    pub fn attribute_values(&self, e: EntityId, r: RelationId) -> Vec<&Value> {
        self.slot_triples(e, r)
            .iter()
            .filter_map(|&tid| self.triples[tid.index()].object.as_literal())
            .collect()
    }

    /// Human-readable rendering of a triple.
    pub fn triple_names(&self, id: TripleId) -> TripleNames {
        let t = self.triple(id);
        let object = match &t.object {
            Object::Entity(e) => self.entity_name(*e).to_string(),
            Object::Literal(v) => v.to_string(),
        };
        TripleNames {
            subject: self.entity_name(t.subject).to_string(),
            predicate: self.relation_name(t.predicate).to_string(),
            object,
        }
    }

    /// Aggregate statistics (Table I backing data).
    pub fn stats(&self) -> GraphStats {
        let edges = self.triples.iter().filter(|t| t.is_edge()).count();
        let mean_degree = if self.entities.is_empty() {
            0.0
        } else {
            self.triples.len() as f64 / self.entities.len() as f64
        };
        GraphStats {
            entities: self.entities.len(),
            relations: self.relations.len(),
            triples: self.triples.len(),
            sources: self.sources.len(),
            edges,
            mean_degree,
        }
    }

    /// Builds a sub-graph restricted to the given sources, re-using this
    /// graph's string table semantics (names survive, ids do not).
    /// Used by the experiment harness to evaluate source combinations
    /// (the J/K, J/C, … columns of Table II).
    pub fn restrict_to_sources(&self, keep: &[SourceId]) -> KnowledgeGraph {
        let keep_set: crate::hash::FxHashSet<SourceId> = keep.iter().copied().collect();
        let mut out = KnowledgeGraph::with_capacity(self.entities.len(), self.triples.len());
        // Re-register kept sources in original order, remembering the mapping.
        let mut source_map: FxHashMap<SourceId, SourceId> = FxHashMap::default();
        for (i, rec) in self.sources.iter().enumerate() {
            let old = SourceId(i as u32);
            if keep_set.contains(&old) {
                let name = self.interner.resolve(rec.name).to_string();
                let format = self.interner.resolve(rec.format).to_string();
                let domain = self.interner.resolve(rec.domain).to_string();
                let new = out.add_source(&name, &format, &domain);
                source_map.insert(old, new);
            }
        }
        let mut entity_map: FxHashMap<EntityId, EntityId> = FxHashMap::default();
        let map_entity = |g: &Self,
                          out: &mut KnowledgeGraph,
                          map: &mut FxHashMap<EntityId, EntityId>,
                          e: EntityId| {
            *map.entry(e).or_insert_with(|| {
                let rec = g.entity(e);
                let name = g.interner.resolve(rec.name).to_string();
                let domain = g.interner.resolve(rec.domain).to_string();
                out.add_entity(&name, &domain)
            })
        };
        for t in &self.triples {
            let Some(&new_src) = source_map.get(&t.source) else {
                continue;
            };
            let s = map_entity(self, &mut out, &mut entity_map, t.subject);
            let p_name = self.relation_name(t.predicate).to_string();
            let p = out.add_relation(&p_name);
            let obj: Object = match &t.object {
                Object::Entity(e) => {
                    Object::Entity(map_entity(self, &mut out, &mut entity_map, *e))
                }
                Object::Literal(v) => Object::Literal(v.clone()),
            };
            out.add_triple(s, p, obj, new_src, t.chunk);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        let s0 = kg.add_source("feed-a", "csv", "flights");
        let s1 = kg.add_source("feed-b", "json", "flights");
        let ca981 = kg.add_entity("CA981", "flights");
        let beijing = kg.add_entity("Beijing", "flights");
        let depart = kg.add_relation("departs_from");
        let status = kg.add_relation("status");
        kg.add_triple(ca981, depart, beijing, s0, 0);
        kg.add_triple(ca981, status, Value::from("delayed"), s0, 1);
        kg.add_triple(ca981, status, Value::from("on-time"), s1, 0);
        kg
    }

    #[test]
    fn add_entity_deduplicates_by_name_and_domain() {
        let mut kg = KnowledgeGraph::new();
        let a = kg.add_entity("X", "movies");
        let b = kg.add_entity("X", "movies");
        let c = kg.add_entity("X", "books");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(kg.entity_count(), 2);
    }

    #[test]
    fn find_entity_and_relation_do_not_create() {
        let mut kg = KnowledgeGraph::new();
        assert!(kg.find_entity("X", "movies").is_none());
        assert!(kg.find_relation("directed_by").is_none());
        let e = kg.add_entity("X", "movies");
        let r = kg.add_relation("directed_by");
        assert_eq!(kg.find_entity("X", "movies"), Some(e));
        assert_eq!(kg.find_relation("directed_by"), Some(r));
    }

    #[test]
    fn indexes_track_subject_object_predicate_and_slot() {
        let kg = sample_graph();
        let ca981 = kg.find_entity("CA981", "flights").unwrap();
        let beijing = kg.find_entity("Beijing", "flights").unwrap();
        let status = kg.find_relation("status").unwrap();
        assert_eq!(kg.outgoing(ca981).len(), 3);
        assert_eq!(kg.incoming(beijing).len(), 1);
        assert_eq!(kg.with_predicate(status).len(), 2);
        assert_eq!(kg.slot_triples(ca981, status).len(), 2);
    }

    #[test]
    fn attribute_values_collects_literals_only() {
        let kg = sample_graph();
        let ca981 = kg.find_entity("CA981", "flights").unwrap();
        let status = kg.find_relation("status").unwrap();
        let depart = kg.find_relation("departs_from").unwrap();
        let values = kg.attribute_values(ca981, status);
        assert_eq!(values.len(), 2);
        assert!(kg.attribute_values(ca981, depart).is_empty());
    }

    #[test]
    fn neighbors_are_bidirectional_and_deduped() {
        let kg = sample_graph();
        let ca981 = kg.find_entity("CA981", "flights").unwrap();
        let beijing = kg.find_entity("Beijing", "flights").unwrap();
        assert_eq!(kg.neighbors(ca981), vec![beijing]);
        assert_eq!(kg.neighbors(beijing), vec![ca981]);
    }

    #[test]
    fn touching_merges_both_directions() {
        let kg = sample_graph();
        let beijing = kg.find_entity("Beijing", "flights").unwrap();
        assert_eq!(kg.touching(beijing).len(), 1);
        let ca981 = kg.find_entity("CA981", "flights").unwrap();
        assert_eq!(kg.touching(ca981).len(), 3);
    }

    #[test]
    fn stats_count_edges_and_degree() {
        let kg = sample_graph();
        let stats = kg.stats();
        assert_eq!(stats.entities, 2);
        assert_eq!(stats.relations, 2);
        assert_eq!(stats.triples, 3);
        assert_eq!(stats.sources, 2);
        assert_eq!(stats.edges, 1);
        assert!((stats.mean_degree - 1.5).abs() < 1e-9);
    }

    #[test]
    fn triple_names_render_human_readable() {
        let kg = sample_graph();
        let names = kg.triple_names(TripleId(0));
        assert_eq!(names.subject, "CA981");
        assert_eq!(names.predicate, "departs_from");
        assert_eq!(names.object, "Beijing");
        let names = kg.triple_names(TripleId(1));
        assert_eq!(names.object, "delayed");
    }

    #[test]
    fn restrict_to_sources_drops_foreign_triples() {
        let kg = sample_graph();
        let restricted = kg.restrict_to_sources(&[SourceId(0)]);
        assert_eq!(restricted.source_count(), 1);
        assert_eq!(restricted.triple_count(), 2);
        // Source-1's conflicting "on-time" claim is gone.
        let ca981 = restricted.find_entity("CA981", "flights").unwrap();
        let status = restricted.find_relation("status").unwrap();
        let values = restricted.attribute_values(ca981, status);
        assert_eq!(values.len(), 1);
        assert_eq!(values[0].as_str(), Some("delayed"));
    }

    #[test]
    fn restrict_to_sources_keeps_entity_names() {
        let kg = sample_graph();
        let restricted = kg.restrict_to_sources(&[SourceId(1)]);
        assert!(restricted.find_entity("CA981", "flights").is_some());
        // Beijing only appeared in src0's triple, so it is absent.
        assert!(restricted.find_entity("Beijing", "flights").is_none());
    }

    #[test]
    fn empty_graph_stats_are_zeroed() {
        let kg = KnowledgeGraph::new();
        let stats = kg.stats();
        assert_eq!(stats.entities, 0);
        assert_eq!(stats.mean_degree, 0.0);
    }
}
