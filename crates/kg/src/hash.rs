//! Fast non-cryptographic hashing for interned-id keys.
//!
//! The workspace keys almost every hot map by a dense `u32`/`u64` id
//! (interned symbols, entity ids, triple ids). The standard library's
//! SipHash is collision-resistant but slow for such keys; this module
//! implements the multiply-rotate "Fx" construction used by rustc, which
//! the Rust Performance Book recommends for exactly this workload. It is
//! written in-crate to keep the dependency set to the approved list.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A fast, deterministic, non-cryptographic hasher.
///
/// Not resistant to HashDoS; suitable only for trusted in-process keys,
/// which is all this workspace uses it for.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u64::from(u32::from_le_bytes(buf)));
            bytes = &bytes[4..];
        }
        if bytes.len() >= 2 {
            let mut buf = [0u8; 2];
            buf.copy_from_slice(&bytes[..2]);
            self.add_to_hash(u64::from(u16::from_le_bytes(buf)));
            bytes = &bytes[2..];
        }
        if let Some(&b) = bytes.first() {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

/// Hash a single `u64` value with the Fx construction.
///
/// Useful for deterministic pseudo-random decisions keyed on ids
/// (e.g. simulated-LLM noise draws) without constructing an RNG.
#[inline]
pub fn hash_u64(value: u64) -> u64 {
    let mut hasher = FxHasher::default();
    hasher.write_u64(value);
    hasher.finish()
}

/// Hash arbitrary bytes with the Fx construction.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut hasher = FxHasher::default();
    hasher.write(bytes);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_inputs_hash_identically() {
        assert_eq!(hash_bytes(b"multirag"), hash_bytes(b"multirag"));
        assert_eq!(hash_u64(42), hash_u64(42));
    }

    #[test]
    fn different_inputs_hash_differently() {
        // Not a guarantee in general, but these must differ for the
        // hasher to be useful at all.
        assert_ne!(hash_bytes(b"movies"), hash_bytes(b"books"));
        assert_ne!(hash_u64(1), hash_u64(2));
    }

    #[test]
    fn write_handles_all_tail_lengths() {
        // Exercise the 8/4/2/1-byte tails of `write`.
        let inputs: Vec<&[u8]> = vec![
            b"",
            b"a",
            b"ab",
            b"abc",
            b"abcd",
            b"abcde",
            b"abcdef",
            b"abcdefg",
            b"abcdefgh",
            b"abcdefghi",
        ];
        let hashes: Vec<u64> = inputs.iter().map(|b| hash_bytes(b)).collect();
        for i in 0..hashes.len() {
            for j in (i + 1)..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "inputs {i} and {j} collided");
            }
        }
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(1, "one");
        map.insert(2, "two");
        assert_eq!(map.get(&1), Some(&"one"));

        let mut set: FxHashSet<u64> = FxHashSet::default();
        set.insert(7);
        assert!(set.contains(&7));
        assert!(!set.contains(&8));
    }

    #[test]
    fn hasher_is_order_sensitive() {
        let mut a = FxHasher::default();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = FxHasher::default();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn integer_write_widths_do_not_alias_trivially() {
        let mut a = FxHasher::default();
        a.write_u8(1);
        let mut b = FxHasher::default();
        b.write_u16(1);
        // Same underlying word; state must still be equal since both add
        // the value 1. Document the behaviour so changes are deliberate.
        assert_eq!(a.finish(), b.finish());
    }
}
