//! Graph traversals over the entity graph.
//!
//! These algorithms serve the retrieval layer (k-hop expansion around
//! query entities), the homologous matcher (component discovery) and the
//! dataset statistics (degree distributions, isolated-node counts).

use crate::graph::KnowledgeGraph;
use crate::hash::FxHashSet;
use crate::triple::EntityId;
use std::collections::VecDeque;

/// Breadth-first traversal from `start`, returning visited entities in
/// BFS order (including `start`). `max_depth` bounds the hop count;
/// `None` visits the whole component.
pub fn bfs(kg: &KnowledgeGraph, start: EntityId, max_depth: Option<usize>) -> Vec<EntityId> {
    let mut order = Vec::new();
    let mut seen: FxHashSet<EntityId> = FxHashSet::default();
    let mut queue: VecDeque<(EntityId, usize)> = VecDeque::new();
    seen.insert(start);
    queue.push_back((start, 0));
    while let Some((node, depth)) = queue.pop_front() {
        order.push(node);
        if let Some(limit) = max_depth {
            if depth >= limit {
                continue;
            }
        }
        for next in kg.neighbors(node) {
            if seen.insert(next) {
                queue.push_back((next, depth + 1));
            }
        }
    }
    order
}

/// Depth-first traversal from `start` (iterative, preorder).
pub fn dfs(kg: &KnowledgeGraph, start: EntityId) -> Vec<EntityId> {
    let mut order = Vec::new();
    let mut seen: FxHashSet<EntityId> = FxHashSet::default();
    let mut stack = vec![start];
    seen.insert(start);
    while let Some(node) = stack.pop() {
        order.push(node);
        // Push in reverse so the smallest-id neighbour is visited first,
        // matching the recursive formulation deterministically.
        let mut neighbors = kg.neighbors(node);
        neighbors.reverse();
        for next in neighbors {
            if seen.insert(next) {
                stack.push(next);
            }
        }
    }
    order
}

/// Entities within `hops` edges of `start` (the k-hop neighbourhood,
/// including `start`).
pub fn k_hop(kg: &KnowledgeGraph, start: EntityId, hops: usize) -> Vec<EntityId> {
    bfs(kg, start, Some(hops))
}

/// Shortest hop distance between two entities over undirected edges, or
/// `None` when disconnected.
pub fn distance(kg: &KnowledgeGraph, from: EntityId, to: EntityId) -> Option<usize> {
    if from == to {
        return Some(0);
    }
    let mut seen: FxHashSet<EntityId> = FxHashSet::default();
    let mut queue: VecDeque<(EntityId, usize)> = VecDeque::new();
    seen.insert(from);
    queue.push_back((from, 0));
    while let Some((node, depth)) = queue.pop_front() {
        for next in kg.neighbors(node) {
            if next == to {
                return Some(depth + 1);
            }
            if seen.insert(next) {
                queue.push_back((next, depth + 1));
            }
        }
    }
    None
}

/// Connected components of the entity graph (undirected, edge triples
/// only). Each component is sorted by entity id; the component list is
/// sorted by its smallest member.
pub fn connected_components(kg: &KnowledgeGraph) -> Vec<Vec<EntityId>> {
    let n = kg.entity_count();
    let mut seen = vec![false; n];
    let mut out = Vec::new();
    for start in kg.entity_ids() {
        if seen[start.index()] {
            continue;
        }
        let mut component = Vec::new();
        let mut stack = vec![start];
        seen[start.index()] = true;
        while let Some(node) = stack.pop() {
            component.push(node);
            for next in kg.neighbors(node) {
                if !seen[next.index()] {
                    seen[next.index()] = true;
                    stack.push(next);
                }
            }
        }
        component.sort_unstable();
        out.push(component);
    }
    out
}

/// Entities with no edge triples at all — the isolated points `LVs` the
/// paper folds into the homologous line graph.
pub fn isolated_entities(kg: &KnowledgeGraph) -> Vec<EntityId> {
    kg.entity_ids()
        .filter(|&e| kg.neighbors(e).is_empty())
        .collect()
}

/// Simple paths (as entity sequences) from `from` to `to` with at most
/// `max_hops` edges. Used by the multi-hop QA reasoner to enumerate
/// candidate inference paths. The result is bounded by `max_paths` to
/// keep worst cases tame.
pub fn paths_between(
    kg: &KnowledgeGraph,
    from: EntityId,
    to: EntityId,
    max_hops: usize,
    max_paths: usize,
) -> Vec<Vec<EntityId>> {
    let mut out = Vec::new();
    let mut current = vec![from];
    let mut on_path: FxHashSet<EntityId> = FxHashSet::default();
    on_path.insert(from);
    fn rec(
        kg: &KnowledgeGraph,
        to: EntityId,
        max_hops: usize,
        max_paths: usize,
        current: &mut Vec<EntityId>,
        on_path: &mut FxHashSet<EntityId>,
        out: &mut Vec<Vec<EntityId>>,
    ) {
        if out.len() >= max_paths {
            return;
        }
        let last = *current.last().expect("path never empty");
        if last == to {
            out.push(current.clone());
            return;
        }
        if current.len() > max_hops {
            return;
        }
        for next in kg.neighbors(last) {
            if on_path.contains(&next) {
                continue;
            }
            current.push(next);
            on_path.insert(next);
            rec(kg, to, max_hops, max_paths, current, on_path, out);
            on_path.remove(&next);
            current.pop();
        }
    }
    rec(
        kg,
        to,
        max_hops,
        max_paths,
        &mut current,
        &mut on_path,
        &mut out,
    );
    out
}

/// Degree histogram of the entity graph: `histogram[d]` = number of
/// entities with degree `d` (clamped into the final bucket).
pub fn degree_histogram(kg: &KnowledgeGraph, buckets: usize) -> Vec<usize> {
    let mut histogram = vec![0usize; buckets.max(1)];
    for e in kg.entity_ids() {
        let d = kg.neighbors(e).len().min(buckets.saturating_sub(1));
        histogram[d] += 1;
    }
    histogram
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    /// Builds: a - b - c - d plus isolated e, attribute on a.
    fn chain() -> (KnowledgeGraph, Vec<EntityId>) {
        let mut kg = KnowledgeGraph::new();
        let src = kg.add_source("s", "kg", "m");
        let rel = kg.add_relation("r");
        let ids: Vec<EntityId> = ["a", "b", "c", "d", "e"]
            .iter()
            .map(|n| kg.add_entity(n, "m"))
            .collect();
        kg.add_triple(ids[0], rel, ids[1], src, 0);
        kg.add_triple(ids[1], rel, ids[2], src, 0);
        kg.add_triple(ids[2], rel, ids[3], src, 0);
        kg.add_triple(ids[0], rel, Value::from("attr"), src, 0);
        (kg, ids)
    }

    #[test]
    fn bfs_visits_in_level_order() {
        let (kg, ids) = chain();
        let order = bfs(&kg, ids[0], None);
        assert_eq!(order, vec![ids[0], ids[1], ids[2], ids[3]]);
    }

    #[test]
    fn bfs_respects_depth_limit() {
        let (kg, ids) = chain();
        assert_eq!(bfs(&kg, ids[0], Some(0)), vec![ids[0]]);
        assert_eq!(bfs(&kg, ids[0], Some(1)), vec![ids[0], ids[1]]);
        assert_eq!(k_hop(&kg, ids[0], 2).len(), 3);
    }

    #[test]
    fn dfs_reaches_the_full_component() {
        let (kg, ids) = chain();
        let order = dfs(&kg, ids[0]);
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], ids[0]);
        assert!(!order.contains(&ids[4]));
    }

    #[test]
    fn distance_counts_hops() {
        let (kg, ids) = chain();
        assert_eq!(distance(&kg, ids[0], ids[0]), Some(0));
        assert_eq!(distance(&kg, ids[0], ids[3]), Some(3));
        assert_eq!(distance(&kg, ids[0], ids[4]), None);
    }

    #[test]
    fn components_split_isolated_entities() {
        let (kg, ids) = chain();
        let comps = connected_components(&kg);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![ids[0], ids[1], ids[2], ids[3]]);
        assert_eq!(comps[1], vec![ids[4]]);
    }

    #[test]
    fn isolated_entities_ignores_attribute_triples() {
        let (kg, ids) = chain();
        // `a` has an attribute triple but also edges; `e` has nothing.
        assert_eq!(isolated_entities(&kg), vec![ids[4]]);
    }

    #[test]
    fn paths_between_enumerates_simple_paths() {
        let mut kg = KnowledgeGraph::new();
        let src = kg.add_source("s", "kg", "m");
        let rel = kg.add_relation("r");
        let a = kg.add_entity("a", "m");
        let b = kg.add_entity("b", "m");
        let c = kg.add_entity("c", "m");
        let d = kg.add_entity("d", "m");
        // Two routes a->d: a-b-d and a-c-d.
        kg.add_triple(a, rel, b, src, 0);
        kg.add_triple(b, rel, d, src, 0);
        kg.add_triple(a, rel, c, src, 0);
        kg.add_triple(c, rel, d, src, 0);
        let paths = paths_between(&kg, a, d, 3, 10);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.first(), Some(&a));
            assert_eq!(p.last(), Some(&d));
            assert_eq!(p.len(), 3);
        }
    }

    #[test]
    fn paths_between_respects_caps() {
        let (kg, ids) = chain();
        let paths = paths_between(&kg, ids[0], ids[3], 2, 10);
        assert!(paths.is_empty(), "3-hop path must be cut off at max_hops=2");
        let paths = paths_between(&kg, ids[0], ids[3], 5, 0);
        assert!(paths.is_empty(), "max_paths=0 returns nothing");
    }

    #[test]
    fn degree_histogram_buckets_counts() {
        let (kg, _) = chain();
        let histogram = degree_histogram(&kg, 4);
        // Degrees: a=1, b=2, c=2, d=1, e=0.
        assert_eq!(histogram, vec![1, 2, 2, 0]);
    }
}
