#![warn(missing_docs)]

//! # multirag-kg
//!
//! Knowledge-graph substrate for the MultiRAG framework.
//!
//! This crate provides the storage layer that every other MultiRAG crate
//! builds on:
//!
//! * [`hash`] — a fast FxHash-style hasher and the [`FxHashMap`] /
//!   [`FxHashSet`] aliases used throughout the workspace (interned-id keys
//!   dominate, where SipHash is needlessly slow).
//! * [`intern`] — a string interner mapping entity / relation / value
//!   strings to dense `u32` symbols.
//! * [`value`] — the literal value model ([`Value`]) shared by the ingest
//!   adapters and the knowledge graph.
//! * [`triple`] — triples with provenance ([`Triple`], [`SourceId`]).
//! * [`graph`] — the indexed triple store ([`KnowledgeGraph`]) with
//!   subject / predicate / object secondary indexes.
//! * [`linegraph`] — the line-graph transform of Definition 2 in the
//!   paper: triple-as-node graphs ([`LineGraph`]) in which two nodes are
//!   adjacent iff their triples share an endpoint.
//! * [`algo`] — graph traversals (BFS / DFS), connected components and
//!   degree statistics used by the homologous-subgraph matcher.
//! * [`persist`] — a line-oriented dump/load format so aggregated
//!   graphs can be snapshotted and reloaded without re-ingestion.
//! * [`tindex`] — the hierarchical tiered retrieval index: a columnar,
//!   arena-backed triple store with entity → attribute-slot → claim
//!   tiers and bitset adjacency, so candidate selection resolves by
//!   tier descent instead of linear scans (DESIGN.md §5.15).
//!
//! The crate has no dependencies and is fully deterministic.

pub mod algo;
pub mod graph;
pub mod hash;
pub mod intern;
pub mod linegraph;
pub mod persist;
pub mod tindex;
pub mod triple;
pub mod value;

pub use graph::{GraphStats, KnowledgeGraph, TripleId};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use intern::{Interner, KeyInterner, Symbol};
pub use linegraph::{LineGraph, LineGraphStats};
pub use tindex::{Bitset, SlotId, TieredIndex, TindexCounters, TindexStats};
pub use triple::{EntityId, Object, RelationId, SourceId, Triple};
pub use value::Value;
