//! Property-based tests over the kg substrate invariants.

use multirag_kg::{algo, KnowledgeGraph, LineGraph, Value};
use proptest::prelude::*;

/// A compact random-graph description: `n` entities, edges as index
/// pairs, attribute triples as (entity, value) pairs.
#[derive(Debug, Clone)]
struct GraphSpec {
    n: usize,
    edges: Vec<(usize, usize)>,
    attrs: Vec<(usize, i64)>,
}

fn graph_spec() -> impl Strategy<Value = GraphSpec> {
    (2usize..24).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..48);
        let attrs = proptest::collection::vec((0..n, -5i64..5), 0..24);
        (Just(n), edges, attrs).prop_map(|(n, edges, attrs)| GraphSpec { n, edges, attrs })
    })
}

fn build(spec: &GraphSpec) -> KnowledgeGraph {
    let mut kg = KnowledgeGraph::new();
    let src = kg.add_source("s", "kg", "prop");
    let rel = kg.add_relation("edge");
    let attr = kg.add_relation("attr");
    let ids: Vec<_> = (0..spec.n)
        .map(|i| kg.add_entity(&format!("n{i}"), "prop"))
        .collect();
    for &(a, b) in &spec.edges {
        kg.add_triple(ids[a], rel, ids[b], src, 0);
    }
    for &(e, v) in &spec.attrs {
        kg.add_triple(ids[e], attr, Value::Int(v), src, 0);
    }
    kg
}

proptest! {
    /// Line-graph adjacency must agree with the pairwise
    /// `shares_endpoint` predicate — the defining property of
    /// Definition 2.
    #[test]
    fn linegraph_matches_shared_endpoint_definition(spec in graph_spec()) {
        let kg = build(&spec);
        let lg = LineGraph::from_graph(&kg);
        let n = lg.node_count() as u32;
        for a in 0..n {
            for b in (a + 1)..n {
                let ta = kg.triple(lg.triple_id(a));
                let tb = kg.triple(lg.triple_id(b));
                prop_assert_eq!(
                    lg.adjacent(a, b),
                    ta.shares_endpoint(tb),
                    "nodes {} and {} disagree with definition", a, b
                );
            }
        }
    }

    /// Line-graph adjacency is symmetric and irreflexive.
    #[test]
    fn linegraph_adjacency_symmetric(spec in graph_spec()) {
        let kg = build(&spec);
        let lg = LineGraph::from_graph(&kg);
        for a in 0..lg.node_count() as u32 {
            prop_assert!(!lg.adjacent(a, a));
            for &b in lg.neighbors(a) {
                prop_assert!(lg.adjacent(b, a));
            }
        }
    }

    /// Connected components partition the entity set.
    #[test]
    fn components_partition_entities(spec in graph_spec()) {
        let kg = build(&spec);
        let comps = algo::connected_components(&kg);
        let total: usize = comps.iter().map(Vec::len).sum();
        prop_assert_eq!(total, kg.entity_count());
        let mut seen = std::collections::HashSet::new();
        for comp in &comps {
            for e in comp {
                prop_assert!(seen.insert(*e), "entity appears in two components");
            }
        }
    }

    /// BFS and DFS from the same start visit the same vertex set.
    #[test]
    fn bfs_and_dfs_agree_on_reachability(spec in graph_spec()) {
        let kg = build(&spec);
        let start = multirag_kg::EntityId(0);
        let mut bfs_set = algo::bfs(&kg, start, None);
        let mut dfs_set = algo::dfs(&kg, start);
        bfs_set.sort_unstable();
        dfs_set.sort_unstable();
        prop_assert_eq!(bfs_set, dfs_set);
    }

    /// Distances are symmetric over the undirected view.
    #[test]
    fn distance_is_symmetric(spec in graph_spec()) {
        let kg = build(&spec);
        let a = multirag_kg::EntityId(0);
        let b = multirag_kg::EntityId((spec.n - 1) as u32);
        prop_assert_eq!(algo::distance(&kg, a, b), algo::distance(&kg, b, a));
    }

    /// Slot index returns exactly the triples matching that slot.
    #[test]
    fn slot_index_is_exact(spec in graph_spec()) {
        let kg = build(&spec);
        let attr = kg.find_relation("attr").unwrap();
        for e in kg.entity_ids() {
            let via_index: Vec<_> = kg.slot_triples(e, attr).to_vec();
            let via_scan: Vec<_> = kg
                .iter_triples()
                .filter(|(_, t)| t.subject == e && t.predicate == attr)
                .map(|(id, _)| id)
                .collect();
            prop_assert_eq!(via_index, via_scan);
        }
    }

    /// Value canonical keys respect Eq: equal values share a key.
    #[test]
    fn value_eq_implies_same_canonical_key(a in -100i64..100, b in -100i64..100) {
        let va = Value::Int(a);
        let vb = Value::Float(b as f64);
        if va == vb {
            prop_assert_eq!(va.canonical_key(), vb.canonical_key());
        }
    }

    /// Value distance is symmetric and zero on the diagonal.
    #[test]
    fn value_distance_metric_sanity(a in ".{0,12}", b in ".{0,12}") {
        let va = Value::from(a.clone());
        let vb = Value::from(b.clone());
        prop_assert!((va.distance(&vb) - vb.distance(&va)).abs() < 1e-12);
        prop_assert_eq!(va.distance(&va), 0.0);
        let d = va.distance(&vb);
        prop_assert!((0.0..=1.0).contains(&d));
    }

    /// Interner: intern/resolve round-trips arbitrary strings.
    #[test]
    fn interner_round_trip(words in proptest::collection::vec(".{0,16}", 1..32)) {
        let mut interner = multirag_kg::Interner::new();
        let syms: Vec<_> = words.iter().map(|w| interner.intern(w)).collect();
        for (w, s) in words.iter().zip(&syms) {
            prop_assert_eq!(interner.resolve(*s), w.as_str());
        }
        // Distinct strings must get distinct symbols.
        let distinct: std::collections::HashSet<_> = words.iter().collect();
        let distinct_syms: std::collections::HashSet<_> = syms.iter().collect();
        prop_assert_eq!(distinct.len(), distinct_syms.len());
    }

    /// restrict_to_sources never invents triples and preserves per-source
    /// counts.
    #[test]
    fn restrict_preserves_counts(spec in graph_spec(), keep_first in any::<bool>()) {
        let mut kg = build(&spec);
        // Add a second source with one triple so restriction is nontrivial.
        let src2 = kg.add_source("s2", "csv", "prop");
        let e0 = multirag_kg::EntityId(0);
        let attr = kg.find_relation("attr").unwrap();
        kg.add_triple(e0, attr, Value::Int(999), src2, 0);

        let keep = if keep_first {
            vec![multirag_kg::SourceId(0)]
        } else {
            vec![src2]
        };
        let restricted = kg.restrict_to_sources(&keep);
        let expected = kg
            .triples()
            .iter()
            .filter(|t| keep.contains(&t.source))
            .count();
        prop_assert_eq!(restricted.triple_count(), expected);
    }
}

proptest! {
    /// persist::dump → persist::load is the identity on graph content.
    #[test]
    fn persist_round_trips(spec in graph_spec(), names in proptest::collection::vec("[a-zA-Z0-9 |\\\\]{0,12}", 1..4)) {
        let mut kg = build(&spec);
        // Add literal triples with awkward strings (escaping coverage).
        let src = multirag_kg::SourceId(0);
        let rel = kg.add_relation("note");
        for (i, name) in names.iter().enumerate() {
            let e = multirag_kg::EntityId((i % spec.n) as u32);
            kg.add_triple(e, rel, Value::Str(name.clone()), src, i as u32);
        }
        let text = multirag_kg::persist::dump(&kg);
        let loaded = multirag_kg::persist::load(&text).unwrap();
        prop_assert_eq!(loaded.entity_count(), kg.entity_count());
        prop_assert_eq!(loaded.triple_count(), kg.triple_count());
        prop_assert_eq!(loaded.source_count(), kg.source_count());
        for ((_, a), (_, b)) in kg.iter_triples().zip(loaded.iter_triples()) {
            prop_assert_eq!(a.subject, b.subject);
            prop_assert_eq!(a.source, b.source);
            prop_assert_eq!(a.chunk, b.chunk);
            prop_assert_eq!(a.object.canonical_key(), b.object.canonical_key());
        }
    }

    /// The loader never panics on arbitrary input.
    #[test]
    fn persist_loader_is_total(input in "\\PC{0,128}") {
        let _ = multirag_kg::persist::load(&input);
        let _ = multirag_kg::persist::load(&format!("#multirag-kg v1\n{input}"));
    }
}
