//! Property tests for the `persist` dump format: arbitrary graphs with
//! hostile strings (pipes, backslashes, newlines, carriage returns) and
//! every literal kind must survive `dump → load` with `dump` applied
//! again producing byte-identical text.
//!
//! `Value::List` objects are deliberately out of scope: the format
//! stringifies them (documented lossy), so a list does not round-trip
//! *as a list* — but the stringified form itself still round-trips,
//! which the byte-identity property covers via plain strings.

use multirag_kg::persist::{dump, load};
use multirag_kg::{KnowledgeGraph, Value};
use proptest::prelude::*;

/// Strings exercising every escape path the format has (and the ones it
/// forgot: a trailing `\r` used to be swallowed by `lines()`).
fn tricky_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just("a".to_string()),
            Just("B9".to_string()),
            Just("|".to_string()),
            Just("\\".to_string()),
            Just("\\n".to_string()),
            Just("\n".to_string()),
            Just("\r".to_string()),
            Just("\r\n".to_string()),
            Just("\t".to_string()),
            Just(" ".to_string()),
            Just("é".to_string()),
            Just("#".to_string()),
        ],
        1..8,
    )
    .prop_map(|parts| parts.concat())
}

/// Scalar literal values (lists are stringified by design — see above).
fn literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        (-1e12f64..1e12).prop_map(Value::Float),
        tricky_string().prop_map(Value::Str),
    ]
}

/// One triple description: (subject, object, relation) picks plus
/// (literal-vs-entity, value, source, chunk). Nested because the
/// proptest shim implements `Strategy` for tuples up to arity 6.
type TripleSpec = ((usize, usize, usize), (bool, Value, usize, u32));

fn graph_spec() -> impl Strategy<Value = (Vec<String>, Vec<String>, Vec<String>, Vec<TripleSpec>)> {
    (
        proptest::collection::vec(tricky_string(), 1..4), // source names
        proptest::collection::vec(tricky_string(), 1..5), // entity names
        proptest::collection::vec(tricky_string(), 1..4), // relation names
        proptest::collection::vec(
            (
                (0usize..5, 0usize..5, 0usize..4),
                (any::<bool>(), literal(), 0usize..4, 0u32..8),
            ),
            0..16,
        ),
    )
}

fn build(
    sources: &[String],
    entities: &[String],
    relations: &[String],
    triples: &[TripleSpec],
) -> KnowledgeGraph {
    let mut kg = KnowledgeGraph::new();
    let sids: Vec<_> = sources
        .iter()
        .enumerate()
        .map(|(i, name)| kg.add_source(name, if i % 2 == 0 { "csv" } else { "json" }, "d"))
        .collect();
    let eids: Vec<_> = entities
        .iter()
        .map(|name| kg.add_entity(name, "d"))
        .collect();
    for ((subj, obj, rel), (as_entity, value, src, chunk)) in triples {
        let subject = eids[subj % eids.len()];
        // Interned lazily: the dump format only carries relations that
        // appear on a T line, so pre-registering unused ones would make
        // stats diverge for a reason that is not a persistence bug.
        let predicate = kg.add_relation(&relations[rel % relations.len()]);
        let source = sids[src % sids.len()];
        if *as_entity {
            kg.add_triple(subject, predicate, eids[obj % eids.len()], source, *chunk);
        } else {
            kg.add_triple(subject, predicate, value.clone(), source, *chunk);
        }
    }
    kg
}

proptest! {
    /// `dump(load(dump(g))) == dump(g)` byte-for-byte, and the reloaded
    /// graph is structurally identical.
    #[test]
    fn dump_load_dump_is_byte_identical(
        (sources, entities, relations, triples) in graph_spec(),
    ) {
        let kg = build(&sources, &entities, &relations, &triples);
        let first = dump(&kg);
        let loaded = load(&first).expect("own dump must parse");
        let second = dump(&loaded);
        prop_assert_eq!(&first, &second, "dump is not a fixed point");
        prop_assert_eq!(loaded.stats(), kg.stats());
        prop_assert_eq!(loaded.source_count(), kg.source_count());
        // Every entity is findable under its original (hostile) name.
        for e in kg.entity_ids() {
            prop_assert!(
                loaded.find_entity(kg.entity_name(e), kg.entity_domain(e)).is_some(),
                "entity {:?} lost in round trip", kg.entity_name(e)
            );
        }
        // Triple-level equality: object keys, sources and chunks align.
        for ((_, a), (_, b)) in kg.iter_triples().zip(loaded.iter_triples()) {
            prop_assert_eq!(a.object.canonical_key(), b.object.canonical_key());
            prop_assert_eq!(a.source, b.source);
            prop_assert_eq!(a.chunk, b.chunk);
        }
    }

    /// Null objects and escaped strings keep their exact surface form.
    #[test]
    fn string_values_survive_exactly(s in tricky_string()) {
        let mut kg = KnowledgeGraph::new();
        let src = kg.add_source("s", "csv", "d");
        let e = kg.add_entity("e", "d");
        let r = kg.add_relation("r");
        kg.add_triple(e, r, Value::Str(s.clone()), src, 0);
        kg.add_triple(e, r, Value::Null, src, 1);
        let loaded = load(&dump(&kg)).expect("parses");
        let objects: Vec<_> = loaded.iter_triples().map(|(_, t)| t.object.clone()).collect();
        prop_assert_eq!(objects.len(), 2);
        match &objects[0] {
            multirag_kg::Object::Literal(Value::Str(got)) => prop_assert_eq!(got, &s),
            other => return Err(TestCaseError::Fail(
                format!("expected string literal, got {other:?}"),
            )),
        }
        prop_assert_eq!(&objects[1], &multirag_kg::Object::Literal(Value::Null));
    }
}

/// The concrete bug the proptest above was written to catch: a string
/// ending in `\r` used to be dumped raw, and `load`'s `lines()` treats
/// the resulting `\r\n` as one terminator — silently truncating the
/// value.
#[test]
fn trailing_carriage_return_round_trips() {
    let mut kg = KnowledgeGraph::new();
    let s = kg.add_source("feed\r", "csv", "d");
    let e = kg.add_entity("row\r", "d");
    let r = kg.add_relation("status");
    kg.add_triple(e, r, Value::Str("delayed\r".into()), s, 0);
    let text = dump(&kg);
    let loaded = load(&text).expect("parses");
    assert_eq!(loaded.source_name(multirag_kg::SourceId(0)), "feed\r");
    assert!(loaded.find_entity("row\r", "d").is_some());
    let (_, t) = loaded.iter_triples().next().unwrap();
    assert_eq!(
        t.object,
        multirag_kg::Object::Literal(Value::Str("delayed\r".into()))
    );
    assert_eq!(dump(&loaded), text);
}
