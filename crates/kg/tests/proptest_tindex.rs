//! Property-based tests for the tiered retrieval index: the bitset
//! substrate against naive set algebra, and tier descent against
//! linear-scan oracles on random multi-source graphs.

use multirag_kg::{Bitset, KnowledgeGraph, TieredIndex, TindexCounters, TripleId, Value};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A compact random multi-source graph description: `n` entities,
/// `r` relations, `s` sources, and triples as index tuples. Objects
/// alternate between entity links and literals so both tindex object
/// columns are exercised.
#[derive(Debug, Clone)]
struct GraphSpec {
    n: usize,
    r: usize,
    s: usize,
    triples: Vec<(usize, usize, usize, i64)>,
}

fn graph_spec() -> impl Strategy<Value = GraphSpec> {
    (2usize..16, 1usize..5, 1usize..4).prop_flat_map(|(n, r, s)| {
        let triples = proptest::collection::vec((0..n, 0..r, 0..s, -4i64..4), 0..64);
        (Just(n), Just(r), Just(s), triples).prop_map(|(n, r, s, triples)| GraphSpec {
            n,
            r,
            s,
            triples,
        })
    })
}

fn build(spec: &GraphSpec) -> KnowledgeGraph {
    let mut kg = KnowledgeGraph::new();
    let sources: Vec<_> = (0..spec.s)
        .map(|i| kg.add_source(&format!("s{i}"), "kg", "prop"))
        .collect();
    let relations: Vec<_> = (0..spec.r)
        .map(|i| kg.add_relation(&format!("rel{i}")))
        .collect();
    let entities: Vec<_> = (0..spec.n)
        .map(|i| kg.add_entity(&format!("n{i}"), "prop"))
        .collect();
    for &(subj, rel, src, v) in &spec.triples {
        // Negative payloads become entity links (to the |v|-th
        // entity), non-negative ones literal values.
        if v < 0 {
            let obj = entities[(-v) as usize % spec.n];
            kg.add_triple(entities[subj], relations[rel], obj, sources[src], 0);
        } else {
            kg.add_triple(
                entities[subj],
                relations[rel],
                Value::Int(v),
                sources[src],
                0,
            );
        }
    }
    kg
}

proptest! {
    /// Bitset round-trip: inserted bits are contained, absent bits are
    /// not, count matches the distinct insert count, and iteration
    /// yields the sorted distinct bits.
    #[test]
    fn bitset_round_trip(bits in proptest::collection::vec(0u32..512, 0..64)) {
        let mut set = Bitset::with_capacity(512);
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for &b in &bits {
            prop_assert_eq!(set.insert(b), model.insert(b));
        }
        prop_assert_eq!(set.count(), model.len());
        prop_assert_eq!(set.is_empty(), model.is_empty());
        for b in 0..512u32 {
            prop_assert_eq!(set.contains(b), model.contains(&b));
        }
        let iterated: Vec<u32> = set.iter().collect();
        let expected: Vec<u32> = model.iter().copied().collect();
        prop_assert_eq!(iterated, expected);
    }

    /// Intersection and disjointness agree with naive set algebra, and
    /// the op counter is bounded by the shorter word array.
    #[test]
    fn bitset_intersection_matches_set_algebra(
        a in proptest::collection::vec(0u32..256, 0..48),
        b in proptest::collection::vec(0u32..256, 0..48),
    ) {
        let mut sa = Bitset::with_capacity(256);
        let mut sb = Bitset::with_capacity(256);
        let ma: BTreeSet<u32> = a.iter().copied().collect();
        let mb: BTreeSet<u32> = b.iter().copied().collect();
        for &x in &a { sa.insert(x); }
        for &x in &b { sb.insert(x); }

        let mut ops = 0u64;
        let both = sa.intersect(&sb, &mut ops);
        let expected: Vec<u32> = ma.intersection(&mb).copied().collect();
        let got: Vec<u32> = both.iter().collect();
        prop_assert_eq!(got, expected.clone());
        prop_assert!(ops as usize <= sa.word_count().min(sb.word_count()));

        let mut dops = 0u64;
        prop_assert_eq!(sa.is_disjoint(&sb, &mut dops), expected.is_empty());

        let mut unioned = sa.clone();
        unioned.union_with(&sb);
        let want_union: BTreeSet<u32> = ma.union(&mb).copied().collect();
        prop_assert_eq!(unioned.count(), want_union.len());
        for &x in &want_union {
            prop_assert!(unioned.contains(x));
        }
    }

    /// Tier descent must return exactly what a linear scan over every
    /// triple returns, for every (entity, relation) pair — id-for-id,
    /// in ascending order.
    #[test]
    fn descent_equals_linear_scan(spec in graph_spec()) {
        let kg = build(&spec);
        let index = TieredIndex::build(&kg);
        let mut counters = TindexCounters::default();
        for entity in kg.entity_ids() {
            for rel in 0..kg.relation_count() {
                let relation = multirag_kg::RelationId(rel as u32);
                let scanned: Vec<TripleId> = kg
                    .iter_triples()
                    .filter(|(_, t)| t.subject == entity && t.predicate == relation)
                    .map(|(tid, _)| tid)
                    .collect();
                let descended = index.descend(entity, relation, &mut counters);
                prop_assert_eq!(descended, scanned.clone());
                prop_assert_eq!(index.descend_slice(entity, relation, &mut counters), &scanned[..]);
            }
        }
    }

    /// Claim-tier neighborhoods must agree with the pairwise
    /// `shares_endpoint` predicate (Definition 2's line-graph
    /// adjacency), excluding the claim itself.
    #[test]
    fn neighbors_match_shared_endpoint_definition(spec in graph_spec()) {
        let kg = build(&spec);
        let index = TieredIndex::build(&kg);
        let mut counters = TindexCounters::default();
        for (tid, t) in kg.iter_triples() {
            let expected: Vec<TripleId> = kg
                .iter_triples()
                .filter(|&(oid, o)| oid != tid && t.shares_endpoint(o))
                .map(|(oid, _)| oid)
                .collect();
            let got = index.neighbors_of(tid, &mut counters);
            prop_assert_eq!(got, expected);
        }
    }

    /// The slot tier partitions the claim tier: every triple belongs
    /// to exactly one slot, and that slot's claim list equals the
    /// graph's own slot postings.
    #[test]
    fn slots_partition_claims(spec in graph_spec()) {
        let kg = build(&spec);
        let index = TieredIndex::build(&kg);
        let mut seen = 0usize;
        for slot in (0..index.slot_count() as u32).map(multirag_kg::SlotId) {
            let entity = index.slot_entity(slot);
            let relation = index.slot_relation(slot);
            let claims = index.claims(slot);
            prop_assert!(!claims.is_empty());
            prop_assert_eq!(claims, kg.slot_triples(entity, relation));
            for &claim in claims {
                prop_assert_eq!(index.slot_of_claim(claim), Some(slot));
            }
            seen += claims.len();
        }
        prop_assert_eq!(seen, kg.triple_count());
        prop_assert_eq!(index.claim_count(), kg.triple_count());
    }
}
