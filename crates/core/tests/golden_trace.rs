//! Golden snapshot of the canonical per-query trace export.
//!
//! Pins the exact bytes of `traces_json` for the small movies dataset
//! at seed 42: any change to the trace schema, event ordering, float
//! formatting or pipeline stage accounting shows up here as a diff.
//! After an *intentional* change, regenerate with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p multirag-core --test golden_trace
//! ```

use multirag_core::{MklgpPipeline, MultiRagConfig};
use multirag_datasets::movies::MoviesSpec;
use multirag_obs::{traces_json, Observer};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_query_trace.json");

fn export_traces() -> String {
    let data = MoviesSpec::small().generate(42);
    let obs = Observer::new();
    let mut pipeline =
        MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42).with_observer(obs.clone());
    for query in &data.queries {
        pipeline.answer(query);
    }
    traces_json(42, "movies", &obs.traces())
}

#[test]
fn query_traces_match_golden_snapshot() {
    let json = export_traces();
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::write(GOLDEN_PATH, format!("{json}\n")).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect(
        "missing tests/golden_query_trace.json — generate with UPDATE_GOLDEN=1 cargo test \
         -p multirag-core --test golden_trace",
    );
    assert_eq!(
        json,
        golden.trim_end(),
        "canonical trace export drifted from the golden snapshot; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_export_is_stable_across_runs() {
    assert_eq!(export_traces(), export_traces());
}
