//! Property-based tests over the confidence machinery's invariants.

use multirag_core::confidence::{
    build_profiles, graph_confidence, mcc_filter, mcc_filter_profiles, mcc_filter_reference,
    mi_similarity, nmi_similarity, ClaimProfile, KernelCounters,
};
use multirag_core::homologous::{match_homologous, match_slot};
use multirag_core::{HistoryStore, MultiRagConfig};
use multirag_kg::{KeyInterner, KnowledgeGraph, SourceId, TripleId, Value};
use multirag_llmsim::{MockLlm, Schema};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-50i64..50).prop_map(Value::Int),
        (-10.0f64..10.0).prop_map(Value::Float),
        "[a-c]{1,6}".prop_map(Value::from),
        proptest::collection::vec("[a-c]{1,4}".prop_map(Value::from), 1..4).prop_map(Value::List),
    ]
}

/// A slot with `values.len()` claims, one per source.
fn slot_graph(
    values: &[Value],
) -> (
    KnowledgeGraph,
    multirag_kg::EntityId,
    multirag_kg::RelationId,
) {
    let mut kg = KnowledgeGraph::new();
    let e = kg.add_entity("X", "d");
    let r = kg.add_relation("attr");
    for (i, v) in values.iter().enumerate() {
        let s = kg.add_source(&format!("s{i}"), "json", "d");
        kg.add_triple(e, r, v.clone(), s, 0);
    }
    (kg, e, r)
}

proptest! {
    /// MI similarity is symmetric, bounded, and 1 on the diagonal.
    #[test]
    fn mi_similarity_is_a_bounded_symmetric_agreement(
        a in value_strategy(),
        b in value_strategy(),
    ) {
        let ab = mi_similarity(&a, &b);
        let ba = mi_similarity(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9, "asymmetric: {ab} vs {ba}");
        prop_assert!((0.0..=1.0).contains(&ab), "out of range: {ab}");
        let aa = mi_similarity(&a, &a);
        prop_assert!(aa > 0.99, "self-similarity {aa} for {a:?}");
    }

    /// Graph confidence is a probability-like score, maximal for
    /// unanimous groups.
    #[test]
    fn graph_confidence_bounds_and_unanimity(
        values in proptest::collection::vec(value_strategy(), 2..8),
    ) {
        let (kg, e, r) = slot_graph(&values);
        let sets = match_slot(&kg, e, r);
        let group = &sets.groups[0];
        let gc = graph_confidence(&kg, group);
        prop_assert!((0.0..=1.0).contains(&gc.value));

        // A unanimous version of the same slot scores ≥ the mixed one.
        let unanimous = vec![values[0].clone(); values.len()];
        let (kg2, e2, r2) = slot_graph(&unanimous);
        let sets2 = match_slot(&kg2, e2, r2);
        let gc2 = graph_confidence(&kg2, &sets2.groups[0]);
        prop_assert!(gc2.value >= gc.value - 1e-9);
        prop_assert!(gc2.value > 0.99, "unanimity must max out: {}", gc2.value);
    }

    /// MCC conserves claims: every per-source node lands in kept or
    /// dropped, and at least one claim is always kept.
    #[test]
    fn mcc_filter_conserves_nodes(
        values in proptest::collection::vec(value_strategy(), 2..8),
        graph_level in any::<bool>(),
        node_level in any::<bool>(),
    ) {
        let (kg, e, r) = slot_graph(&values);
        let sets = match_slot(&kg, e, r);
        let group = &sets.groups[0];
        let mut llm = MockLlm::new(Schema::new(), 7);
        let history = HistoryStore::paper_defaults();
        let config = MultiRagConfig {
            enable_graph_level: graph_level,
            enable_node_level: node_level,
            ..MultiRagConfig::default()
        };
        let outcome = mcc_filter(&kg, group, &mut llm, &history, &config, 4);
        // Nodes are per-source; every source asserted exactly once here.
        prop_assert_eq!(outcome.kept.len() + outcome.dropped.len(), values.len());
        prop_assert!(!outcome.kept.is_empty(), "must never abstain on a live slot");
        for node in outcome.kept.iter().chain(outcome.dropped.iter()) {
            prop_assert!(node.confidence.is_finite());
            prop_assert!((0.0..=2.0 + 1e-9).contains(&node.confidence));
        }
    }

    /// Homologous matching partitions all triples of a random graph.
    #[test]
    fn homologous_matching_partitions_triples(
        slots in proptest::collection::vec(
            (0u32..6, 0u32..3, proptest::collection::vec(value_strategy(), 1..4)),
            1..20,
        ),
    ) {
        let mut kg = KnowledgeGraph::new();
        let sources: Vec<_> = (0..4)
            .map(|i| kg.add_source(&format!("s{i}"), "json", "d"))
            .collect();
        for (ei, ri, values) in &slots {
            let e = kg.add_entity(&format!("e{ei}"), "d");
            let r = kg.add_relation(&format!("r{ri}"));
            for (k, v) in values.iter().enumerate() {
                kg.add_triple(e, r, v.clone(), sources[k % sources.len()], 0);
            }
        }
        let sets = match_homologous(&kg);
        prop_assert_eq!(sets.coverage(), kg.triple_count());
        // Every group's triples share the same slot.
        for group in &sets.groups {
            for &tid in &group.triples {
                let t = kg.triple(tid);
                prop_assert_eq!(t.subject, group.entity);
                prop_assert_eq!(t.predicate, group.relation);
            }
            prop_assert!(group.triples.len() >= 2);
        }
        // Isolated points fill slots of size exactly 1.
        for &tid in &sets.isolated {
            let t = kg.triple(tid);
            prop_assert_eq!(kg.slot_triples(t.subject, t.predicate).len(), 1);
        }
    }

    /// The history store's credibility is always a probability and
    /// moves in the observed direction.
    #[test]
    fn history_credibility_is_bounded_and_directional(
        updates in proptest::collection::vec((0usize..20, 1usize..20), 1..20),
    ) {
        let store = HistoryStore::paper_defaults();
        let source = SourceId(0);
        let mut seen_correct = 0usize;
        let mut seen_total = 0usize;
        for (correct, extra) in updates {
            let total = correct + extra;
            store.record(source, correct, total);
            seen_correct += correct;
            seen_total += total;
            let c = store.credibility(source);
            prop_assert!((0.0..=1.0).contains(&c));
        }
        let observed = seen_correct as f64 / seen_total as f64;
        let c = store.credibility(source);
        // Smoothed toward the prior, so strictly between prior and observed
        // (or equal at the boundary).
        let (lo, hi) = if observed < 0.5 { (observed, 0.5) } else { (0.5, observed) };
        prop_assert!(c >= lo - 1e-9 && c <= hi + 1e-9, "c {c} outside [{lo}, {hi}]");
    }
}

/// A slot where sources may assert multiple claims: `assignments[i]`
/// is the source index of `values[i]`, so the profile builder's list
/// aggregation path gets exercised alongside the scalar path.
fn multi_claim_slot(
    values: &[Value],
    assignments: &[usize],
    sources: usize,
) -> (
    KnowledgeGraph,
    multirag_kg::EntityId,
    multirag_kg::RelationId,
) {
    let mut kg = KnowledgeGraph::new();
    let e = kg.add_entity("X", "d");
    let r = kg.add_relation("attr");
    let ids: Vec<SourceId> = (0..sources)
        .map(|i| kg.add_source(&format!("s{i}"), "json", "d"))
        .collect();
    for (v, &si) in values.iter().zip(assignments) {
        let source = *ids.get(si % sources).expect("source index in range");
        kg.add_triple(e, r, v.clone(), source, 0);
    }
    (kg, e, r)
}

proptest! {
    /// The merge-join NMI kernel is bit-identical — `to_bits()`, not
    /// ε-close — to the reference `mi_similarity` on arbitrary value
    /// pairs, lists included.
    #[test]
    fn nmi_kernel_is_bit_identical_to_mi_reference(
        a in value_strategy(),
        b in value_strategy(),
    ) {
        let (a, b) = (a.standardized(), b.standardized());
        let kg = KnowledgeGraph::new();
        let mut keys = KeyInterner::for_graph(&kg);
        let pa = ClaimProfile::build(TripleId(0), a.clone(), SourceId(0), None, &mut keys);
        let pb = ClaimProfile::build(TripleId(1), b.clone(), SourceId(1), None, &mut keys);
        let kernel = nmi_similarity(&pa, &pb, &keys);
        let reference = mi_similarity(&a, &b);
        prop_assert_eq!(
            kernel.to_bits(),
            reference.to_bits(),
            "kernel {} vs reference {} for {:?} / {:?}",
            kernel,
            reference,
            a,
            b
        );
        // And symmetric at the bit level too.
        let flipped = nmi_similarity(&pb, &pa, &keys);
        prop_assert_eq!(kernel.to_bits(), flipped.to_bits());
    }

    /// The full profile-kernel filter reproduces the reference filter
    /// bit-for-bit on random multi-claim slots: same gate decision,
    /// same kept/dropped partition, every confidence field identical
    /// to the last ULP, same simulated LLM cost.
    #[test]
    fn kernel_filter_matches_reference_on_random_slots(
        values in proptest::collection::vec(value_strategy(), 2..10),
        assignments in proptest::collection::vec(0usize..5, 10),
        sources in 2usize..5,
        graph_level in any::<bool>(),
        node_level in any::<bool>(),
    ) {
        let (kg, e, r) = multi_claim_slot(&values, &assignments, sources);
        let sets = match_slot(&kg, e, r);
        prop_assume!(!sets.groups.is_empty());
        let group = &sets.groups[0];
        let config = MultiRagConfig {
            enable_graph_level: graph_level,
            enable_node_level: node_level,
            ..MultiRagConfig::default()
        };
        let history = HistoryStore::paper_defaults();

        let mut keys = KeyInterner::for_graph(&kg);
        let mut counters = KernelCounters::default();
        let profiles = build_profiles(&kg, group, &mut keys);
        let mut llm_k = MockLlm::new(Schema::new(), 7);
        let kernel = mcc_filter_profiles(
            &kg, group, &profiles, &keys, &mut llm_k, &history, &config, 4, &mut counters,
        );
        let mut llm_r = MockLlm::new(Schema::new(), 7);
        let reference = mcc_filter_reference(&kg, group, &mut llm_r, &history, &config, 4);

        match (kernel.graph, reference.graph) {
            (Some(x), Some(y)) => {
                prop_assert_eq!(x.value.to_bits(), y.value.to_bits());
                prop_assert_eq!(x.unordered_pairs, y.unordered_pairs);
                prop_assert_eq!(x.ordered_pairs, y.ordered_pairs);
            }
            (None, None) => {}
            _ => prop_assert!(false, "graph confidence presence mismatch"),
        }
        prop_assert_eq!(kernel.gated, reference.gated);
        prop_assert_eq!(kernel.kept.len(), reference.kept.len());
        prop_assert_eq!(kernel.dropped.len(), reference.dropped.len());
        for (a, b) in kernel
            .kept
            .iter()
            .zip(&reference.kept)
            .chain(kernel.dropped.iter().zip(&reference.dropped))
        {
            prop_assert_eq!(a.triple, b.triple);
            prop_assert_eq!(&a.value, &b.value);
            prop_assert_eq!(a.source, b.source);
            prop_assert_eq!(a.consistency.to_bits(), b.consistency.to_bits());
            prop_assert_eq!(a.auth_llm.to_bits(), b.auth_llm.to_bits());
            prop_assert_eq!(a.auth_hist.to_bits(), b.auth_hist.to_bits());
            prop_assert_eq!(a.authority.to_bits(), b.authority.to_bits());
            prop_assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
        }
        prop_assert_eq!(
            kernel.graph_cost.sim_ms.to_bits(),
            reference.graph_cost.sim_ms.to_bits()
        );
        prop_assert_eq!(
            kernel.node_cost.sim_ms.to_bits(),
            reference.node_cost.sim_ms.to_bits()
        );
        prop_assert_eq!(llm_k.usage(), llm_r.usage(), "identical LLM call streams");
    }
}
