//! Property-based tests for index-backed retrieval: tiered homologous
//! matching against the sorted-scan oracle, and worker-count
//! invariance of concurrent tier descents over a shared index, on
//! random multi-source graphs.

use multirag_core::homologous::{match_homologous, match_homologous_tiered};
use multirag_kg::{
    EntityId, KnowledgeGraph, RelationId, TieredIndex, TindexCounters, TripleId, Value,
};
use proptest::prelude::*;

/// A compact random multi-source graph description: `n` entities,
/// `r` relations, `s` sources, triples as index tuples with an
/// integer payload.
#[derive(Debug, Clone)]
struct GraphSpec {
    n: usize,
    r: usize,
    s: usize,
    triples: Vec<(usize, usize, usize, i64)>,
}

fn graph_spec() -> impl Strategy<Value = GraphSpec> {
    (2usize..14, 1usize..4, 1usize..4).prop_flat_map(|(n, r, s)| {
        let triples = proptest::collection::vec((0..n, 0..r, 0..s, -4i64..4), 1..56);
        (Just(n), Just(r), Just(s), triples).prop_map(|(n, r, s, triples)| GraphSpec {
            n,
            r,
            s,
            triples,
        })
    })
}

fn build(spec: &GraphSpec) -> KnowledgeGraph {
    let mut kg = KnowledgeGraph::new();
    let sources: Vec<_> = (0..spec.s)
        .map(|i| kg.add_source(&format!("s{i}"), "json", "prop"))
        .collect();
    let relations: Vec<_> = (0..spec.r)
        .map(|i| kg.add_relation(&format!("rel{i}")))
        .collect();
    let entities: Vec<_> = (0..spec.n)
        .map(|i| kg.add_entity(&format!("n{i}"), "prop"))
        .collect();
    for &(subj, rel, src, v) in &spec.triples {
        if v < 0 {
            let obj = entities[(-v) as usize % spec.n];
            kg.add_triple(entities[subj], relations[rel], obj, sources[src], 0);
        } else {
            kg.add_triple(
                entities[subj],
                relations[rel],
                Value::Int(v),
                sources[src],
                0,
            );
        }
    }
    kg
}

/// Every (entity, relation) slot key of the graph, in id order — the
/// query universe for the descent tests.
fn slot_universe(kg: &KnowledgeGraph) -> Vec<(EntityId, RelationId)> {
    let mut keys = Vec::new();
    for entity in kg.entity_ids() {
        for rel in 0..kg.relation_count() {
            keys.push((entity, RelationId(rel as u32)));
        }
    }
    keys
}

proptest! {
    /// Tiered homologous matching must reproduce the sorted-scan
    /// oracle exactly: same groups (entity, relation, members,
    /// distinct-source counts), same isolated list.
    #[test]
    fn tiered_matching_equals_scan_oracle(spec in graph_spec()) {
        let kg = build(&spec);
        let oracle = match_homologous(&kg);
        let index = TieredIndex::build(&kg);
        let tiered = match_homologous_tiered(&index);
        prop_assert_eq!(tiered.groups, oracle.groups);
        prop_assert_eq!(tiered.isolated, oracle.isolated);
        prop_assert_eq!(tiered.coverage(), kg.triple_count());
    }

    /// Concurrent descents over one shared index are worker-count
    /// invariant: partitioning the query universe over 1, 2 or 4
    /// threads yields identical per-query candidate id-sets and
    /// identical summed descent counters.
    #[test]
    fn descents_are_worker_count_invariant(spec in graph_spec()) {
        let kg = build(&spec);
        let index = TieredIndex::build(&kg);
        let queries = slot_universe(&kg);

        let run = |workers: usize| -> (Vec<Vec<TripleId>>, TindexCounters) {
            let chunk = queries.len().div_ceil(workers).max(1);
            let parts: Vec<(usize, Vec<Vec<TripleId>>, TindexCounters)> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = queries
                        .chunks(chunk)
                        .enumerate()
                        .map(|(slice_no, slice)| {
                            let index = &index;
                            scope.spawn(move || {
                                let mut counters = TindexCounters::default();
                                let hits: Vec<Vec<TripleId>> = slice
                                    .iter()
                                    .map(|&(e, r)| index.descend(e, r, &mut counters))
                                    .collect();
                                (slice_no, hits, counters)
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
            let mut parts = parts;
            parts.sort_by_key(|&(slice_no, _, _)| slice_no);
            let mut all = Vec::with_capacity(queries.len());
            let mut total = TindexCounters::default();
            for (_, hits, counters) in parts {
                all.extend(hits);
                total.tier_descents += counters.tier_descents;
                total.bitset_and_ops += counters.bitset_and_ops;
                total.candidates_pruned += counters.candidates_pruned;
            }
            (all, total)
        };

        let (serial, serial_counters) = run(1);
        prop_assert_eq!(serial_counters.tier_descents, queries.len() as u64);
        for workers in [2usize, 4] {
            let (parallel, parallel_counters) = run(workers);
            prop_assert_eq!(&parallel, &serial);
            prop_assert_eq!(parallel_counters, serial_counters);
        }
    }

    /// Index-backed descent answers agree with the graph's own slot
    /// postings for every key in the universe.
    #[test]
    fn descent_matches_graph_postings(spec in graph_spec()) {
        let kg = build(&spec);
        let index = TieredIndex::build(&kg);
        let mut counters = TindexCounters::default();
        for (entity, relation) in slot_universe(&kg) {
            let descended = index.descend(entity, relation, &mut counters);
            prop_assert_eq!(&descended[..], kg.slot_triples(entity, relation));
        }
    }
}
