//! Property test for the epoch-snapshot correctness foundation: an
//! [`IncrementalMlg`] fed triples one at a time — in *any* order — must
//! agree exactly with the batch [`MultiSourceLineGraph`] homologous
//! grouping over the same fused graph. Serving epochs rely on this: the
//! writer streams updates into the incremental index and publishes it
//! as if it had been rebuilt from scratch.

use multirag_core::homologous::HomologousSets;
use multirag_core::{IncrementalMlg, MultiSourceLineGraph};
use multirag_kg::{KnowledgeGraph, Value};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-20i64..20).prop_map(Value::Int),
        "[a-d]{1,4}".prop_map(Value::from),
    ]
}

/// (subject pick, relation pick, source pick, value): slot collisions
/// are the interesting case, so the pick spaces are kept small.
type TripleSpec = (usize, usize, usize, Value);

fn spec() -> impl Strategy<Value = (Vec<TripleSpec>, u64)> {
    (
        proptest::collection::vec((0usize..4, 0usize..3, 0usize..4, value_strategy()), 0..40),
        any::<u64>(),
    )
}

fn build_graph(triples: &[TripleSpec]) -> KnowledgeGraph {
    let mut kg = KnowledgeGraph::new();
    let entities: Vec<_> = (0..4)
        .map(|i| kg.add_entity(&format!("e{i}"), "d"))
        .collect();
    let relations: Vec<_> = (0..3).map(|i| kg.add_relation(&format!("r{i}"))).collect();
    let sources: Vec<_> = (0..4)
        .map(|i| kg.add_source(&format!("s{i}"), "json", "d"))
        .collect();
    for (e, r, s, v) in triples {
        kg.add_triple(entities[*e], relations[*r], v.clone(), sources[*s], 0);
    }
    kg
}

/// Deterministic Fisher–Yates driven by a splitmix-style stream, so the
/// insertion order is arbitrary but reproducible from the seed.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

fn assert_sets_equal(
    streamed: &HomologousSets,
    batch: &HomologousSets,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(&streamed.groups, &batch.groups);
    prop_assert_eq!(&streamed.isolated, &batch.isolated);
    Ok(())
}

proptest! {
    /// Streamed one-at-a-time insertion in shuffled order reproduces the
    /// batch homologous sets exactly — groups, membership order,
    /// source counts and isolated points.
    #[test]
    fn streamed_index_matches_batch_grouping((triples, order_seed) in spec()) {
        let kg = build_graph(&triples);
        let batch = MultiSourceLineGraph::build(&kg);

        let mut stream: Vec<_> = kg
            .iter_triples()
            .map(|(tid, t)| (t.subject, t.predicate, t.source, tid))
            .collect();
        shuffle(&mut stream, order_seed);

        let mut index = IncrementalMlg::new();
        for (subject, predicate, source, tid) in &stream {
            let cardinality = index.insert(*subject, *predicate, *source, *tid);
            prop_assert!(cardinality >= 1);
        }
        prop_assert_eq!(index.triple_count(), kg.triple_count());
        assert_sets_equal(&index.to_sets(), batch.sets())?;

        // Re-inserting the whole stream is a no-op (idempotence).
        for (subject, predicate, source, tid) in &stream {
            index.insert(*subject, *predicate, *source, *tid);
        }
        prop_assert_eq!(index.triple_count(), kg.triple_count());
        assert_sets_equal(&index.to_sets(), batch.sets())?;

        // And the from_graph constructor is the same fixed point.
        assert_sets_equal(&IncrementalMlg::from_graph(&kg).to_sets(), batch.sets())?;
    }

    /// Per-slot queries on the streamed index agree with the batch MLG's
    /// slot groups (the per-query extraction path used while serving).
    #[test]
    fn slot_views_agree((triples, order_seed) in spec()) {
        let kg = build_graph(&triples);
        let batch = MultiSourceLineGraph::build(&kg);
        let mut stream: Vec<_> = kg
            .iter_triples()
            .map(|(tid, t)| (t.subject, t.predicate, t.source, tid))
            .collect();
        shuffle(&mut stream, order_seed);
        let mut index = IncrementalMlg::new();
        for (subject, predicate, source, tid) in stream {
            index.insert(subject, predicate, source, tid);
        }
        for e in kg.entity_ids() {
            for r in 0..3u32 {
                let r = multirag_kg::RelationId(r);
                let streamed = index.slot_group(e, r);
                prop_assert_eq!(
                    streamed.as_ref(),
                    batch.slot_group(e, r),
                    "slot ({e:?}, {r:?}) diverged"
                );
            }
        }
    }
}
