//! The incremental source-credibility store behind `Auth_hist`
//! (Eq. 11, following Zhu et al.'s FusionQuery-style estimation).
//!
//! Each source carries a running credibility `Pr^h(D)`: the fraction of
//! its historical query-relevant claims that turned out correct,
//! seeded with `H` pseudo-observations at a neutral prior. The store is
//! shared across queries (and threads — the harness fans out).

use multirag_kg::SourceId;
use multirag_obs::MetricsRegistry;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// Per-source history: pseudo-count-smoothed correctness.
#[derive(Debug, Clone, Copy)]
struct SourceHistory {
    /// Correct claims observed (plus prior mass).
    correct: f64,
    /// Total claims observed (plus prior mass).
    total: f64,
}

/// Thread-safe historical credibility store.
#[derive(Debug)]
pub struct HistoryStore {
    prior: f64,
    pseudo: f64,
    inner: RwLock<HashMap<SourceId, SourceHistory>>,
    metrics: RwLock<Option<MetricsRegistry>>,
    /// When set, [`record`](HistoryStore::record) becomes a no-op: the
    /// serving path freezes credibility for the lifetime of an epoch so
    /// answers are pure functions of `(epoch, query)` regardless of the
    /// order concurrent workers finish in. Feedback is batched outside
    /// the store and folded in at the next epoch publish.
    frozen: AtomicBool,
}

impl HistoryStore {
    /// Creates a store with `pseudo` pseudo-observations at credibility
    /// `prior` per source (the paper seeds H = 50).
    pub fn new(pseudo: f64, prior: f64) -> Self {
        Self {
            prior: prior.clamp(0.0, 1.0),
            pseudo: pseudo.max(0.0),
            inner: RwLock::new(HashMap::new()),
            metrics: RwLock::new(None),
            frozen: AtomicBool::new(false),
        }
    }

    /// Attaches a metrics registry; every subsequent [`record`]
    /// increments `history_updates_total` / `history_claims_total` /
    /// `history_correct_claims_total` and refreshes the
    /// `history_tracked_sources` gauge.
    ///
    /// [`record`]: HistoryStore::record
    pub fn attach_metrics(&self, metrics: MetricsRegistry) {
        *self.metrics.write() = Some(metrics);
    }

    /// The paper's defaults: H = 50 pseudo-entities at a neutral 0.5.
    pub fn paper_defaults() -> Self {
        Self::new(50.0, 0.5)
    }

    /// Historical credibility `Pr^h(D)` of a source.
    pub fn credibility(&self, source: SourceId) -> f64 {
        let map = self.inner.read();
        match map.get(&source) {
            Some(h) => h.correct / h.total,
            None => self.prior,
        }
    }

    /// Number of historical observations for a source (`H` plus
    /// updates).
    pub fn observations(&self, source: SourceId) -> f64 {
        let map = self.inner.read();
        map.get(&source).map(|h| h.total).unwrap_or(self.pseudo)
    }

    /// Records the outcome of one query for a source: `correct` of
    /// `total` claims it contributed were right.
    pub fn record(&self, source: SourceId, correct: usize, total: usize) {
        if total == 0 || self.frozen.load(Ordering::Relaxed) {
            return;
        }
        let mut map = self.inner.write();
        let entry = map.entry(source).or_insert(SourceHistory {
            correct: self.pseudo * self.prior,
            total: self.pseudo,
        });
        entry.correct += correct as f64;
        entry.total += total as f64;
        let tracked = map.len();
        drop(map);
        if let Some(metrics) = self.metrics.read().as_ref() {
            metrics.inc("history_updates_total", 1);
            metrics.inc("history_claims_total", total as u64);
            metrics.inc("history_correct_claims_total", correct as u64);
            metrics.gauge_set("history_tracked_sources", tracked as f64);
        }
    }

    /// Eq. 11: `Auth_hist(v) = (H·Pr^h(D) + Σ Pr(v_p)) / (H + |Data(q,
    /// subSG')|)` — blends the source's history with the support the
    /// node's value enjoys among the current query's slot data.
    ///
    /// * `source` — the source asserting the node.
    /// * `current_support` — `Σ Pr(v_p)`: summed agreement mass the
    ///   node's value has in the current slot (one unit per agreeing
    ///   claim).
    /// * `slot_size` — `|Data(q, subSG'_i)|`: total claims in the slot.
    pub fn auth_hist(&self, source: SourceId, current_support: f64, slot_size: usize) -> f64 {
        let h = self.observations(source);
        let pr_h = self.credibility(source);
        ((h * pr_h) + current_support) / (h + slot_size as f64)
    }

    /// Resets all history (between experiment phases).
    pub fn reset(&self) {
        self.inner.write().clear();
    }

    /// Freezes the store: further [`record`](HistoryStore::record)
    /// calls are ignored until [`thaw`](HistoryStore::thaw).
    pub fn freeze(&self) {
        self.frozen.store(true, Ordering::Relaxed);
    }

    /// Re-enables recording after a [`freeze`](HistoryStore::freeze).
    pub fn thaw(&self) {
        self.frozen.store(false, Ordering::Relaxed);
    }

    /// Whether the store is currently frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen.load(Ordering::Relaxed)
    }
}

impl Clone for HistoryStore {
    /// Clones the credibility state. The metrics attachment is shared;
    /// the frozen flag is copied (each clone toggles independently).
    fn clone(&self) -> Self {
        Self {
            prior: self.prior,
            pseudo: self.pseudo,
            inner: RwLock::new(self.inner.read().clone()),
            metrics: RwLock::new(self.metrics.read().clone()),
            frozen: AtomicBool::new(self.is_frozen()),
        }
    }
}

impl Default for HistoryStore {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unseen_sources_get_the_prior() {
        let store = HistoryStore::paper_defaults();
        assert_eq!(store.credibility(SourceId(0)), 0.5);
        assert_eq!(store.observations(SourceId(0)), 50.0);
    }

    #[test]
    fn records_move_credibility_toward_observed_accuracy() {
        let store = HistoryStore::paper_defaults();
        let s = SourceId(1);
        // 100 correct out of 100.
        store.record(s, 100, 100);
        let c = store.credibility(s);
        assert!(c > 0.8, "credibility {c}");
        // A bad source sinks.
        let bad = SourceId(2);
        store.record(bad, 0, 100);
        assert!(store.credibility(bad) < 0.2);
    }

    #[test]
    fn pseudo_counts_damp_early_updates() {
        let heavy = HistoryStore::new(500.0, 0.5);
        let light = HistoryStore::new(5.0, 0.5);
        let s = SourceId(3);
        heavy.record(s, 10, 10);
        light.record(s, 10, 10);
        assert!(light.credibility(s) > heavy.credibility(s));
    }

    #[test]
    fn zero_total_records_are_ignored() {
        let store = HistoryStore::paper_defaults();
        store.record(SourceId(4), 0, 0);
        assert_eq!(store.credibility(SourceId(4)), 0.5);
    }

    #[test]
    fn auth_hist_blends_history_and_current_support() {
        let store = HistoryStore::new(50.0, 0.5);
        let s = SourceId(5);
        // Fully supported in a 4-claim slot.
        let high = store.auth_hist(s, 4.0, 4);
        // Unsupported in the same slot.
        let low = store.auth_hist(s, 0.0, 4);
        assert!(high > low);
        assert!((0.0..=1.0).contains(&high));
        assert!((0.0..=1.0).contains(&low));
        // With no current data it reduces to the historical credibility.
        let neutral = store.auth_hist(s, 0.0, 0);
        assert!((neutral - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auth_hist_tracks_source_history() {
        let store = HistoryStore::paper_defaults();
        let good = SourceId(6);
        let bad = SourceId(7);
        store.record(good, 90, 100);
        store.record(bad, 10, 100);
        assert!(store.auth_hist(good, 2.0, 4) > store.auth_hist(bad, 2.0, 4));
    }

    #[test]
    fn reset_restores_priors() {
        let store = HistoryStore::paper_defaults();
        store.record(SourceId(8), 50, 50);
        assert!(store.credibility(SourceId(8)) > 0.5);
        store.reset();
        assert_eq!(store.credibility(SourceId(8)), 0.5);
    }

    #[test]
    fn attached_metrics_count_record_outcomes() {
        let store = HistoryStore::paper_defaults();
        let metrics = MetricsRegistry::new();
        store.attach_metrics(metrics.clone());
        store.record(SourceId(0), 3, 4);
        store.record(SourceId(1), 1, 2);
        store.record(SourceId(2), 0, 0); // ignored — no update counted
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("history_updates_total"), 2);
        assert_eq!(snap.counter("history_claims_total"), 6);
        assert_eq!(snap.counter("history_correct_claims_total"), 4);
        assert_eq!(snap.gauge("history_tracked_sources"), Some(2.0));
    }

    #[test]
    fn frozen_stores_ignore_records_until_thawed() {
        let store = HistoryStore::paper_defaults();
        store.freeze();
        assert!(store.is_frozen());
        store.record(SourceId(9), 100, 100);
        assert_eq!(store.credibility(SourceId(9)), 0.5);
        store.thaw();
        store.record(SourceId(9), 100, 100);
        assert!(store.credibility(SourceId(9)) > 0.5);
    }

    #[test]
    fn clones_carry_state_but_diverge_afterwards() {
        let store = HistoryStore::paper_defaults();
        store.record(SourceId(10), 40, 50);
        let copy = store.clone();
        assert_eq!(
            copy.credibility(SourceId(10)),
            store.credibility(SourceId(10))
        );
        copy.record(SourceId(10), 0, 50);
        assert!(copy.credibility(SourceId(10)) < store.credibility(SourceId(10)));
    }

    #[test]
    fn concurrent_updates_are_safe() {
        let store = std::sync::Arc::new(HistoryStore::paper_defaults());
        let mut handles = Vec::new();
        for i in 0..8 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    store.record(SourceId(i % 2), 1, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 800 observations split over two sources + pseudo counts.
        let total = store.observations(SourceId(0)) + store.observations(SourceId(1));
        assert_eq!(total, 800.0 + 100.0);
    }
}
