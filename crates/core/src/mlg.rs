//! The multi-source line graph (MLG) — §III-B / Definition 2 / Fig. 4.
//!
//! [`MultiSourceLineGraph`] combines the triple line-graph transform
//! with the homologous-group index: every homologous slot's triples
//! form a clique; the whole structure is indexed by entity so per-query
//! extraction touches only the relevant cluster instead of traversing
//! the original graph — the source of the MKA module's 10–100× query
//! acceleration (Table III).

use crate::homologous::{
    match_homologous, match_homologous_tiered, HomologousGroup, HomologousSets,
};
use multirag_kg::{
    EntityId, FxHashMap, KnowledgeGraph, LineGraph, RelationId, TieredIndex, TripleId,
};

/// The aggregated multi-source line graph with its slot index.
///
/// # Examples
///
/// ```
/// use multirag_core::MultiSourceLineGraph;
/// use multirag_datasets::flights::FlightsSpec;
///
/// let dataset = FlightsSpec::small().generate(7);
/// let mlg = MultiSourceLineGraph::build(&dataset.graph);
/// let stats = mlg.stats();
/// assert!(stats.groups > 0, "dense flights data must aggregate");
/// // Every homologous group is a clique in the line graph (Fig. 4).
/// assert!(mlg.sets().groups.iter().all(|g| mlg.group_is_clique(g)));
/// ```
#[derive(Debug, Clone)]
pub struct MultiSourceLineGraph {
    /// The underlying triple line graph over the whole knowledge graph.
    line_graph: LineGraph,
    /// Homologous groups + isolated points.
    sets: HomologousSets,
    /// Entity → group indices (into `sets.groups`).
    by_entity: FxHashMap<EntityId, Vec<u32>>,
    /// TripleId → line-graph node position.
    node_of_triple: FxHashMap<TripleId, u32>,
}

impl MultiSourceLineGraph {
    /// Builds the MLG for a knowledge graph: line-graph transform plus
    /// homologous matching and indexing.
    pub fn build(kg: &KnowledgeGraph) -> Self {
        Self::assemble(LineGraph::from_graph(kg), match_homologous(kg))
    }

    /// Builds the MLG from a prebuilt [`TieredIndex`]: homologous
    /// matching runs by tier descent (one pass over the sorted slot
    /// columns, no re-sort) instead of the keyed scan. The result is
    /// byte-identical to [`MultiSourceLineGraph::build`].
    pub fn build_with_index(kg: &KnowledgeGraph, index: &TieredIndex) -> Self {
        Self::assemble(LineGraph::from_graph(kg), match_homologous_tiered(index))
    }

    fn assemble(line_graph: LineGraph, sets: HomologousSets) -> Self {
        let mut by_entity: FxHashMap<EntityId, Vec<u32>> = FxHashMap::default();
        for (gi, group) in sets.groups.iter().enumerate() {
            by_entity.entry(group.entity).or_default().push(gi as u32);
        }
        let node_of_triple: FxHashMap<TripleId, u32> = line_graph
            .triple_ids()
            .iter()
            .enumerate()
            .map(|(pos, &tid)| (tid, pos as u32))
            .collect();
        Self {
            line_graph,
            sets,
            by_entity,
            node_of_triple,
        }
    }

    /// The underlying line graph.
    pub fn line_graph(&self) -> &LineGraph {
        &self.line_graph
    }

    /// All homologous groups and isolated points.
    pub fn sets(&self) -> &HomologousSets {
        &self.sets
    }

    /// Groups anchored at `entity`.
    pub fn groups_of(&self, entity: EntityId) -> Vec<&HomologousGroup> {
        self.by_entity
            .get(&entity)
            .map(|idxs| {
                idxs.iter()
                    .map(|&i| &self.sets.groups[i as usize])
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The group of a specific slot.
    pub fn slot_group(&self, entity: EntityId, relation: RelationId) -> Option<&HomologousGroup> {
        self.sets.group_for(entity, relation)
    }

    /// Line-graph node position of a triple.
    pub fn node_of(&self, triple: TripleId) -> Option<u32> {
        self.node_of_triple.get(&triple).copied()
    }

    /// Checks the Fig. 4 structural invariant: a homologous group's
    /// triples must form a clique in the line graph (they all share the
    /// slot's subject entity).
    pub fn group_is_clique(&self, group: &HomologousGroup) -> bool {
        let nodes: Vec<u32> = group
            .triples
            .iter()
            .filter_map(|&tid| self.node_of(tid))
            .collect();
        nodes.len() == group.triples.len() && self.line_graph.is_clique(&nodes)
    }

    /// Number of line-graph nodes.
    pub fn node_count(&self) -> usize {
        self.line_graph.node_count()
    }

    /// Summary statistics for benchmarking.
    pub fn stats(&self) -> MlgStats {
        MlgStats {
            nodes: self.line_graph.node_count(),
            edges: self.line_graph.edge_count(),
            groups: self.sets.groups.len(),
            isolated: self.sets.isolated.len(),
            largest_group: self.sets.groups.iter().map(|g| g.num()).max().unwrap_or(0),
        }
    }
}

/// MLG summary statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MlgStats {
    /// Line-graph node count (== triples).
    pub nodes: usize,
    /// Line-graph edge count.
    pub edges: usize,
    /// Homologous group count.
    pub groups: usize,
    /// Isolated triple count.
    pub isolated: usize,
    /// Size of the largest homologous group.
    pub largest_group: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use multirag_kg::Value;

    fn sample() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        let sources: Vec<_> = (0..4)
            .map(|i| kg.add_source(&format!("s{i}"), "json", "flights"))
            .collect();
        let flight = kg.add_entity("CA981", "flights");
        let other = kg.add_entity("CA982", "flights");
        let status = kg.add_relation("status");
        let gate = kg.add_relation("gate");
        for (i, &s) in sources.iter().enumerate() {
            kg.add_triple(flight, status, Value::from(format!("v{i}")), s, 0);
        }
        kg.add_triple(other, gate, Value::Int(3), sources[0], 0);
        kg
    }

    #[test]
    fn build_indexes_groups_by_entity() {
        let kg = sample();
        let mlg = MultiSourceLineGraph::build(&kg);
        let flight = kg.find_entity("CA981", "flights").unwrap();
        let other = kg.find_entity("CA982", "flights").unwrap();
        assert_eq!(mlg.groups_of(flight).len(), 1);
        assert!(mlg.groups_of(other).is_empty());
        assert_eq!(mlg.sets().isolated.len(), 1);
    }

    #[test]
    fn homologous_groups_are_cliques() {
        let kg = sample();
        let mlg = MultiSourceLineGraph::build(&kg);
        for group in &mlg.sets().groups {
            assert!(mlg.group_is_clique(group), "Fig. 4 invariant violated");
        }
    }

    #[test]
    fn fig4_example_is_k4() {
        let kg = sample();
        let mlg = MultiSourceLineGraph::build(&kg);
        let stats = mlg.stats();
        assert_eq!(stats.largest_group, 4);
        // K4 has 6 edges; the isolated gate triple adds none.
        assert_eq!(stats.edges, 6);
        assert_eq!(stats.nodes, 5);
        assert_eq!(stats.groups, 1);
        assert_eq!(stats.isolated, 1);
    }

    #[test]
    fn node_of_covers_every_triple() {
        let kg = sample();
        let mlg = MultiSourceLineGraph::build(&kg);
        for (tid, _) in kg.iter_triples() {
            assert!(mlg.node_of(tid).is_some());
        }
        assert_eq!(mlg.node_count(), kg.triple_count());
    }

    #[test]
    fn slot_group_lookup() {
        let kg = sample();
        let mlg = MultiSourceLineGraph::build(&kg);
        let flight = kg.find_entity("CA981", "flights").unwrap();
        let status = kg.find_relation("status").unwrap();
        let gate = kg.find_relation("gate").unwrap();
        assert!(mlg.slot_group(flight, status).is_some());
        assert!(mlg.slot_group(flight, gate).is_none());
    }

    #[test]
    fn index_backed_build_matches_scan_build() {
        let kg = sample();
        let index = TieredIndex::build(&kg);
        let plain = MultiSourceLineGraph::build(&kg);
        let tiered = MultiSourceLineGraph::build_with_index(&kg, &index);
        assert_eq!(tiered.sets().groups, plain.sets().groups);
        assert_eq!(tiered.sets().isolated, plain.sets().isolated);
        assert_eq!(tiered.stats(), plain.stats());
    }

    #[test]
    fn empty_graph_builds_empty_mlg() {
        let kg = KnowledgeGraph::new();
        let mlg = MultiSourceLineGraph::build(&kg);
        let stats = mlg.stats();
        assert_eq!(stats.nodes, 0);
        assert_eq!(stats.groups, 0);
    }
}
