//! MultiRAG configuration: thresholds, α/β, ablation switches.

/// Full configuration of the MultiRAG pipeline. Defaults reproduce the
/// paper's hyper-parameter settings (§IV-A-c): node threshold 0.7,
/// graph threshold 0.5, β = 0.5, α = 0.5, 50 historical pseudo-entities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiRagConfig {
    /// Node-confidence threshold θ (Algorithm 1 line 17). Nodes with
    /// `C(v) = S_n(v) + A(v)` below θ are dropped to the isolated set.
    pub node_threshold: f64,
    /// Graph-confidence threshold. Homologous subgraphs at or above it
    /// are trusted enough that only 1–2 top nodes need extraction; below
    /// it, all nodes are pulled in for wider verification.
    pub graph_threshold: f64,
    /// α — weight of LLM authority vs historical authority (Eq. 9).
    pub alpha: f64,
    /// β — steepness of the Eq. 10 sigmoid.
    pub beta: f64,
    /// H — historical pseudo-entity count seeding `Auth_hist` (Eq. 11).
    pub history_pseudo: f64,
    /// How many top nodes to keep from a high-confidence subgraph.
    pub trusted_top_k: usize,
    /// Ablation: enable the MKA module (MLG aggregation). When off, the
    /// pipeline falls back to scanning the entity's whole neighbourhood
    /// (the paper's `w/o MKA` column — orders of magnitude slower and
    /// noisier context).
    pub enable_mka: bool,
    /// Ablation: enable graph-level confidence filtering.
    pub enable_graph_level: bool,
    /// Ablation: enable node-level confidence filtering.
    pub enable_node_level: bool,
    /// Diagnostic switch: route MCC through the retained naive
    /// reference implementation instead of the interned-profile kernel.
    /// Outcomes are bit-identical either way (proptested); the
    /// reference path rebuilds string-keyed distributions per node pair
    /// and exists for equivalence testing and as the `repro_perf`
    /// baseline.
    pub use_reference_mcc: bool,
}

impl Default for MultiRagConfig {
    fn default() -> Self {
        Self {
            node_threshold: 0.7,
            graph_threshold: 0.5,
            alpha: 0.5,
            beta: 0.5,
            history_pseudo: 50.0,
            trusted_top_k: 2,
            enable_mka: true,
            enable_graph_level: true,
            enable_node_level: true,
            use_reference_mcc: false,
        }
    }
}

impl MultiRagConfig {
    /// The `w/o MKA` ablation of Table III.
    pub fn without_mka(mut self) -> Self {
        self.enable_mka = false;
        self
    }

    /// The `w/o Graph Level` ablation of Table III.
    pub fn without_graph_level(mut self) -> Self {
        self.enable_graph_level = false;
        self
    }

    /// The `w/o Node Level` ablation of Table III.
    pub fn without_node_level(mut self) -> Self {
        self.enable_node_level = false;
        self
    }

    /// The `w/o MCC` ablation of Table III (no confidence filtering at
    /// all).
    pub fn without_mcc(mut self) -> Self {
        self.enable_graph_level = false;
        self.enable_node_level = false;
        self
    }

    /// Whether any MCC stage is active.
    pub fn mcc_enabled(&self) -> bool {
        self.enable_graph_level || self.enable_node_level
    }

    /// Sets α (clamped to `[0, 1]`), for the Fig. 7 sweep.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha.clamp(0.0, 1.0);
        self
    }

    /// Routes MCC through the naive reference implementation
    /// (equivalence oracle / perf baseline).
    pub fn with_reference_mcc(mut self) -> Self {
        self.use_reference_mcc = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = MultiRagConfig::default();
        assert_eq!(c.node_threshold, 0.7);
        assert_eq!(c.graph_threshold, 0.5);
        assert_eq!(c.alpha, 0.5);
        assert_eq!(c.beta, 0.5);
        assert_eq!(c.history_pseudo, 50.0);
        assert!(c.enable_mka && c.enable_graph_level && c.enable_node_level);
        assert!(!c.use_reference_mcc, "kernel path is the default");
        assert!(
            MultiRagConfig::default()
                .with_reference_mcc()
                .use_reference_mcc
        );
    }

    #[test]
    fn ablation_builders_flip_the_right_switches() {
        let c = MultiRagConfig::default().without_mka();
        assert!(!c.enable_mka && c.enable_graph_level);
        let c = MultiRagConfig::default().without_graph_level();
        assert!(c.enable_mka && !c.enable_graph_level && c.enable_node_level);
        let c = MultiRagConfig::default().without_node_level();
        assert!(c.enable_graph_level && !c.enable_node_level);
        let c = MultiRagConfig::default().without_mcc();
        assert!(!c.mcc_enabled());
        assert!(c.enable_mka);
    }

    #[test]
    fn alpha_is_clamped() {
        assert_eq!(MultiRagConfig::default().with_alpha(1.7).alpha, 1.0);
        assert_eq!(MultiRagConfig::default().with_alpha(-0.2).alpha, 0.0);
        assert_eq!(MultiRagConfig::default().with_alpha(0.3).alpha, 0.3);
    }
}
