//! MultiRAG over unstructured multi-hop corpora (the Table IV path).
//!
//! For HotpotQA-style bridge questions the pipeline runs MKLGP over
//! text: logic-form the question, retrieve hop-1 documents with BM25,
//! extract bridge candidate triples with the (simulated) LLM, apply the
//! confidence machinery across candidates — multiple documents
//! asserting the same bridge are homologous claims — retrieve hop-2
//! documents for the surviving bridge, extract the answer, and verify
//! it the same way.

use crate::config::MultiRagConfig;
use multirag_datasets::multihop::{MultiHopDataset, MultiHopQuestion};
use multirag_kg::FxHashMap;
use multirag_llmsim::{ContextProfile, MockLlm, Schema};
use multirag_retrieval::Bm25Index;

/// Outcome of one multi-hop question.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiHopOutcome {
    /// The emitted answer (None = abstained).
    pub answer: Option<String>,
    /// The (up to 5) documents the method used as evidence, in rank
    /// order — Recall@5 is computed over these.
    pub evidence: Vec<usize>,
    /// Whether generation hallucinated.
    pub hallucinated: bool,
}

/// MultiRAG's multi-hop QA pipeline.
pub struct MultiRagQa<'d> {
    data: &'d MultiHopDataset,
    bm25: Bm25Index,
    llm: MockLlm,
    config: MultiRagConfig,
}

/// Builds the extraction schema for a multi-hop corpus: every document
/// title is a gazetteer entity; the bridge/answer relations get their
/// natural-language aliases.
pub fn corpus_schema(data: &MultiHopDataset) -> Schema {
    let mut schema = Schema::new();
    for doc in &data.corpus {
        schema.add_entity_verbatim(&doc.title);
    }
    schema.add_relation_alias("directed by", "director");
    schema.add_relation_alias("directed", "director");
    schema.add_relation_alias("written by", "author");
    schema.add_relation_alias("wrote", "author");
    schema.add_relation_alias("was born in", "birthplace");
    schema.add_relation_alias("born in", "birthplace");
    schema.add_relation_alias("is married to", "spouse");
    schema.add_relation_alias("married to", "spouse");
    schema.add_relation_alias("married", "spouse");
    schema
}

impl<'d> MultiRagQa<'d> {
    /// Builds the pipeline over a corpus.
    pub fn new(data: &'d MultiHopDataset, config: MultiRagConfig, seed: u64) -> Self {
        let bm25 = Bm25Index::build(data.corpus.iter().map(|d| d.text.as_str()));
        let llm = MockLlm::new(corpus_schema(data), seed);
        Self {
            data,
            bm25,
            llm,
            config,
        }
    }

    /// The LLM client (for usage metering).
    pub fn llm(&self) -> &MockLlm {
        &self.llm
    }

    /// Answers one bridge / chain question.
    pub fn answer(&mut self, question: &MultiHopQuestion) -> MultiHopOutcome {
        // Parse "What is the <relN> of the ... of <work>?" into an
        // application-ordered relation chain.
        let Some((relations, anchor)) = parse_chain_question(&question.text) else {
            return MultiHopOutcome {
                answer: None,
                evidence: Vec::new(),
                hallucinated: false,
            };
        };
        self.llm.reason(48, 16); // logic-form call
                                 // Relations arrive outermost-first; hops apply innermost-first.
        let chain: Vec<String> = relations.into_iter().rev().collect();

        // Walk the chain: at each hop, retrieve docs about the current
        // entity, extract homologous claims of the hop's relation from
        // every doc, and take the consistency-weighted majority —
        // MultiRAG's cross-document verification, applied per hop.
        let mut current = anchor;
        let mut contributing: Vec<usize> = Vec::new();
        let mut retrieved: Vec<usize> = Vec::new();
        let mut last_claims: Vec<String> = Vec::new();
        for (hop, rel) in chain.iter().enumerate() {
            let docs = self.bm25.search(&current, 3);
            retrieved.extend(docs.iter().map(|&(d, _)| d.index()));
            let mut claims: Vec<(String, usize)> = Vec::new();
            for &(doc, _) in &docs {
                let text = &self.data.corpus[doc.index()].text;
                for triple in self.llm.extract_triples(text) {
                    if triple.predicate == *rel && normalize(&triple.subject) == normalize(&current)
                    {
                        claims.push((triple.object.to_string(), doc.index()));
                    }
                }
            }
            last_claims = claims.iter().map(|(c, _)| c.clone()).collect();
            let Some(next) = majority(&last_claims) else {
                return MultiHopOutcome {
                    answer: None,
                    evidence: {
                        let mut e = contributing;
                        e.extend(retrieved);
                        cap_evidence(e)
                    },
                    hallucinated: false,
                };
            };
            contributing.extend(claims.iter().map(|&(_, d)| d));
            let _ = hop;
            current = next;
        }

        // Evidence: claim-contributing docs first, padded by retrieval
        // rank, deduped, capped at 5.
        let mut evidence = contributing;
        evidence.extend(retrieved);
        let evidence = cap_evidence(evidence);

        // Generation under the hallucination law: conflict from
        // disagreeing final-hop claims, coverage from having found any.
        let answers: Vec<String> = last_claims;
        let final_answer = Some(current);
        let distinct: std::collections::HashSet<String> =
            answers.iter().map(|a| normalize(a)).collect();
        let support = final_answer
            .as_ref()
            .map(|f| {
                answers
                    .iter()
                    .filter(|a| normalize(a) == normalize(f))
                    .count()
            })
            .unwrap_or(0);
        let profile = ContextProfile {
            conflict_ratio: if answers.is_empty() {
                1.0
            } else {
                1.0 - support as f64 / answers.len() as f64
            },
            irrelevance_ratio: if distinct.len() > 1 { 0.2 } else { 0.0 },
            coverage: if final_answer.is_some() { 1.0 } else { 0.0 },
            claims: answers.len(),
        };
        let _ = self.config; // thresholds are folded into majority voting here
        let faithful = final_answer
            .clone()
            .map(|a| vec![multirag_kg::Value::Str(a)])
            .unwrap_or_default();
        let generated = self.llm.generate_answer(
            &format!("mh{}", question.id),
            faithful,
            &[],
            &profile,
            64 * evidence.len(),
        );
        MultiHopOutcome {
            answer: generated.values.first().map(|v| v.to_string()),
            evidence,
            hallucinated: generated.hallucinated,
        }
    }
}

/// Parses a compositional chain question into `(relations, anchor)`,
/// with relations ordered **outermost first** ("the birthplace of the
/// spouse of the author of W" → `[birthplace, spouse, author]`,
/// anchor `w`). Only the first question sentence is parsed — trailing
/// hint sentences ("The director is X.") are retrieval fodder, not
/// logical form.
pub fn parse_chain_question(text: &str) -> Option<(Vec<String>, String)> {
    // The corpus relation vocabulary (a production system would read
    // this off the schema, as the structured-query path's logic-form
    // generator does); needed to stop the chain split from eating into
    // titles that themselves contain " of the " ("The Testament of
    // Sol").
    const KNOWN: [&str; 4] = ["birthplace", "spouse", "director", "author"];
    let known = |s: &str| KNOWN.contains(&s.trim());

    let first = text.split('?').next().unwrap_or(text);
    let lower = first.trim().trim_end_matches('?').to_lowercase();
    let rest = lower
        .strip_prefix("what is the ")
        .or_else(|| lower.strip_prefix("who is the "))?;
    let parts: Vec<&str> = rest.split(" of the ").collect();
    let mut relations: Vec<String> = Vec::new();
    let mut idx = 0;
    while idx + 1 < parts.len() && known(parts[idx]) {
        relations.push(parts[idx].trim().to_string());
        idx += 1;
    }
    if relations.is_empty() {
        return None;
    }
    let remaining = parts[idx..].join(" of the ");
    // The innermost segment is either "<rel> of <anchor>" (plain " of "
    // delimiter) or already the anchor whose leading "the" the last
    // " of the " delimiter consumed.
    let anchor = match remaining.split_once(" of ") {
        Some((rel, anchor)) if known(rel) => {
            relations.push(rel.trim().to_string());
            anchor.trim().to_string()
        }
        _ => format!("the {}", remaining.trim()),
    };
    if relations.len() < 2 || anchor.is_empty() {
        return None;
    }
    Some((relations, anchor))
}

/// Parses a strictly 2-hop bridge question into `(rel2, rel1, anchor)`
/// — the form the single-bridge baselines understand. Compositional
/// (≥3-hop) chains return `None` for them.
pub fn parse_bridge_question(text: &str) -> Option<(String, String, String)> {
    let (relations, anchor) = parse_chain_question(text)?;
    if relations.len() != 2 {
        return None;
    }
    let mut iter = relations.into_iter();
    let rel2 = iter.next().expect("len checked");
    let rel1 = iter.next().expect("len checked");
    Some((rel2, rel1, anchor))
}

/// Dedupes and caps an evidence list at 5 documents, keeping first
/// occurrences (claim-contributing docs come first by construction).
fn cap_evidence(mut docs: Vec<usize>) -> Vec<usize> {
    let mut seen = std::collections::HashSet::new();
    docs.retain(|d| seen.insert(*d));
    docs.truncate(5);
    docs
}

fn normalize(s: &str) -> String {
    multirag_retrieval::text::normalize_mention(s)
}

/// Majority vote over string claims (normalized), `None` when empty.
fn majority(claims: &[String]) -> Option<String> {
    if claims.is_empty() {
        return None;
    }
    let mut counts: FxHashMap<String, (String, usize)> = FxHashMap::default();
    for c in claims {
        let entry = counts.entry(normalize(c)).or_insert_with(|| (c.clone(), 0));
        entry.1 += 1;
    }
    counts
        .into_values()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(c, _)| c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use multirag_datasets::multihop::{MultiHopFlavor, MultiHopSpec};

    #[test]
    fn parses_bridge_questions() {
        let (rel2, rel1, anchor) =
            parse_bridge_question("What is the birthplace of the director of Crimson Tide 3?")
                .unwrap();
        assert_eq!(rel2, "birthplace");
        assert_eq!(rel1, "director");
        assert_eq!(anchor, "crimson tide 3");
        assert!(parse_bridge_question("Tell me a joke").is_none());
    }

    #[test]
    fn majority_votes_normalized() {
        let claims = vec![
            "Beijing".to_string(),
            "beijing".to_string(),
            "Tokyo".to_string(),
        ];
        assert_eq!(majority(&claims), Some("Beijing".to_string()));
        assert_eq!(majority(&[]), None);
    }

    #[test]
    fn answers_many_hotpot_questions_correctly() {
        let data = MultiHopSpec::small(MultiHopFlavor::Hotpot).generate(42);
        let mut qa = MultiRagQa::new(&data, MultiRagConfig::default(), 42);
        let mut correct = 0;
        for q in &data.questions {
            let out = qa.answer(q);
            if let Some(a) = &out.answer {
                if normalize(a) == normalize(&q.answer) {
                    correct += 1;
                }
            }
        }
        let precision = correct as f64 / data.questions.len() as f64;
        assert!(precision > 0.5, "precision {precision}");
    }

    #[test]
    fn evidence_recall_is_high() {
        let data = MultiHopSpec::small(MultiHopFlavor::Hotpot).generate(42);
        let mut qa = MultiRagQa::new(&data, MultiRagConfig::default(), 42);
        let mut recall_sum = 0.0;
        for q in &data.questions {
            let out = qa.answer(q);
            let hit = q
                .gold_docs
                .iter()
                .filter(|d| out.evidence.contains(d))
                .count();
            recall_sum += hit as f64 / q.gold_docs.len() as f64;
        }
        let recall = recall_sum / data.questions.len() as f64;
        assert!(recall > 0.5, "recall@5 {recall}");
    }

    #[test]
    fn twowiki_flavor_also_works() {
        let data = MultiHopSpec::small(MultiHopFlavor::TwoWiki).generate(7);
        let mut qa = MultiRagQa::new(&data, MultiRagConfig::default(), 7);
        let answered = data
            .questions
            .iter()
            .filter(|q| qa.answer(q).answer.is_some())
            .count();
        assert!(answered as f64 / data.questions.len() as f64 > 0.5);
    }

    #[test]
    fn outcome_is_deterministic() {
        let data = MultiHopSpec::small(MultiHopFlavor::Hotpot).generate(3);
        let run = || {
            let mut qa = MultiRagQa::new(&data, MultiRagConfig::default(), 3);
            data.questions
                .iter()
                .map(|q| qa.answer(q))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn usage_is_metered() {
        let data = MultiHopSpec::small(MultiHopFlavor::Hotpot).generate(3);
        let mut qa = MultiRagQa::new(&data, MultiRagConfig::default(), 3);
        qa.answer(&data.questions[0]);
        assert!(qa.llm().usage().calls > 2);
    }
}
