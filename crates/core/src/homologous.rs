//! Homologous subgraph matching (Definitions 3–5, §III-C).
//!
//! Claims from different sources that fill the same `(entity,
//! attribute)` slot are *multi-source homologous*: they answer the same
//! retrieval candidate set. Each such group becomes a star around a
//! synthetic center node `snode = {name, meta, num, C(v)}`; under the
//! line-graph transform the star's triples form a clique (Fig. 4).
//! Slots asserted by a single triple are isolated points (`LVs`).
//!
//! Matching sorts triples by slot key — `O(n log n)` in the number of
//! triples, as the paper claims.

use multirag_kg::{EntityId, KnowledgeGraph, RelationId, SlotId, TieredIndex, TripleId};

/// One homologous group: the triples of one multi-source slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HomologousGroup {
    /// Slot entity.
    pub entity: EntityId,
    /// Slot attribute.
    pub relation: RelationId,
    /// Member triples (≥ 2), sorted by id.
    pub triples: Vec<TripleId>,
    /// Number of distinct sources asserting the slot.
    pub source_count: usize,
}

impl HomologousGroup {
    /// The center node's `name` component (Definition 4): the common
    /// attribute name.
    pub fn center_name<'a>(&self, kg: &'a KnowledgeGraph) -> &'a str {
        kg.relation_name(self.relation)
    }

    /// `num` of the center node: the number of homologous instances.
    pub fn num(&self) -> usize {
        self.triples.len()
    }
}

/// The output of homologous matching: `SVs` and `LVs`.
#[derive(Debug, Clone, Default)]
pub struct HomologousSets {
    /// Homologous groups (`SVs`), ordered by (entity, relation).
    pub groups: Vec<HomologousGroup>,
    /// Isolated triples (`LVs`): slots asserted exactly once.
    pub isolated: Vec<TripleId>,
}

impl HomologousSets {
    /// Total triples covered (groups + isolated).
    pub fn coverage(&self) -> usize {
        self.groups.iter().map(|g| g.triples.len()).sum::<usize>() + self.isolated.len()
    }

    /// Finds the group for a slot, if that slot is multi-source.
    pub fn group_for(&self, entity: EntityId, relation: RelationId) -> Option<&HomologousGroup> {
        // Groups are sorted by (entity, relation): binary search.
        self.groups
            .binary_search_by(|g| (g.entity, g.relation).cmp(&(entity, relation)))
            .ok()
            .map(|i| &self.groups[i])
    }
}

/// Matches homologous groups across the whole graph.
///
/// Sorting dominates: `O(n log n)` for `n` triples.
pub fn match_homologous(kg: &KnowledgeGraph) -> HomologousSets {
    let mut keyed: Vec<(EntityId, RelationId, TripleId)> = kg
        .iter_triples()
        .map(|(tid, t)| (t.subject, t.predicate, tid))
        .collect();
    keyed.sort_unstable();
    let mut sets = HomologousSets::default();
    let mut i = 0;
    while i < keyed.len() {
        let (entity, relation, _) = keyed[i];
        let mut j = i;
        while j < keyed.len() && keyed[j].0 == entity && keyed[j].1 == relation {
            j += 1;
        }
        let members: Vec<TripleId> = keyed[i..j].iter().map(|&(_, _, t)| t).collect();
        if members.len() >= 2 {
            let mut sources: Vec<_> = members.iter().map(|&tid| kg.triple(tid).source).collect();
            sources.sort_unstable();
            sources.dedup();
            sets.groups.push(HomologousGroup {
                entity,
                relation,
                triples: members,
                source_count: sources.len(),
            });
        } else {
            sets.isolated.extend(members);
        }
        i = j;
    }
    sets
}

/// Matches homologous groups by tier descent over a prebuilt
/// [`TieredIndex`] — the sub-linear replacement for
/// [`match_homologous`], which is retained as the reference oracle.
///
/// The index's slot tier is already sorted by `(entity, relation)`
/// with ascending member ids and precomputed distinct-source counts,
/// so matching degenerates to one pass over the slot columns: no
/// re-sort, no per-slot source scan. The output is byte-identical to
/// the oracle's (`repro_index` gates this with outcome digests).
pub fn match_homologous_tiered(index: &TieredIndex) -> HomologousSets {
    let mut sets = HomologousSets::default();
    for slot in (0..index.slot_count() as u32).map(SlotId) {
        let members = index.claims(slot);
        if members.len() >= 2 {
            sets.groups.push(HomologousGroup {
                entity: index.slot_entity(slot),
                relation: index.slot_relation(slot),
                triples: members.to_vec(),
                source_count: index.slot_source_count(slot),
            });
        } else {
            sets.isolated.extend_from_slice(members);
        }
    }
    sets
}

/// Matches homologous data for a single slot (the per-query path):
/// returns the group when multi-source, or the singleton as isolated.
pub fn match_slot(kg: &KnowledgeGraph, entity: EntityId, relation: RelationId) -> HomologousSets {
    let members: Vec<TripleId> = kg.slot_triples(entity, relation).to_vec();
    let mut sets = HomologousSets::default();
    if members.len() >= 2 {
        let mut sources: Vec<_> = members.iter().map(|&tid| kg.triple(tid).source).collect();
        sources.sort_unstable();
        sources.dedup();
        sets.groups.push(HomologousGroup {
            entity,
            relation,
            triples: members,
            source_count: sources.len(),
        });
    } else {
        sets.isolated = members;
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use multirag_kg::Value;

    fn sample() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        let s0 = kg.add_source("a", "csv", "flights");
        let s1 = kg.add_source("b", "json", "flights");
        let s2 = kg.add_source("c", "json", "flights");
        let f1 = kg.add_entity("CA981", "flights");
        let f2 = kg.add_entity("CA982", "flights");
        let status = kg.add_relation("status");
        let gate = kg.add_relation("gate");
        // CA981.status: three sources (homologous).
        kg.add_triple(f1, status, Value::from("delayed"), s0, 0);
        kg.add_triple(f1, status, Value::from("delayed"), s1, 0);
        kg.add_triple(f1, status, Value::from("on-time"), s2, 0);
        // CA981.gate: one source (isolated).
        kg.add_triple(f1, gate, Value::Int(12), s0, 0);
        // CA982.status: two sources, but one source twice (still 2 triples).
        kg.add_triple(f2, status, Value::from("boarding"), s0, 0);
        kg.add_triple(f2, status, Value::from("boarding"), s0, 1);
        kg
    }

    #[test]
    fn groups_collect_multi_assertion_slots() {
        let kg = sample();
        let sets = match_homologous(&kg);
        assert_eq!(sets.groups.len(), 2);
        assert_eq!(sets.isolated.len(), 1);
        assert_eq!(sets.coverage(), kg.triple_count());
    }

    #[test]
    fn group_metadata_is_correct() {
        let kg = sample();
        let sets = match_homologous(&kg);
        let f1 = kg.find_entity("CA981", "flights").unwrap();
        let status = kg.find_relation("status").unwrap();
        let group = sets.group_for(f1, status).unwrap();
        assert_eq!(group.num(), 3);
        assert_eq!(group.source_count, 3);
        assert_eq!(group.center_name(&kg), "status");
    }

    #[test]
    fn same_source_duplicates_count_once_for_sources() {
        let kg = sample();
        let sets = match_homologous(&kg);
        let f2 = kg.find_entity("CA982", "flights").unwrap();
        let status = kg.find_relation("status").unwrap();
        let group = sets.group_for(f2, status).unwrap();
        assert_eq!(group.num(), 2);
        assert_eq!(group.source_count, 1);
    }

    #[test]
    fn group_for_misses_isolated_slots() {
        let kg = sample();
        let sets = match_homologous(&kg);
        let f1 = kg.find_entity("CA981", "flights").unwrap();
        let gate = kg.find_relation("gate").unwrap();
        assert!(sets.group_for(f1, gate).is_none());
    }

    #[test]
    fn match_slot_agrees_with_global_matching() {
        let kg = sample();
        let global = match_homologous(&kg);
        let f1 = kg.find_entity("CA981", "flights").unwrap();
        let status = kg.find_relation("status").unwrap();
        let local = match_slot(&kg, f1, status);
        assert_eq!(
            local.groups[0].triples,
            global.group_for(f1, status).unwrap().triples
        );
    }

    #[test]
    fn match_slot_singleton_is_isolated() {
        let kg = sample();
        let f1 = kg.find_entity("CA981", "flights").unwrap();
        let gate = kg.find_relation("gate").unwrap();
        let local = match_slot(&kg, f1, gate);
        assert!(local.groups.is_empty());
        assert_eq!(local.isolated.len(), 1);
    }

    #[test]
    fn tiered_matching_equals_sorted_scan_oracle() {
        let kg = sample();
        let oracle = match_homologous(&kg);
        let index = TieredIndex::build(&kg);
        let tiered = match_homologous_tiered(&index);
        assert_eq!(tiered.groups, oracle.groups);
        assert_eq!(tiered.isolated, oracle.isolated);
        let empty = TieredIndex::build(&KnowledgeGraph::new());
        let sets = match_homologous_tiered(&empty);
        assert!(sets.groups.is_empty() && sets.isolated.is_empty());
    }

    #[test]
    fn empty_graph_is_empty_sets() {
        let kg = KnowledgeGraph::new();
        let sets = match_homologous(&kg);
        assert!(sets.groups.is_empty());
        assert!(sets.isolated.is_empty());
        assert_eq!(sets.coverage(), 0);
    }

    #[test]
    fn groups_are_sorted_for_binary_search() {
        let kg = sample();
        let sets = match_homologous(&kg);
        for pair in sets.groups.windows(2) {
            assert!((pair[0].entity, pair[0].relation) < (pair[1].entity, pair[1].relation));
        }
    }
}
