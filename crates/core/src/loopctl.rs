//! Closed-loop grounded generation: the escalation controller.
//!
//! After generation the pipeline *grades* the drafted answer against
//! the kept subgraph context — claim-by-claim containment over interned
//! canonical keys ([`grade_supported`]), never string scans — and on a
//! failing grade walks an explicit escalation ladder under a
//! deadline-bounded budget:
//!
//! 1. **widen** — rescue claims MCC dropped from the slot (they are
//!    re-assessed leniently and folded back into the context),
//! 2. **consult** — fuse the configured reserve sources
//!    ([`MklgpPipeline::with_reserve_sources`]) and fold agreeing
//!    claims into the support profile,
//! 3. **tighten** — regenerate against the faithful set alone, with
//!    distractors stripped and the conflict profile collapsed,
//! 4. abstain with a structured
//!    [`AbstainReason::EscalationExhausted`] verdict.
//!
//! Every escalation attempt charges simulated time through the llmsim
//! usage meter, so the cost of the loop shows up in the serving
//! simulator's latency percentiles. Graders themselves can die (the
//! fault plan's `grader:` channel): a dead grader degrades the loop to
//! its single-pass verdict — never a panic, never an unbounded loop.
//!
//! [`MklgpPipeline::with_reserve_sources`]: crate::pipeline::MklgpPipeline::with_reserve_sources
//! [`AbstainReason::EscalationExhausted`]: crate::pipeline::AbstainReason::EscalationExhausted

use multirag_faults::ms_to_us;
use multirag_kg::{KeyInterner, Symbol, Value};

/// Budget for the grade → escalate → regenerate loop.
///
/// `max_attempts == 0` disables the loop entirely: no grading call is
/// made and the pipeline is bit-identical to its single-pass form —
/// that is the baseline row of the `repro_loop` sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopConfig {
    /// Maximum escalation attempts after the initial draft.
    pub max_attempts: u32,
    /// Simulated-time budget for the whole loop, in integer
    /// microseconds (the workspace time convention). Grading and
    /// regeneration charge the LLM meter; once the metered loop time
    /// crosses this deadline the controller abstains instead of
    /// escalating further.
    pub deadline_us: u64,
}

impl Default for LoopConfig {
    fn default() -> Self {
        Self {
            max_attempts: 2,
            deadline_us: ms_to_us(5_000.0),
        }
    }
}

impl LoopConfig {
    /// Sets the attempt budget.
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts;
        self
    }

    /// Sets the deadline budget in integer microseconds.
    pub fn with_deadline_us(mut self, deadline_us: u64) -> Self {
        self.deadline_us = deadline_us;
        self
    }

    /// Sets the deadline budget from simulated milliseconds, quantized
    /// to the integer-µs convention via [`ms_to_us`].
    pub fn with_deadline_ms(mut self, deadline_ms: f64) -> Self {
        self.deadline_us = ms_to_us(deadline_ms);
        self
    }

    /// Whether the loop runs at all.
    pub fn enabled(&self) -> bool {
        self.max_attempts > 0
    }
}

/// One rung of the escalation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderStep {
    /// Rescue dropped slot claims back into the context.
    Widen,
    /// Consult the reserve sources and fold in agreeing claims.
    Consult,
    /// Strip distractors and regenerate from the faithful set alone.
    Tighten,
}

impl LadderStep {
    /// The rung taken on escalation attempt `attempt` (1-based).
    /// Attempts beyond the ladder keep tightening — the cheapest,
    /// lowest-risk rung.
    pub fn for_attempt(attempt: u32) -> Self {
        match attempt {
            0 | 1 => LadderStep::Widen,
            2 => LadderStep::Consult,
            _ => LadderStep::Tighten,
        }
    }

    /// Stable snake-case identifier (metrics label / trace field).
    pub fn slug(&self) -> &'static str {
        match self {
            LadderStep::Widen => "widen",
            LadderStep::Consult => "consult",
            LadderStep::Tighten => "tighten",
        }
    }
}

impl std::fmt::Display for LadderStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.slug())
    }
}

/// Support check: does the drafted answer assert exactly the claims the
/// trusted context supports?
///
/// Both sides are resolved to interned canonical-key [`Symbol`]s and
/// compared as sets — symbol equality *is* canonical-key equality, so
/// the grade never builds or scans a key string per comparison. Set
/// equality (not mere containment) is what catches every corruption the
/// hallucination model can apply: a swap changes a member, a drop
/// shrinks the set, a fabrication grows it.
pub fn grade_supported(draft: &[Value], faithful: &[Value], keys: &mut KeyInterner) -> bool {
    if draft.len() != faithful.len() {
        return false;
    }
    let mut drafted: Vec<Symbol> = draft.iter().map(|v| keys.key_of(v)).collect();
    let mut context: Vec<Symbol> = faithful.iter().map(|v| keys.key_of(v)).collect();
    drafted.sort_unstable();
    drafted.dedup();
    context.sort_unstable();
    context.dedup();
    drafted == context
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(xs: &[&str]) -> Vec<Value> {
        xs.iter().map(|s| Value::Str((*s).to_string())).collect()
    }

    #[test]
    fn default_budget_is_on_and_bounded() {
        let cfg = LoopConfig::default();
        assert!(cfg.enabled());
        assert_eq!(cfg.deadline_us, 5_000_000);
        assert!(!cfg.with_max_attempts(0).enabled());
    }

    #[test]
    fn deadline_builders_agree_on_the_us_convention() {
        let a = LoopConfig::default().with_deadline_ms(12.5);
        let b = LoopConfig::default().with_deadline_us(12_500);
        assert_eq!(a, b);
    }

    #[test]
    fn ladder_widens_then_consults_then_tightens_forever() {
        assert_eq!(LadderStep::for_attempt(1), LadderStep::Widen);
        assert_eq!(LadderStep::for_attempt(2), LadderStep::Consult);
        assert_eq!(LadderStep::for_attempt(3), LadderStep::Tighten);
        assert_eq!(LadderStep::for_attempt(9), LadderStep::Tighten);
        assert_eq!(LadderStep::for_attempt(1).slug(), "widen");
        assert_eq!(LadderStep::for_attempt(2).to_string(), "consult");
    }

    #[test]
    fn grade_accepts_exactly_the_faithful_set() {
        let mut keys = KeyInterner::default();
        let faithful = vals(&["alpha", "beta"]);
        assert!(grade_supported(
            &vals(&["beta", "alpha"]),
            &faithful,
            &mut keys
        ));
        // Swap, drop, fabricate: every corruption breaks the grade.
        assert!(!grade_supported(
            &vals(&["alpha", "gamma"]),
            &faithful,
            &mut keys
        ));
        assert!(!grade_supported(&vals(&["alpha"]), &faithful, &mut keys));
        assert!(!grade_supported(
            &vals(&["alpha", "beta", "gamma"]),
            &faithful,
            &mut keys
        ));
    }

    #[test]
    fn grade_compares_canonical_keys_not_surfaces() {
        let mut keys = KeyInterner::default();
        // Canonical keys normalize representation: 5 vs 5.0.
        let faithful = vec![Value::Int(5)];
        let drafted = vec![Value::Float(5.0)];
        assert_eq!(
            grade_supported(&drafted, &faithful, &mut keys),
            keys.key_of(&Value::Int(5)) == keys.key_of(&Value::Float(5.0))
        );
    }

    #[test]
    fn empty_draft_only_matches_empty_context() {
        let mut keys = KeyInterner::default();
        assert!(grade_supported(&[], &[], &mut keys));
        assert!(!grade_supported(&[], &vals(&["x"]), &mut keys));
    }
}
