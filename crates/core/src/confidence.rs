//! Multi-level confidence computing (Eqs. 4–11, Algorithm 1).
//!
//! **Graph level** (Eqs. 4–7): pairwise similarity between homologous
//! nodes via normalized mutual information of their attribute-value
//! distributions; the group's confidence is the mean pairwise
//! similarity. The joint distribution in Eq. 4 is instantiated as the
//! *maximal coupling* of the two value distributions — all shared mass
//! sits on the diagonal, residual mass couples independently — which
//! makes `I` large exactly when the two nodes assert the same content,
//! the stated intent of the paper's construction. Degenerate
//! (singleton) value sets fall back to a soft value-distance, keeping
//! `S ∈ [0, 1]` total.
//!
//! **Node level** (Eqs. 8–11): consistency `S_n(v)` (mean similarity to
//! homologous peers), LLM authority (Eq. 10 sigmoid over the simulated
//! expert score, centered on the candidate mean), historical authority
//! (Eq. 11 via [`HistoryStore`]), combined as
//! `C(v) = S_n(v) + α·Auth_LLM + (1−α)·Auth_hist`.

use crate::config::MultiRagConfig;
use crate::history::HistoryStore;
use crate::homologous::HomologousGroup;
use multirag_kg::{FxHashMap, KnowledgeGraph, Object, SourceId, TripleId, Value};
use multirag_llmsim::authority::AuthorityFeatures;
use multirag_llmsim::MockLlm;

/// Graph-level confidence of one homologous subgraph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphConfidence {
    /// `C(G)` — mean pairwise similarity (Eq. 7), in `[0, 1]`.
    pub value: f64,
    /// Number of node pairs averaged.
    pub pairs: usize,
}

/// Node-level assessment of one claim.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeConfidence {
    /// The claim's triple.
    pub triple: TripleId,
    /// The claim's value.
    pub value: Value,
    /// Asserting source.
    pub source: SourceId,
    /// Consistency score `S_n(v)` (Eq. 8).
    pub consistency: f64,
    /// `Auth_LLM(v)` (Eq. 10).
    pub auth_llm: f64,
    /// `Auth_hist(v)` (Eq. 11).
    pub auth_hist: f64,
    /// Combined authority `A(v)` (Eq. 9).
    pub authority: f64,
    /// Final confidence `C(v) = S_n(v) + A(v)`, in `[0, 2]`.
    pub confidence: f64,
}

/// The value multiset a claim asserts (lists flatten to their scalars).
fn value_set(value: &Value) -> Vec<Value> {
    value.scalar_claims()
}

/// Empirical distribution over canonical keys.
fn distribution(values: &[Value]) -> FxHashMap<String, f64> {
    let mut dist: FxHashMap<String, f64> = FxHashMap::default();
    let w = 1.0 / values.len().max(1) as f64;
    for v in values {
        *dist.entry(v.canonical_key()).or_insert(0.0) += w;
    }
    dist
}

/// Shannon entropy (Eq. 6) of a distribution, in nats.
fn entropy(dist: &FxHashMap<String, f64>) -> f64 {
    -dist
        .values()
        .filter(|&&p| p > 0.0)
        .map(|&p| p * p.ln())
        .sum::<f64>()
}

/// Eqs. 4–5: normalized mutual information similarity between two
/// attribute-value sets, in `[0, 1]`.
pub fn mi_similarity(vi: &Value, vj: &Value) -> f64 {
    let set_i = value_set(vi);
    let set_j = value_set(vj);
    let pi = distribution(&set_i);
    let pj = distribution(&set_j);
    let hi = entropy(&pi);
    let hj = entropy(&pj);
    if hi + hj < 1e-12 {
        // Both degenerate: exact agreement scores 1; *different* claims
        // get at most a sub-threshold soft similarity however close
        // their content is — a 1911-vs-1914 year conflict is still a
        // conflict, and must not let the subgraph pass the trust gate.
        let a = set_i.first().cloned().unwrap_or(Value::Null);
        let b = set_j.first().cloned().unwrap_or(Value::Null);
        if a.canonical_key() == b.canonical_key() {
            return 1.0;
        }
        return (1.0 - a.distance(&b)) * 0.45;
    }
    // Agreement information: the diagonal of the maximal coupling —
    // shared mass min(pi, pj) weighted by its pointwise MI. Disjoint
    // sets score 0, identical distributions score exactly Hi (= Hj),
    // so the symmetric-uncertainty normalization 2I/(Hi+Hj) maps
    // agreement onto [0, 1] with identical → 1, the range Eq. 5
    // asserts. Zero-entropy marginals make the MI term degenerate (a
    // singleton {a} vs a superset {a, b, c} would score 0 despite
    // genuine partial agreement), so the similarity is floored by the
    // distribution overlap Σ min(pi, pj).
    let mut mi = 0.0;
    let mut overlap = 0.0;
    for (key, &p_i) in &pi {
        if let Some(&p_j) = pj.get(key) {
            let p = p_i.min(p_j);
            overlap += p;
            if p > 0.0 {
                mi += p * (p / (p_i * p_j)).ln();
            }
        }
    }
    (2.0 * mi / (hi + hj)).max(overlap).clamp(0.0, 1.0)
}

/// The homologous nodes of a group: one node **per source**, carrying
/// the full value set that source asserts for the slot (Definition 4's
/// `snode` instances). A multi-valued truth asserted completely by two
/// sources thus yields two *identical* nodes — agreement, not conflict;
/// a source that swapped one value yields a partially-overlapping set.
fn group_values(kg: &KnowledgeGraph, group: &HomologousGroup) -> Vec<(TripleId, Value, SourceId)> {
    let mut order: Vec<SourceId> = Vec::new();
    let mut per_source: FxHashMap<SourceId, (TripleId, Vec<Value>)> = FxHashMap::default();
    for &tid in &group.triples {
        let t = kg.triple(tid);
        let value = match &t.object {
            Object::Entity(e) => Value::Str(kg.entity_name(*e).to_string()),
            Object::Literal(v) => v.clone(),
        };
        // Entity standardization (the `std.py` analogue): surface
        // variants of the same value ("Mann, Michael") collapse onto
        // one normal form before any consistency computation — the
        // knowledge-construction step that lets MultiRAG see agreement
        // where exact-match fusion sees fragmentation.
        let value = value.standardized();
        let entry = per_source.entry(t.source).or_insert_with(|| {
            order.push(t.source);
            (tid, Vec::new())
        });
        entry.1.push(value);
    }
    order
        .into_iter()
        .map(|source| {
            let (tid, mut values) = per_source.remove(&source).expect("inserted above");
            let value = if values.len() == 1 {
                values.pop().expect("len checked")
            } else {
                Value::List(values)
            };
            (tid, value, source)
        })
        .collect()
}

/// Eq. 7: graph-level confidence of a homologous subgraph.
pub fn graph_confidence(kg: &KnowledgeGraph, group: &HomologousGroup) -> GraphConfidence {
    let claims = group_values(kg, group);
    let n = claims.len();
    if n < 2 {
        return GraphConfidence {
            value: 0.5,
            pairs: 0,
        };
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            total += mi_similarity(&claims[i].1, &claims[j].1);
            pairs += 1;
        }
    }
    GraphConfidence {
        value: total / pairs as f64,
        pairs: pairs * 2, // ordered pairs, as in Eq. 7's double sum
    }
}

/// A placeholder record for a claim the graph-level gate discarded
/// before any node-level assessment ran.
fn unassessed(claim: (TripleId, Value, SourceId)) -> NodeConfidence {
    NodeConfidence {
        triple: claim.0,
        value: claim.1,
        source: claim.2,
        consistency: 0.0,
        auth_llm: 0.0,
        auth_hist: 0.0,
        authority: 0.0,
        confidence: 0.0,
    }
}

/// A flat-score record for ablations that skip node-level assessment.
fn uniform_assessment(claim: (TripleId, Value, SourceId)) -> NodeConfidence {
    NodeConfidence {
        triple: claim.0,
        value: claim.1,
        source: claim.2,
        consistency: 0.5,
        auth_llm: 0.5,
        auth_hist: 0.5,
        authority: 0.5,
        confidence: 1.0,
    }
}

/// Node-level assessment of every claim in a group (Eqs. 8–11).
///
/// `max_degree` is the graph's maximum entity degree (computed once per
/// graph by the pipeline and passed down).
pub fn assess_group(
    kg: &KnowledgeGraph,
    group: &HomologousGroup,
    llm: &mut MockLlm,
    history: &HistoryStore,
    config: &MultiRagConfig,
    max_degree: usize,
) -> Vec<NodeConfidence> {
    let claims = group_values(kg, group);
    assess_claims(kg, group, &claims, llm, history, config, max_degree)
}

/// Node-level assessment over an explicit claim pool (the gated subset
/// of a group's per-source nodes).
pub fn assess_claims(
    kg: &KnowledgeGraph,
    group: &HomologousGroup,
    claims: &[(TripleId, Value, SourceId)],
    llm: &mut MockLlm,
    history: &HistoryStore,
    config: &MultiRagConfig,
    max_degree: usize,
) -> Vec<NodeConfidence> {
    let claims = claims.to_vec();
    let n = claims.len();
    // Pairwise similarities (symmetric).
    let mut sim = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let s = mi_similarity(&claims[i].1, &claims[j].1);
            sim[i][j] = s;
            sim[j][i] = s;
        }
    }
    // Dominant type of the group's values (for the type-consistency
    // authority feature).
    let mut type_counts: FxHashMap<&'static str, usize> = FxHashMap::default();
    for (_, v, _) in &claims {
        *type_counts.entry(type_tag(v)).or_insert(0) += 1;
    }
    let dominant = type_counts
        .iter()
        .max_by_key(|(_, &c)| c)
        .map(|(&t, _)| t)
        .unwrap_or("str");

    let degree = kg.neighbors(group.entity).len();
    // Historical-authority validation reads past-query records into the
    // assessment prompt; its cost scales with the weight (1 − α) given
    // to `Auth_hist` — the mechanism behind Fig. 7's falling query time
    // as α → 1.
    let history_tokens = ((1.0 - config.alpha) * 40.0) as usize;
    if history_tokens > 0 {
        llm.reason(history_tokens * n, 4);
    }
    // Raw expert scores first (Eq. 10 centers on the candidate mean).
    let mut raw_c: Vec<f64> = Vec::with_capacity(n);
    for (tid, v, source) in &claims {
        let support: f64 = (0..n)
            .filter(|&j| claims[j].1.canonical_key() == v.canonical_key())
            .count() as f64;
        let features = AuthorityFeatures {
            degree,
            max_degree,
            type_consistency: if type_tag(v) == dominant { 1.0 } else { 0.3 },
            path_support: support / n as f64,
            source_reputation: history.credibility(*source),
        };
        // Degraded mode: when the expert call dies even after retries,
        // fall back to a neutral raw score — consistency and history
        // still discriminate, so one flaky call never sinks a claim.
        let c = llm
            .try_score_authority(&format!("t{}", tid.0), &features)
            .unwrap_or(0.5);
        raw_c.push(c);
    }
    let c_mean = raw_c.iter().sum::<f64>() / n.max(1) as f64;

    claims
        .into_iter()
        .enumerate()
        .map(|(i, (triple, value, source))| {
            // Eq. 8: mean similarity to peers.
            let consistency = if n > 1 {
                (0..n).filter(|&j| j != i).map(|j| sim[i][j]).sum::<f64>() / (n - 1) as f64
            } else {
                0.5
            };
            // Eq. 10.
            let auth_llm = llm.squash_authority(raw_c[i], c_mean, config.beta);
            // Eq. 11: support = summed agreement mass for this value.
            let support: f64 = (0..n)
                .filter(|&j| {
                    // Peers agreeing with this claim's value.
                    sim[i][j] > 0.999 || j == i
                })
                .count() as f64;
            let auth_hist = history.auth_hist(source, support, n);
            // Eq. 9.
            let authority = config.alpha * auth_llm + (1.0 - config.alpha) * auth_hist;
            NodeConfidence {
                triple,
                value,
                source,
                consistency,
                auth_llm,
                auth_hist,
                authority,
                confidence: consistency + authority,
            }
        })
        .collect()
}

fn type_tag(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Int(_) | Value::Float(_) => "num",
        Value::Str(_) => "str",
        Value::List(_) => "list",
    }
}

/// The outcome of the MCC filtering for one slot (Algorithm 1).
#[derive(Debug, Clone, Default)]
pub struct MccOutcome {
    /// Graph confidence of the slot's subgraph (if homologous).
    pub graph: Option<GraphConfidence>,
    /// Claims that survived (`SVs` members).
    pub kept: Vec<NodeConfidence>,
    /// Claims filtered out (`LVs` additions).
    pub dropped: Vec<NodeConfidence>,
    /// Claims that survived the graph-level gate into node assessment.
    pub gated: usize,
    /// Cost of the graph-level stage (MI confidence + gating).
    pub graph_cost: multirag_obs::StageCost,
    /// Cost of the node-level stage (assessment + thresholding) — the
    /// expert-LLM half, so `sim_ms` is nonzero when node level is on.
    pub node_cost: multirag_obs::StageCost,
}

/// Algorithm 1 applied to one homologous group: graph-level gating,
/// then node-level thresholding.
pub fn mcc_filter(
    kg: &KnowledgeGraph,
    group: &HomologousGroup,
    llm: &mut MockLlm,
    history: &HistoryStore,
    config: &MultiRagConfig,
    max_degree: usize,
) -> MccOutcome {
    let graph_started = std::time::Instant::now();
    let graph = graph_confidence(kg, group);
    let mut outcome = MccOutcome {
        graph: Some(graph),
        ..Default::default()
    };
    // Graph-level gate FIRST (the coarse-ranking stage of the paper's
    // coarse/fine scheme): a high-confidence subgraph needs only the
    // top 1–2 *answer candidates*; a low-confidence one keeps
    // everything for wider node-level verification (§IV-C intro).
    // Gating before the expensive node assessment is exactly why
    // removing the graph level inflates the time columns in Table III
    // (every node then pays for an expert-LLM assessment).
    let mut pool = group_values(kg, group);
    if config.enable_graph_level && graph.value >= config.graph_threshold {
        // Rank by cheap agreement support (how many peer sources assert
        // the same value set) and keep the top-k distinct values —
        // distinct values, not claims, so multi-valued truths survive.
        let support = |value: &Value| {
            pool.iter()
                .filter(|(_, v, _)| v.canonical_key() == value.canonical_key())
                .count()
        };
        let mut ranked: Vec<(usize, (TripleId, Value, SourceId))> = pool
            .iter()
            .cloned()
            .map(|claim| (support(&claim.1), claim))
            .collect();
        ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1 .0.cmp(&b.1 .0)));
        let keep = config.trusted_top_k.max(1);
        let mut kept_values: Vec<String> = Vec::new();
        let mut gated: Vec<(TripleId, Value, SourceId)> = Vec::new();
        for (_, claim) in ranked {
            let key = claim.1.canonical_key();
            if kept_values.contains(&key) || kept_values.len() < keep {
                if !kept_values.contains(&key) {
                    kept_values.push(key);
                }
                gated.push(claim);
            } else {
                outcome.dropped.push(unassessed(claim));
            }
        }
        gated.sort_by_key(|c| c.0);
        pool = gated;
    }
    outcome.gated = pool.len();
    outcome.graph_cost = multirag_obs::StageCost {
        wall_s: graph_started.elapsed().as_secs_f64(),
        sim_ms: 0.0, // the graph level never consults the expert LLM
    };
    let node_started = std::time::Instant::now();
    let sim_before = llm.usage().simulated_ms;
    // Node-level confidence computation is the expensive, expert-LLM-
    // backed stage; when it is ablated (w/o Node Level, w/o MCC) no
    // assessment happens at all — nodes ride into the context with a
    // flat weight and the PT column collapses, exactly as Table III
    // shows.
    let candidates: Vec<NodeConfidence> = if config.enable_node_level {
        assess_claims(kg, group, &pool, llm, history, config, max_degree)
    } else {
        pool.into_iter().map(uniform_assessment).collect()
    };
    // Node-level threshold (Algorithm 1, line 17).
    for node in candidates {
        if !config.enable_node_level || node.confidence > config.node_threshold {
            outcome.kept.push(node);
        } else {
            outcome.dropped.push(node);
        }
    }
    // Low-confidence subgraphs must still yield an answer candidate:
    // the paper extracts *more* nodes from them rather than abstaining.
    // When the threshold wiped the slate, rescue the most trustworthy
    // node — this is where authority (history + expert score) breaks
    // consistency ties that voting cannot.
    if outcome.kept.is_empty() && !outcome.dropped.is_empty() {
        let best = outcome
            .dropped
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.confidence
                    .partial_cmp(&b.confidence)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.triple.cmp(&a.triple))
            })
            .map(|(i, _)| i)
            .expect("nonempty");
        outcome.kept.push(outcome.dropped.remove(best));
    }
    outcome.node_cost = multirag_obs::StageCost {
        wall_s: node_started.elapsed().as_secs_f64(),
        sim_ms: llm.usage().simulated_ms - sim_before,
    };
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homologous::match_slot;
    use multirag_llmsim::Schema;

    fn graph_with_claims(values: &[&str]) -> (KnowledgeGraph, HomologousGroup) {
        let mut kg = KnowledgeGraph::new();
        let flight = kg.add_entity("CA981", "flights");
        let status = kg.add_relation("status");
        for (i, v) in values.iter().enumerate() {
            let s = kg.add_source(&format!("s{i}"), "json", "flights");
            kg.add_triple(flight, status, Value::from(*v), s, 0);
        }
        let sets = match_slot(&kg, flight, status);
        let group = sets.groups.into_iter().next().expect("homologous");
        (kg, group)
    }

    #[test]
    fn mi_similarity_of_identical_singletons_is_one() {
        assert!(
            (mi_similarity(&Value::from("delayed"), &Value::from("delayed")) - 1.0).abs() < 1e-9
        );
        assert!((mi_similarity(&Value::Int(5), &Value::Float(5.0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mi_similarity_of_disjoint_singletons_is_low() {
        let s = mi_similarity(&Value::from("delayed"), &Value::from("quartz"));
        assert!(s < 0.3, "similarity {s}");
    }

    #[test]
    fn mi_similarity_of_identical_sets_is_high() {
        let a = Value::List(vec![Value::from("x"), Value::from("y")]);
        let b = Value::List(vec![Value::from("x"), Value::from("y")]);
        let s = mi_similarity(&a, &b);
        assert!(s > 0.9, "similarity {s}");
    }

    #[test]
    fn mi_similarity_of_partially_overlapping_sets_is_middling() {
        let a = Value::List(vec![Value::from("x"), Value::from("y")]);
        let b = Value::List(vec![Value::from("x"), Value::from("z")]);
        let s = mi_similarity(&a, &b);
        let identical = mi_similarity(&a, &a);
        let disjoint = mi_similarity(&a, &Value::List(vec![Value::from("p"), Value::from("q")]));
        assert!(s < identical && s > disjoint, "s={s}");
    }

    #[test]
    fn mi_similarity_is_symmetric_and_bounded() {
        let pairs = [
            (Value::from("a"), Value::from("b")),
            (
                Value::List(vec![Value::from("a"), Value::from("b")]),
                Value::from("a"),
            ),
            (Value::Int(3), Value::from("3")),
        ];
        for (a, b) in &pairs {
            let ab = mi_similarity(a, b);
            let ba = mi_similarity(b, a);
            assert!((ab - ba).abs() < 1e-9);
            assert!((0.0..=1.0).contains(&ab));
        }
    }

    #[test]
    fn consistent_groups_have_high_graph_confidence() {
        let (kg, group) = graph_with_claims(&["delayed", "delayed", "delayed", "delayed"]);
        let gc = graph_confidence(&kg, &group);
        assert!(gc.value > 0.9, "confidence {}", gc.value);
    }

    #[test]
    fn conflicted_groups_have_low_graph_confidence() {
        let (kg, group) = graph_with_claims(&["delayed", "on-time", "boarding", "cancelled"]);
        let gc = graph_confidence(&kg, &group);
        assert!(gc.value < 0.4, "confidence {}", gc.value);
    }

    #[test]
    fn majority_agreement_sits_between() {
        let (kg, group) = graph_with_claims(&["delayed", "delayed", "delayed", "on-time"]);
        let gc = graph_confidence(&kg, &group);
        let (kg2, g2) = graph_with_claims(&["delayed", "delayed", "delayed", "delayed"]);
        let (kg3, g3) = graph_with_claims(&["a", "b", "c", "d"]);
        assert!(gc.value < graph_confidence(&kg2, &g2).value);
        assert!(gc.value > graph_confidence(&kg3, &g3).value);
    }

    #[test]
    fn node_assessment_prefers_majority_claims() {
        let (kg, group) = graph_with_claims(&["delayed", "delayed", "delayed", "on-time"]);
        let mut llm = MockLlm::new(Schema::new(), 7);
        let history = HistoryStore::paper_defaults();
        let config = MultiRagConfig::default();
        let nodes = assess_group(&kg, &group, &mut llm, &history, &config, 10);
        // Node values are standardized ("on-time" → "on time").
        let delayed: Vec<&NodeConfidence> = nodes
            .iter()
            .filter(|a| a.value == Value::from("delayed"))
            .collect();
        let outlier = nodes
            .iter()
            .find(|a| a.value == Value::from("on time"))
            .unwrap();
        for d in &delayed {
            assert!(
                d.confidence > outlier.confidence,
                "majority {} vs outlier {}",
                d.confidence,
                outlier.confidence
            );
            assert!(d.consistency > outlier.consistency);
        }
    }

    #[test]
    fn history_biases_authority() {
        let (kg, group) = graph_with_claims(&["delayed", "on-time"]);
        let mut llm = MockLlm::new(Schema::new(), 7);
        let history = HistoryStore::paper_defaults();
        // Source s0 (delayed) has an excellent record; s1 terrible.
        history.record(SourceId(0), 95, 100);
        history.record(SourceId(1), 5, 100);
        let config = MultiRagConfig::default();
        let nodes = assess_group(&kg, &group, &mut llm, &history, &config, 10);
        let good = nodes.iter().find(|a| a.source == SourceId(0)).unwrap();
        let bad = nodes.iter().find(|a| a.source == SourceId(1)).unwrap();
        assert!(good.auth_hist > bad.auth_hist);
        assert!(good.authority > bad.authority);
    }

    #[test]
    fn mcc_filter_drops_low_confidence_outliers() {
        let (kg, group) =
            graph_with_claims(&["delayed", "delayed", "delayed", "delayed", "quartz"]);
        let mut llm = MockLlm::new(Schema::new(), 7);
        let history = HistoryStore::paper_defaults();
        let config = MultiRagConfig {
            enable_graph_level: false, // isolate the node-level check
            ..MultiRagConfig::default()
        };
        let outcome = mcc_filter(&kg, &group, &mut llm, &history, &config, 10);
        assert!(outcome
            .kept
            .iter()
            .all(|n| n.value == Value::from("delayed")));
        assert!(outcome
            .dropped
            .iter()
            .any(|n| n.value == Value::from("quartz")));
    }

    #[test]
    fn graph_level_gate_keeps_top_k_distinct_values() {
        // Three distinct values in a (numerically close) year slot:
        // the gate must cap the surviving *values* at trusted_top_k.
        let (kg, group) = graph_with_claims(&["delayed", "delayed", "on-time", "boarding"]);
        let mut llm = MockLlm::new(Schema::new(), 7);
        let history = HistoryStore::paper_defaults();
        let config = MultiRagConfig {
            enable_node_level: false,
            graph_threshold: 0.0, // force the trusted path
            ..MultiRagConfig::default()
        };
        let outcome = mcc_filter(&kg, &group, &mut llm, &history, &config, 10);
        let distinct: std::collections::HashSet<String> = outcome
            .kept
            .iter()
            .map(|n| n.value.canonical_key())
            .collect();
        assert!(distinct.len() <= config.trusted_top_k);
        assert!(!outcome.dropped.is_empty());
        // A fully consistent group keeps all its (single-valued) nodes.
        let (kg2, g2) = graph_with_claims(&["delayed", "delayed", "delayed", "delayed"]);
        let outcome2 = mcc_filter(&kg2, &g2, &mut llm, &history, &config, 10);
        assert_eq!(outcome2.kept.len(), 4);
    }

    #[test]
    fn low_confidence_groups_keep_all_candidates_for_verification() {
        let (kg, group) = graph_with_claims(&["a", "b", "c", "d"]);
        let mut llm = MockLlm::new(Schema::new(), 7);
        let history = HistoryStore::paper_defaults();
        let config = MultiRagConfig {
            enable_node_level: false, // watch the gate alone
            ..MultiRagConfig::default()
        };
        let outcome = mcc_filter(&kg, &group, &mut llm, &history, &config, 10);
        assert!(outcome.graph.unwrap().value < config.graph_threshold);
        assert_eq!(outcome.kept.len(), 4);
    }

    #[test]
    fn disabled_mcc_keeps_everything() {
        let (kg, group) = graph_with_claims(&["a", "b", "c"]);
        let mut llm = MockLlm::new(Schema::new(), 7);
        let history = HistoryStore::paper_defaults();
        let config = MultiRagConfig::default().without_mcc();
        let outcome = mcc_filter(&kg, &group, &mut llm, &history, &config, 10);
        assert_eq!(outcome.kept.len(), 3);
        assert!(outcome.dropped.is_empty());
    }
}
