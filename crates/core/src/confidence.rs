//! Multi-level confidence computing (Eqs. 4–11, Algorithm 1).
//!
//! **Graph level** (Eqs. 4–7): pairwise similarity between homologous
//! nodes via normalized mutual information of their attribute-value
//! distributions; the group's confidence is the mean pairwise
//! similarity. The joint distribution in Eq. 4 is instantiated as the
//! *maximal coupling* of the two value distributions — all shared mass
//! sits on the diagonal, residual mass couples independently — which
//! makes `I` large exactly when the two nodes assert the same content,
//! the stated intent of the paper's construction. Degenerate
//! (singleton) value sets fall back to a soft value-distance, keeping
//! `S ∈ [0, 1]` total.
//!
//! **Node level** (Eqs. 8–11): consistency `S_n(v)` (mean similarity to
//! homologous peers), LLM authority (Eq. 10 sigmoid over the simulated
//! expert score, centered on the candidate mean), historical authority
//! (Eq. 11 via [`HistoryStore`]), combined as
//! `C(v) = S_n(v) + α·Auth_LLM + (1−α)·Auth_hist`.
//!
//! # Two implementations, one contract
//!
//! The hot path runs on [`ClaimProfile`]s — per-slot claim records with
//! canonical keys resolved to interned [`Symbol`]s, distributions as
//! sorted dense `(key, mass)` vecs and entropy precomputed — so
//! [`nmi_similarity`] is an allocation-free merge-join and
//! [`mcc_filter_profiles`] computes the pairwise similarity matrix
//! **once**, sharing it across graph gating, node assessment and the
//! rescue path. The naive implementation ([`mi_similarity`],
//! [`mcc_filter_reference`]) is retained as the equivalence oracle: it
//! rebuilds string-keyed distributions per pair, and proptests assert
//! the kernel is **bit-identical** (not ε-close) to it. To keep that
//! contract checkable, both paths do their floating-point work in the
//! same order: distributions iterate in sorted-canonical-key order and
//! masses accumulate by repeated `+= w`.

use crate::config::MultiRagConfig;
use crate::history::HistoryStore;
use crate::homologous::HomologousGroup;
use multirag_kg::{
    FxHashMap, KeyInterner, KnowledgeGraph, Object, SourceId, Symbol, TripleId, Value,
};
use multirag_llmsim::authority::AuthorityFeatures;
use multirag_llmsim::MockLlm;

/// Graph-level confidence of one homologous subgraph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphConfidence {
    /// `C(G)` — mean pairwise similarity (Eq. 7), in `[0, 1]`.
    ///
    /// The mean divides by [`GraphConfidence::unordered_pairs`]; each
    /// unordered pair's similarity is symmetric, so this equals Eq. 7's
    /// double sum divided by its ordered-pair count.
    pub value: f64,
    /// Unordered node pairs averaged: `n·(n−1)/2`. This is the divisor
    /// of [`GraphConfidence::value`].
    pub unordered_pairs: usize,
    /// Ordered pairs of Eq. 7's double sum: `n·(n−1)`, i.e. twice
    /// [`GraphConfidence::unordered_pairs`]. (An earlier revision
    /// reported this doubled count under a single `pairs` field while
    /// dividing by the undoubled one; both are now explicit.)
    pub ordered_pairs: usize,
}

/// Node-level assessment of one claim.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeConfidence {
    /// The claim's triple.
    pub triple: TripleId,
    /// The claim's value.
    pub value: Value,
    /// Asserting source.
    pub source: SourceId,
    /// Consistency score `S_n(v)` (Eq. 8).
    pub consistency: f64,
    /// `Auth_LLM(v)` (Eq. 10).
    pub auth_llm: f64,
    /// `Auth_hist(v)` (Eq. 11).
    pub auth_hist: f64,
    /// Combined authority `A(v)` (Eq. 9).
    pub authority: f64,
    /// Final confidence `C(v) = S_n(v) + A(v)`, in `[0, 2]`.
    pub confidence: f64,
}

// -------------------------------------------------------------------
// Reference implementation (naive; the equivalence oracle)
// -------------------------------------------------------------------

/// The value multiset a claim asserts (lists flatten to their scalars).
fn value_set(value: &Value) -> Vec<Value> {
    value.scalar_claims()
}

/// Empirical distribution over canonical keys, sorted by key.
///
/// Sorting here is what makes the naive path's float summation order
/// deterministic and equal to the kernel's (whose profile dists are
/// sorted by resolved key string).
fn distribution(values: &[Value]) -> Vec<(String, f64)> {
    let mut acc: FxHashMap<String, f64> = FxHashMap::default();
    let w = 1.0 / values.len().max(1) as f64;
    for v in values {
        *acc.entry(v.canonical_key()).or_insert(0.0) += w;
    }
    let mut dist: Vec<(String, f64)> = acc.into_iter().collect();
    dist.sort_by(|a, b| a.0.cmp(&b.0));
    dist
}

/// Shannon entropy (Eq. 6) of a sorted distribution, in nats.
fn entropy(dist: &[(String, f64)]) -> f64 {
    -dist
        .iter()
        .filter(|(_, p)| *p > 0.0)
        .map(|(_, p)| p * p.ln())
        .sum::<f64>()
}

/// Eqs. 4–5: normalized mutual information similarity between two
/// attribute-value sets, in `[0, 1]`. Reference implementation — the
/// profile kernel [`nmi_similarity`] is bit-identical to it.
pub fn mi_similarity(vi: &Value, vj: &Value) -> f64 {
    let set_i = value_set(vi);
    let set_j = value_set(vj);
    let pi = distribution(&set_i);
    let pj = distribution(&set_j);
    let hi = entropy(&pi);
    let hj = entropy(&pj);
    if hi + hj < 1e-12 {
        // Both degenerate: exact agreement scores 1; *different* claims
        // get at most a sub-threshold soft similarity however close
        // their content is — a 1911-vs-1914 year conflict is still a
        // conflict, and must not let the subgraph pass the trust gate.
        let a = set_i.first().cloned().unwrap_or(Value::Null);
        let b = set_j.first().cloned().unwrap_or(Value::Null);
        if a.canonical_key() == b.canonical_key() {
            return 1.0;
        }
        return (1.0 - a.distance(&b)) * 0.45;
    }
    // Agreement information: the diagonal of the maximal coupling —
    // shared mass min(pi, pj) weighted by its pointwise MI. Disjoint
    // sets score 0, identical distributions score exactly Hi (= Hj),
    // so the symmetric-uncertainty normalization 2I/(Hi+Hj) maps
    // agreement onto [0, 1] with identical → 1, the range Eq. 5
    // asserts. Zero-entropy marginals make the MI term degenerate (a
    // singleton {a} vs a superset {a, b, c} would score 0 despite
    // genuine partial agreement), so the similarity is floored by the
    // distribution overlap Σ min(pi, pj).
    let mut mi = 0.0;
    let mut overlap = 0.0;
    for (key, p_i) in &pi {
        if let Ok(at) = pj.binary_search_by(|(k, _)| k.cmp(key)) {
            if let Some((_, p_j)) = pj.get(at) {
                let p = p_i.min(*p_j);
                overlap += p;
                if p > 0.0 {
                    mi += p * (p / (p_i * p_j)).ln();
                }
            }
        }
    }
    (2.0 * mi / (hi + hj)).max(overlap).clamp(0.0, 1.0)
}

/// The homologous nodes of a group: one node **per source**, carrying
/// the full value set that source asserts for the slot (Definition 4's
/// `snode` instances). A multi-valued truth asserted completely by two
/// sources thus yields two *identical* nodes — agreement, not conflict;
/// a source that swapped one value yields a partially-overlapping set.
fn group_values(kg: &KnowledgeGraph, group: &HomologousGroup) -> Vec<(TripleId, Value, SourceId)> {
    let mut order: Vec<SourceId> = Vec::new();
    let mut per_source: FxHashMap<SourceId, (TripleId, Vec<Value>)> = FxHashMap::default();
    for &tid in &group.triples {
        let t = kg.triple(tid);
        let value = match &t.object {
            Object::Entity(e) => Value::Str(kg.entity_name(*e).to_string()),
            Object::Literal(v) => v.clone(),
        };
        // Entity standardization (the `std.py` analogue): surface
        // variants of the same value ("Mann, Michael") collapse onto
        // one normal form before any consistency computation — the
        // knowledge-construction step that lets MultiRAG see agreement
        // where exact-match fusion sees fragmentation.
        let value = value.standardized();
        let entry = per_source.entry(t.source).or_insert_with(|| {
            order.push(t.source);
            (tid, Vec::new())
        });
        entry.1.push(value);
    }
    order
        .into_iter()
        .map(|source| {
            let (tid, mut values) = per_source.remove(&source).expect("inserted above");
            let value = if values.len() == 1 {
                values.pop().expect("len checked")
            } else {
                Value::List(values)
            };
            (tid, value, source)
        })
        .collect()
}

/// Eq. 7 over an explicit claim pool.
fn graph_confidence_of(claims: &[(TripleId, Value, SourceId)]) -> GraphConfidence {
    let n = claims.len();
    if n < 2 {
        return GraphConfidence {
            value: 0.5,
            unordered_pairs: 0,
            ordered_pairs: 0,
        };
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            total += mi_similarity(&claims[i].1, &claims[j].1);
            pairs += 1;
        }
    }
    GraphConfidence {
        value: total / pairs as f64,
        unordered_pairs: pairs,
        ordered_pairs: pairs * 2,
    }
}

/// Eq. 7: graph-level confidence of a homologous subgraph.
pub fn graph_confidence(kg: &KnowledgeGraph, group: &HomologousGroup) -> GraphConfidence {
    graph_confidence_of(&group_values(kg, group))
}

/// A placeholder record for a claim the graph-level gate discarded
/// before any node-level assessment ran.
fn unassessed(claim: (TripleId, Value, SourceId)) -> NodeConfidence {
    NodeConfidence {
        triple: claim.0,
        value: claim.1,
        source: claim.2,
        consistency: 0.0,
        auth_llm: 0.0,
        auth_hist: 0.0,
        authority: 0.0,
        confidence: 0.0,
    }
}

/// A flat-score record for ablations that skip node-level assessment.
fn uniform_assessment(claim: (TripleId, Value, SourceId)) -> NodeConfidence {
    NodeConfidence {
        triple: claim.0,
        value: claim.1,
        source: claim.2,
        consistency: 0.5,
        auth_llm: 0.5,
        auth_hist: 0.5,
        authority: 0.5,
        confidence: 1.0,
    }
}

/// Node-level assessment of every claim in a group (Eqs. 8–11).
///
/// `max_degree` is the graph's maximum entity degree (computed once per
/// graph by the pipeline and passed down).
pub fn assess_group(
    kg: &KnowledgeGraph,
    group: &HomologousGroup,
    llm: &mut MockLlm,
    history: &HistoryStore,
    config: &MultiRagConfig,
    max_degree: usize,
) -> Vec<NodeConfidence> {
    let claims = group_values(kg, group);
    assess_claims(kg, group, &claims, llm, history, config, max_degree)
}

/// Node-level assessment over an explicit claim pool (the gated subset
/// of a group's per-source nodes). Reference implementation.
pub fn assess_claims(
    kg: &KnowledgeGraph,
    group: &HomologousGroup,
    claims: &[(TripleId, Value, SourceId)],
    llm: &mut MockLlm,
    history: &HistoryStore,
    config: &MultiRagConfig,
    max_degree: usize,
) -> Vec<NodeConfidence> {
    let n = claims.len();
    // Pairwise similarities (symmetric).
    let mut sim = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let s = mi_similarity(&claims[i].1, &claims[j].1);
            sim[i][j] = s;
            sim[j][i] = s;
        }
    }
    // Dominant type of the group's values (for the type-consistency
    // authority feature).
    let mut type_counts: FxHashMap<&'static str, usize> = FxHashMap::default();
    for (_, v, _) in claims {
        *type_counts.entry(type_tag(v)).or_insert(0) += 1;
    }
    let dominant = type_counts
        .iter()
        .max_by_key(|(_, &c)| c)
        .map(|(&t, _)| t)
        .unwrap_or("str");

    let degree = kg.neighbors(group.entity).len();
    // Historical-authority validation reads past-query records into the
    // assessment prompt; its cost scales with the weight (1 − α) given
    // to `Auth_hist` — the mechanism behind Fig. 7's falling query time
    // as α → 1.
    let history_tokens = ((1.0 - config.alpha) * 40.0) as usize;
    if history_tokens > 0 {
        llm.reason(history_tokens * n, 4);
    }
    // Raw expert scores first (Eq. 10 centers on the candidate mean).
    let mut raw_c: Vec<f64> = Vec::with_capacity(n);
    for (tid, v, source) in claims {
        let support: f64 = (0..n)
            .filter(|&j| claims[j].1.canonical_key() == v.canonical_key())
            .count() as f64;
        let features = AuthorityFeatures {
            degree,
            max_degree,
            type_consistency: if type_tag(v) == dominant { 1.0 } else { 0.3 },
            path_support: support / n as f64,
            source_reputation: history.credibility(*source),
        };
        // Degraded mode: when the expert call dies even after retries,
        // fall back to a neutral raw score — consistency and history
        // still discriminate, so one flaky call never sinks a claim.
        let c = llm
            .try_score_authority(&format!("t{}", tid.0), &features)
            .unwrap_or(0.5);
        raw_c.push(c);
    }
    let c_mean = raw_c.iter().sum::<f64>() / n.max(1) as f64;

    claims
        .iter()
        .enumerate()
        .map(|(i, (triple, value, source))| {
            // Eq. 8: mean similarity to peers.
            let consistency = if n > 1 {
                (0..n).filter(|&j| j != i).map(|j| sim[i][j]).sum::<f64>() / (n - 1) as f64
            } else {
                0.5
            };
            // Eq. 10.
            let auth_llm = llm.squash_authority(raw_c[i], c_mean, config.beta);
            // Eq. 11: support = summed agreement mass for this value.
            let support: f64 = (0..n)
                .filter(|&j| {
                    // Peers agreeing with this claim's value.
                    sim[i][j] > 0.999 || j == i
                })
                .count() as f64;
            let auth_hist = history.auth_hist(*source, support, n);
            // Eq. 9.
            let authority = config.alpha * auth_llm + (1.0 - config.alpha) * auth_hist;
            NodeConfidence {
                triple: *triple,
                value: value.clone(),
                source: *source,
                consistency,
                auth_llm,
                auth_hist,
                authority,
                confidence: consistency + authority,
            }
        })
        .collect()
}

fn type_tag(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Int(_) | Value::Float(_) => "num",
        Value::Str(_) => "str",
        Value::List(_) => "list",
    }
}

// -------------------------------------------------------------------
// Profile kernel (the hot path)
// -------------------------------------------------------------------

/// One homologous node's claim, precomputed once per slot.
///
/// All per-comparison string work is hoisted here: the canonical key of
/// the full value and of every scalar member is resolved to a [`Symbol`]
/// from one [`KeyInterner`], the member distribution is a dense vec
/// sorted by resolved key string, and the entropy is precomputed.
/// Profiles are only comparable when built against the **same**
/// interner — symbol equality then coincides with canonical-key
/// equality.
#[derive(Debug, Clone, PartialEq)]
pub struct ClaimProfile {
    /// Representative triple (first one the source asserted).
    pub triple: TripleId,
    /// The claim's (standardized) value — lists for multi-valued nodes.
    pub value: Value,
    /// Asserting source.
    pub source: SourceId,
    /// Interned canonical key of `value` (the gate's support key).
    pub key: Symbol,
    /// First scalar claim (`Value::Null` when the set is empty) — the
    /// operand of the degenerate both-zero-entropy fallback.
    pub rep: Value,
    /// Interned canonical key of `rep`.
    pub rep_key: Symbol,
    /// Distribution over scalar-member keys, sorted by resolved key
    /// string, masses accumulated as repeated `+= 1/n` (matching the
    /// reference path's float ops exactly).
    pub dist: Vec<(Symbol, f64)>,
    /// Shannon entropy (Eq. 6) of `dist`, in nats.
    pub entropy: f64,
}

impl ClaimProfile {
    /// Builds a profile for one claim value. `known_key` short-circuits
    /// the whole-value key when the caller already has it interned
    /// (the per-triple cache of [`KeyInterner::for_graph`]).
    pub fn build(
        triple: TripleId,
        value: Value,
        source: SourceId,
        known_key: Option<Symbol>,
        keys: &mut KeyInterner,
    ) -> ClaimProfile {
        let key = match known_key {
            Some(k) => k,
            None => keys.key_of(&value),
        };
        if !matches!(value, Value::List(_)) {
            // Scalar claim: the member distribution is {key: 1.0} and
            // the entropy is the reference's -(1.0 · ln 1.0) = -0.0.
            return ClaimProfile {
                triple,
                rep: value.clone(),
                value,
                source,
                key,
                rep_key: key,
                dist: vec![(key, 1.0)],
                entropy: -(1.0f64 * 1.0f64.ln()),
            };
        }
        let scalars = value.scalar_claims();
        let w = 1.0 / scalars.len().max(1) as f64;
        let mut dist: Vec<(Symbol, f64)> = Vec::with_capacity(scalars.len());
        for s in &scalars {
            let k = keys.key_of(s);
            match dist.iter_mut().find(|(dk, _)| *dk == k) {
                Some(slot) => slot.1 += w,
                None => dist.push((k, w)),
            }
        }
        dist.sort_by(|l, r| keys.resolve(l.0).cmp(keys.resolve(r.0)));
        let entropy = -dist
            .iter()
            .filter(|(_, p)| *p > 0.0)
            .map(|(_, p)| p * p.ln())
            .sum::<f64>();
        let rep = scalars.first().cloned().unwrap_or(Value::Null);
        let rep_key = keys.key_of(&rep);
        ClaimProfile {
            triple,
            value,
            source,
            key,
            rep,
            rep_key,
            dist,
            entropy,
        }
    }
}

/// Builds the per-source claim profiles of a homologous group — the
/// profile analogue of the reference path's `group_values`, sharing its
/// first-seen source order and list aggregation.
pub fn build_profiles(
    kg: &KnowledgeGraph,
    group: &HomologousGroup,
    keys: &mut KeyInterner,
) -> Vec<ClaimProfile> {
    let mut order: Vec<SourceId> = Vec::new();
    let mut per_source: FxHashMap<SourceId, Vec<(TripleId, Value)>> = FxHashMap::default();
    for &tid in &group.triples {
        let value = kg.triple_value(tid).standardized();
        per_source
            .entry(kg.triple(tid).source)
            .or_insert_with(|| {
                order.push(kg.triple(tid).source);
                Vec::new()
            })
            .push((tid, value));
    }
    order
        .into_iter()
        .filter_map(|source| per_source.remove(&source).map(|items| (source, items)))
        .map(|(source, items)| {
            let mut items = items.into_iter();
            match (items.next(), items.next()) {
                (Some((tid, value)), None) => {
                    // Single-triple node: its standardized key is in
                    // the per-graph cache — no string is built at all.
                    let known = keys.triple_key(tid);
                    ClaimProfile::build(tid, value, source, known, keys)
                }
                (first, second) => {
                    let first_tid = first.as_ref().map(|(tid, _)| *tid).unwrap_or(TripleId(0));
                    let values: Vec<Value> = first
                        .into_iter()
                        .chain(second)
                        .chain(items)
                        .map(|(_, v)| v)
                        .collect();
                    ClaimProfile::build(first_tid, Value::List(values), source, None, keys)
                }
            }
        })
        .collect()
}

/// Eqs. 4–5 as an allocation-free merge-join over two sorted profile
/// distributions. Bit-identical to [`mi_similarity`] on the profiles'
/// values (proptested).
pub fn nmi_similarity(a: &ClaimProfile, b: &ClaimProfile, keys: &KeyInterner) -> f64 {
    let (hi, hj) = (a.entropy, b.entropy);
    if hi + hj < 1e-12 {
        if a.rep_key == b.rep_key {
            return 1.0;
        }
        return (1.0 - a.rep.distance(&b.rep)) * 0.45;
    }
    let mut mi = 0.0;
    let mut overlap = 0.0;
    let (mut x, mut y) = (0usize, 0usize);
    // Both dists are sorted by resolved key string, so matches surface
    // in exactly the order the reference path's sorted iteration visits
    // them — the float accumulation sequence is identical.
    while let (Some(&(ka, pa)), Some(&(kb, pb))) = (a.dist.get(x), b.dist.get(y)) {
        if ka == kb {
            let p = pa.min(pb);
            overlap += p;
            if p > 0.0 {
                mi += p * (p / (pa * pb)).ln();
            }
            x += 1;
            y += 1;
        } else if keys.resolve(ka) < keys.resolve(kb) {
            x += 1;
        } else {
            y += 1;
        }
    }
    (2.0 * mi / (hi + hj)).max(overlap).clamp(0.0, 1.0)
}

/// Kernel operation counters, merged up into the `multirag-obs`
/// metrics registry by the pipeline.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelCounters {
    /// NMI merge-join evaluations (one per unordered node pair).
    pub nmi_pairs: u64,
    /// Claim profiles constructed.
    pub profiles_built: u64,
}

impl KernelCounters {
    /// Adds another counter snapshot into this one.
    pub fn merge(&mut self, other: KernelCounters) {
        self.nmi_pairs += other.nmi_pairs;
        self.profiles_built += other.profiles_built;
    }

    /// The increments accumulated since `earlier`.
    pub fn since(self, earlier: KernelCounters) -> KernelCounters {
        KernelCounters {
            nmi_pairs: self.nmi_pairs.saturating_sub(earlier.nmi_pairs),
            profiles_built: self.profiles_built.saturating_sub(earlier.profiles_built),
        }
    }
}

/// Dense symmetric pairwise-similarity matrix over one slot's profiles.
struct SimMatrix {
    n: usize,
    cells: Vec<f64>,
}

impl SimMatrix {
    /// Computes every unordered pair once, in `(i, j>i)` order, and
    /// returns the matrix plus the Eq. 7 sum and pair count.
    fn build(
        profiles: &[ClaimProfile],
        keys: &KeyInterner,
        counters: &mut KernelCounters,
    ) -> (SimMatrix, f64, usize) {
        let n = profiles.len();
        let mut m = SimMatrix {
            n,
            cells: vec![0.0; n * n],
        };
        let mut total = 0.0;
        let mut pairs = 0usize;
        for (i, a) in profiles.iter().enumerate() {
            for (j, b) in profiles.iter().enumerate().skip(i + 1) {
                let s = nmi_similarity(a, b, keys);
                m.set(i, j, s);
                m.set(j, i, s);
                total += s;
                pairs += 1;
            }
        }
        counters.nmi_pairs += pairs as u64;
        (m, total, pairs)
    }

    fn get(&self, i: usize, j: usize) -> f64 {
        self.cells.get(i * self.n + j).copied().unwrap_or(0.0)
    }

    fn set(&mut self, i: usize, j: usize, s: f64) {
        if let Some(cell) = self.cells.get_mut(i * self.n + j) {
            *cell = s;
        }
    }
}

fn unassessed_profile(p: &ClaimProfile) -> NodeConfidence {
    unassessed((p.triple, p.value.clone(), p.source))
}

fn uniform_profile(p: &ClaimProfile) -> NodeConfidence {
    uniform_assessment((p.triple, p.value.clone(), p.source))
}

/// Node-level assessment over the gated profile subset, reusing the
/// slot's shared similarity matrix: consistency, gate support and the
/// Eq. 11 agreement mass are all index lookups — no `canonical_key()`
/// scans.
#[allow(clippy::too_many_arguments)]
fn assess_profiles(
    kg: &KnowledgeGraph,
    group: &HomologousGroup,
    sub: &[(usize, &ClaimProfile)],
    sim: &SimMatrix,
    llm: &mut MockLlm,
    history: &HistoryStore,
    config: &MultiRagConfig,
    max_degree: usize,
) -> Vec<NodeConfidence> {
    let n = sub.len();
    // Same FxHashMap construction as the reference: its max-by tie
    // break depends on iteration order, which is a function of the
    // (identical) insertion sequence.
    let mut type_counts: FxHashMap<&'static str, usize> = FxHashMap::default();
    for (_, p) in sub {
        *type_counts.entry(type_tag(&p.value)).or_insert(0) += 1;
    }
    let dominant = type_counts
        .iter()
        .max_by_key(|(_, &c)| c)
        .map(|(&t, _)| t)
        .unwrap_or("str");

    let degree = kg.neighbors(group.entity).len();
    let history_tokens = ((1.0 - config.alpha) * 40.0) as usize;
    if history_tokens > 0 {
        llm.reason(history_tokens * n, 4);
    }
    let mut raw_c: Vec<f64> = Vec::with_capacity(n);
    for (_, p) in sub {
        let support = sub.iter().filter(|(_, q)| q.key == p.key).count() as f64;
        let features = AuthorityFeatures {
            degree,
            max_degree,
            type_consistency: if type_tag(&p.value) == dominant {
                1.0
            } else {
                0.3
            },
            path_support: support / n as f64,
            source_reputation: history.credibility(p.source),
        };
        let c = llm
            .try_score_authority(&format!("t{}", p.triple.0), &features)
            .unwrap_or(0.5);
        raw_c.push(c);
    }
    let c_mean = raw_c.iter().sum::<f64>() / n.max(1) as f64;

    sub.iter()
        .zip(raw_c)
        .enumerate()
        .map(|(a, ((i, p), c))| {
            let consistency = if n > 1 {
                let mut acc = 0.0;
                for (b, (j, _)) in sub.iter().enumerate() {
                    if b != a {
                        acc += sim.get(*i, *j);
                    }
                }
                acc / (n - 1) as f64
            } else {
                0.5
            };
            let auth_llm = llm.squash_authority(c, c_mean, config.beta);
            let support = sub
                .iter()
                .enumerate()
                .filter(|(b, (j, _))| sim.get(*i, *j) > 0.999 || *b == a)
                .count() as f64;
            let auth_hist = history.auth_hist(p.source, support, n);
            let authority = config.alpha * auth_llm + (1.0 - config.alpha) * auth_hist;
            NodeConfidence {
                triple: p.triple,
                value: p.value.clone(),
                source: p.source,
                consistency,
                auth_llm,
                auth_hist,
                authority,
                confidence: consistency + authority,
            }
        })
        .collect()
}

// -------------------------------------------------------------------
// Algorithm 1
// -------------------------------------------------------------------

/// The outcome of the MCC filtering for one slot (Algorithm 1).
#[derive(Debug, Clone, Default)]
pub struct MccOutcome {
    /// Graph confidence of the slot's subgraph (if homologous).
    pub graph: Option<GraphConfidence>,
    /// Claims that survived (`SVs` members).
    pub kept: Vec<NodeConfidence>,
    /// Claims filtered out (`LVs` additions).
    pub dropped: Vec<NodeConfidence>,
    /// Claims that survived the graph-level gate into node assessment.
    pub gated: usize,
    /// Cost of the graph-level stage (MI confidence + gating).
    pub graph_cost: multirag_obs::StageCost,
    /// Cost of the node-level stage (assessment + thresholding) — the
    /// expert-LLM half, so `sim_ms` is nonzero when node level is on.
    pub node_cost: multirag_obs::StageCost,
}

/// The confidence stages' single wall-clock site (lint D02): real
/// elapsed time feeds only the *measured* `wall_s` half of
/// [`multirag_obs::StageCost`]; every byte-stable artifact consumes
/// `sim_ms` instead.
struct StageClock(multirag_obs::WallTimer);

impl StageClock {
    fn start() -> StageClock {
        StageClock(multirag_obs::WallTimer::start())
    }

    fn cost(&self, sim_ms: f64) -> multirag_obs::StageCost {
        multirag_obs::StageCost {
            wall_s: self.0.elapsed_s(),
            sim_ms,
        }
    }
}

/// Node-level threshold (Algorithm 1, line 17) plus the rescue rule,
/// shared verbatim by the kernel and reference paths.
fn threshold_and_rescue(
    outcome: &mut MccOutcome,
    candidates: Vec<NodeConfidence>,
    config: &MultiRagConfig,
) {
    for node in candidates {
        if !config.enable_node_level || node.confidence > config.node_threshold {
            outcome.kept.push(node);
        } else {
            outcome.dropped.push(node);
        }
    }
    // Low-confidence subgraphs must still yield an answer candidate:
    // the paper extracts *more* nodes from them rather than abstaining.
    // When the threshold wiped the slate, rescue the most trustworthy
    // node — this is where authority (history + expert score) breaks
    // consistency ties that voting cannot.
    if outcome.kept.is_empty() && !outcome.dropped.is_empty() {
        let best = outcome
            .dropped
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.confidence
                    .partial_cmp(&b.confidence)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.triple.cmp(&a.triple))
            })
            .map(|(i, _)| i)
            .expect("nonempty");
        outcome.kept.push(outcome.dropped.remove(best));
    }
}

/// Algorithm 1 applied to one homologous group: graph-level gating,
/// then node-level thresholding.
///
/// Dispatches to [`mcc_filter_profiles`] (the hot path) or, under
/// [`MultiRagConfig::use_reference_mcc`], to [`mcc_filter_reference`];
/// both produce bit-identical outcomes.
pub fn mcc_filter(
    kg: &KnowledgeGraph,
    group: &HomologousGroup,
    llm: &mut MockLlm,
    history: &HistoryStore,
    config: &MultiRagConfig,
    max_degree: usize,
) -> MccOutcome {
    if config.use_reference_mcc {
        return mcc_filter_reference(kg, group, llm, history, config, max_degree);
    }
    let mut keys = KeyInterner::new();
    let profiles = build_profiles(kg, group, &mut keys);
    let mut counters = KernelCounters::default();
    mcc_filter_profiles(
        kg,
        group,
        &profiles,
        &keys,
        llm,
        history,
        config,
        max_degree,
        &mut counters,
    )
}

/// Algorithm 1 over precomputed [`ClaimProfile`]s — the one-pass hot
/// path. The similarity matrix is computed once and shared by the
/// graph confidence, the gate, node assessment and the rescue rule.
/// `profiles` must have been built against `keys`.
#[allow(clippy::too_many_arguments)]
pub fn mcc_filter_profiles(
    kg: &KnowledgeGraph,
    group: &HomologousGroup,
    profiles: &[ClaimProfile],
    keys: &KeyInterner,
    llm: &mut MockLlm,
    history: &HistoryStore,
    config: &MultiRagConfig,
    max_degree: usize,
    counters: &mut KernelCounters,
) -> MccOutcome {
    let graph_clock = StageClock::start();
    let n = profiles.len();
    let (sim, total, pairs) = SimMatrix::build(profiles, keys, counters);
    let graph = if n < 2 {
        GraphConfidence {
            value: 0.5,
            unordered_pairs: 0,
            ordered_pairs: 0,
        }
    } else {
        GraphConfidence {
            value: total / pairs as f64,
            unordered_pairs: pairs,
            ordered_pairs: pairs * 2,
        }
    };
    let mut outcome = MccOutcome {
        graph: Some(graph),
        ..Default::default()
    };
    // Graph-level gate FIRST (the coarse-ranking stage of the paper's
    // coarse/fine scheme); see `mcc_filter_reference` for the paper
    // rationale. Support counts and the kept-value set work on interned
    // key ids — no string is built or compared.
    let mut pool: Vec<usize> = (0..n).collect();
    if config.enable_graph_level && graph.value >= config.graph_threshold {
        let mut ranked: Vec<(usize, TripleId, Symbol, usize)> = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let support = profiles.iter().filter(|q| q.key == p.key).count();
                (support, p.triple, p.key, i)
            })
            .collect();
        ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let keep = config.trusted_top_k.max(1);
        let mut kept_keys: Vec<Symbol> = Vec::new();
        let mut gated: Vec<usize> = Vec::new();
        for (_, _, key, i) in ranked {
            if kept_keys.contains(&key) || kept_keys.len() < keep {
                if !kept_keys.contains(&key) {
                    kept_keys.push(key);
                }
                gated.push(i);
            } else if let Some(p) = profiles.get(i) {
                outcome.dropped.push(unassessed_profile(p));
            }
        }
        gated.sort_by_key(|&i| profiles.get(i).map(|p| p.triple));
        pool = gated;
    }
    outcome.gated = pool.len();
    outcome.graph_cost = graph_clock.cost(0.0);
    let node_clock = StageClock::start();
    let sim_before = llm.usage().simulated_ms;
    let sub: Vec<(usize, &ClaimProfile)> = pool
        .iter()
        .filter_map(|&i| profiles.get(i).map(|p| (i, p)))
        .collect();
    let candidates: Vec<NodeConfidence> = if config.enable_node_level {
        assess_profiles(kg, group, &sub, &sim, llm, history, config, max_degree)
    } else {
        sub.iter().map(|(_, p)| uniform_profile(p)).collect()
    };
    threshold_and_rescue(&mut outcome, candidates, config);
    outcome.node_cost = node_clock.cost(llm.usage().simulated_ms - sim_before);
    outcome
}

/// Algorithm 1, naive retained implementation: string-keyed
/// distributions rebuilt per pair, one extra O(n²) similarity pass in
/// node assessment. The equivalence oracle for the kernel path (and
/// the baseline the `repro_perf` harness measures against).
pub fn mcc_filter_reference(
    kg: &KnowledgeGraph,
    group: &HomologousGroup,
    llm: &mut MockLlm,
    history: &HistoryStore,
    config: &MultiRagConfig,
    max_degree: usize,
) -> MccOutcome {
    let graph_clock = StageClock::start();
    // One `group_values` pass feeds both the graph confidence and the
    // gate pool (it used to be recomputed three times per slot).
    let claims = group_values(kg, group);
    let graph = graph_confidence_of(&claims);
    let mut outcome = MccOutcome {
        graph: Some(graph),
        ..Default::default()
    };
    // Graph-level gate FIRST (the coarse-ranking stage of the paper's
    // coarse/fine scheme): a high-confidence subgraph needs only the
    // top 1–2 *answer candidates*; a low-confidence one keeps
    // everything for wider node-level verification (§IV-C intro).
    // Gating before the expensive node assessment is exactly why
    // removing the graph level inflates the time columns in Table III
    // (every node then pays for an expert-LLM assessment).
    let mut pool = claims;
    if config.enable_graph_level && graph.value >= config.graph_threshold {
        // Rank by cheap agreement support (how many peer sources assert
        // the same value set) and keep the top-k distinct values —
        // distinct values, not claims, so multi-valued truths survive.
        let support = |value: &Value| {
            pool.iter()
                .filter(|(_, v, _)| v.canonical_key() == value.canonical_key())
                .count()
        };
        let mut ranked: Vec<(usize, (TripleId, Value, SourceId))> = pool
            .iter()
            .cloned()
            .map(|claim| (support(&claim.1), claim))
            .collect();
        ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1 .0.cmp(&b.1 .0)));
        let keep = config.trusted_top_k.max(1);
        let mut kept_values: Vec<String> = Vec::new();
        let mut gated: Vec<(TripleId, Value, SourceId)> = Vec::new();
        for (_, claim) in ranked {
            let key = claim.1.canonical_key();
            if kept_values.contains(&key) || kept_values.len() < keep {
                if !kept_values.contains(&key) {
                    kept_values.push(key);
                }
                gated.push(claim);
            } else {
                outcome.dropped.push(unassessed(claim));
            }
        }
        gated.sort_by_key(|c| c.0);
        pool = gated;
    }
    outcome.gated = pool.len();
    outcome.graph_cost = graph_clock.cost(0.0);
    let node_clock = StageClock::start();
    let sim_before = llm.usage().simulated_ms;
    // Node-level confidence computation is the expensive, expert-LLM-
    // backed stage; when it is ablated (w/o Node Level, w/o MCC) no
    // assessment happens at all — nodes ride into the context with a
    // flat weight and the PT column collapses, exactly as Table III
    // shows.
    let candidates: Vec<NodeConfidence> = if config.enable_node_level {
        assess_claims(kg, group, &pool, llm, history, config, max_degree)
    } else {
        pool.into_iter().map(uniform_assessment).collect()
    };
    threshold_and_rescue(&mut outcome, candidates, config);
    outcome.node_cost = node_clock.cost(llm.usage().simulated_ms - sim_before);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homologous::match_slot;
    use multirag_llmsim::Schema;

    fn graph_with_claims(values: &[&str]) -> (KnowledgeGraph, HomologousGroup) {
        let mut kg = KnowledgeGraph::new();
        let flight = kg.add_entity("CA981", "flights");
        let status = kg.add_relation("status");
        for (i, v) in values.iter().enumerate() {
            let s = kg.add_source(&format!("s{i}"), "json", "flights");
            kg.add_triple(flight, status, Value::from(*v), s, 0);
        }
        let mut sets = match_slot(&kg, flight, status);
        // A lone claim is "isolated" for the matcher; hand-build the
        // one-node group so the filters can still be exercised on it.
        let group = match sets.groups.drain(..).next() {
            Some(g) => g,
            None => HomologousGroup {
                entity: flight,
                relation: status,
                triples: sets.isolated.clone(),
                source_count: sets.isolated.len(),
            },
        };
        (kg, group)
    }

    /// The kernel NMI on two raw values, via throwaway profiles.
    fn kernel_nmi(a: &Value, b: &Value) -> f64 {
        let mut keys = KeyInterner::new();
        let pa = ClaimProfile::build(TripleId(0), a.clone(), SourceId(0), None, &mut keys);
        let pb = ClaimProfile::build(TripleId(1), b.clone(), SourceId(1), None, &mut keys);
        nmi_similarity(&pa, &pb, &keys)
    }

    fn assert_outcomes_bit_identical(a: &MccOutcome, b: &MccOutcome) {
        match (a.graph, b.graph) {
            (Some(x), Some(y)) => {
                assert_eq!(x.value.to_bits(), y.value.to_bits(), "graph value");
                assert_eq!(x.unordered_pairs, y.unordered_pairs);
                assert_eq!(x.ordered_pairs, y.ordered_pairs);
            }
            (None, None) => {}
            _ => panic!("graph presence mismatch"),
        }
        assert_eq!(a.gated, b.gated, "gated count");
        assert_eq!(a.kept.len(), b.kept.len(), "kept len");
        assert_eq!(a.dropped.len(), b.dropped.len(), "dropped len");
        for (x, y) in a
            .kept
            .iter()
            .zip(&b.kept)
            .chain(a.dropped.iter().zip(&b.dropped))
        {
            assert_eq!(x.triple, y.triple);
            assert_eq!(x.value, y.value);
            assert_eq!(x.source, y.source);
            assert_eq!(x.consistency.to_bits(), y.consistency.to_bits());
            assert_eq!(x.auth_llm.to_bits(), y.auth_llm.to_bits());
            assert_eq!(x.auth_hist.to_bits(), y.auth_hist.to_bits());
            assert_eq!(x.authority.to_bits(), y.authority.to_bits());
            assert_eq!(x.confidence.to_bits(), y.confidence.to_bits());
        }
        assert_eq!(
            a.node_cost.sim_ms.to_bits(),
            b.node_cost.sim_ms.to_bits(),
            "simulated node cost"
        );
    }

    #[test]
    fn mi_similarity_of_identical_singletons_is_one() {
        assert!(
            (mi_similarity(&Value::from("delayed"), &Value::from("delayed")) - 1.0).abs() < 1e-9
        );
        assert!((mi_similarity(&Value::Int(5), &Value::Float(5.0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mi_similarity_of_disjoint_singletons_is_low() {
        let s = mi_similarity(&Value::from("delayed"), &Value::from("quartz"));
        assert!(s < 0.3, "similarity {s}");
    }

    #[test]
    fn mi_similarity_of_identical_sets_is_high() {
        let a = Value::List(vec![Value::from("x"), Value::from("y")]);
        let b = Value::List(vec![Value::from("x"), Value::from("y")]);
        let s = mi_similarity(&a, &b);
        assert!(s > 0.9, "similarity {s}");
    }

    #[test]
    fn mi_similarity_of_partially_overlapping_sets_is_middling() {
        let a = Value::List(vec![Value::from("x"), Value::from("y")]);
        let b = Value::List(vec![Value::from("x"), Value::from("z")]);
        let s = mi_similarity(&a, &b);
        let identical = mi_similarity(&a, &a);
        let disjoint = mi_similarity(&a, &Value::List(vec![Value::from("p"), Value::from("q")]));
        assert!(s < identical && s > disjoint, "s={s}");
    }

    #[test]
    fn mi_similarity_is_symmetric_and_bounded() {
        let pairs = [
            (Value::from("a"), Value::from("b")),
            (
                Value::List(vec![Value::from("a"), Value::from("b")]),
                Value::from("a"),
            ),
            (Value::Int(3), Value::from("3")),
        ];
        for (a, b) in &pairs {
            let ab = mi_similarity(a, b);
            let ba = mi_similarity(b, a);
            assert!((ab - ba).abs() < 1e-9);
            assert!((0.0..=1.0).contains(&ab));
        }
    }

    #[test]
    fn nmi_kernel_is_bit_identical_to_reference() {
        let values = [
            Value::from("delayed"),
            Value::from("quartz"),
            Value::Int(5),
            Value::Float(5.0),
            Value::Null,
            Value::from(""),
            Value::List(vec![Value::from("x"), Value::from("y")]),
            Value::List(vec![Value::from("x"), Value::from("z")]),
            Value::List(vec![Value::from("x"), Value::from("x"), Value::from("y")]),
            Value::List(vec![]),
            Value::List(vec![Value::from("a"), Value::Int(3), Value::Float(3.5)]),
        ];
        for a in &values {
            for b in &values {
                assert_eq!(
                    kernel_nmi(a, b).to_bits(),
                    mi_similarity(a, b).to_bits(),
                    "kernel vs reference on {a:?} / {b:?}"
                );
            }
        }
    }

    #[test]
    fn graph_confidence_reports_both_pair_counts() {
        let (kg, group) = graph_with_claims(&["delayed", "delayed", "on-time", "boarding"]);
        let gc = graph_confidence(&kg, &group);
        assert_eq!(gc.unordered_pairs, 6, "4·3/2 unordered pairs");
        assert_eq!(gc.ordered_pairs, 12, "Eq. 7 double-sum count");
        let (kg1, g1) = graph_with_claims(&["delayed"]);
        let gc1 = graph_confidence(&kg1, &g1);
        assert_eq!((gc1.unordered_pairs, gc1.ordered_pairs), (0, 0));
        assert_eq!(gc1.value, 0.5);
    }

    #[test]
    fn consistent_groups_have_high_graph_confidence() {
        let (kg, group) = graph_with_claims(&["delayed", "delayed", "delayed", "delayed"]);
        let gc = graph_confidence(&kg, &group);
        assert!(gc.value > 0.9, "confidence {}", gc.value);
    }

    #[test]
    fn conflicted_groups_have_low_graph_confidence() {
        let (kg, group) = graph_with_claims(&["delayed", "on-time", "boarding", "cancelled"]);
        let gc = graph_confidence(&kg, &group);
        assert!(gc.value < 0.4, "confidence {}", gc.value);
    }

    #[test]
    fn majority_agreement_sits_between() {
        let (kg, group) = graph_with_claims(&["delayed", "delayed", "delayed", "on-time"]);
        let gc = graph_confidence(&kg, &group);
        let (kg2, g2) = graph_with_claims(&["delayed", "delayed", "delayed", "delayed"]);
        let (kg3, g3) = graph_with_claims(&["a", "b", "c", "d"]);
        assert!(gc.value < graph_confidence(&kg2, &g2).value);
        assert!(gc.value > graph_confidence(&kg3, &g3).value);
    }

    #[test]
    fn node_assessment_prefers_majority_claims() {
        let (kg, group) = graph_with_claims(&["delayed", "delayed", "delayed", "on-time"]);
        let mut llm = MockLlm::new(Schema::new(), 7);
        let history = HistoryStore::paper_defaults();
        let config = MultiRagConfig::default();
        let nodes = assess_group(&kg, &group, &mut llm, &history, &config, 10);
        // Node values are standardized ("on-time" → "on time").
        let delayed: Vec<&NodeConfidence> = nodes
            .iter()
            .filter(|a| a.value == Value::from("delayed"))
            .collect();
        let outlier = nodes
            .iter()
            .find(|a| a.value == Value::from("on time"))
            .unwrap();
        for d in &delayed {
            assert!(
                d.confidence > outlier.confidence,
                "majority {} vs outlier {}",
                d.confidence,
                outlier.confidence
            );
            assert!(d.consistency > outlier.consistency);
        }
    }

    #[test]
    fn history_biases_authority() {
        let (kg, group) = graph_with_claims(&["delayed", "on-time"]);
        let mut llm = MockLlm::new(Schema::new(), 7);
        let history = HistoryStore::paper_defaults();
        // Source s0 (delayed) has an excellent record; s1 terrible.
        history.record(SourceId(0), 95, 100);
        history.record(SourceId(1), 5, 100);
        let config = MultiRagConfig::default();
        let nodes = assess_group(&kg, &group, &mut llm, &history, &config, 10);
        let good = nodes.iter().find(|a| a.source == SourceId(0)).unwrap();
        let bad = nodes.iter().find(|a| a.source == SourceId(1)).unwrap();
        assert!(good.auth_hist > bad.auth_hist);
        assert!(good.authority > bad.authority);
    }

    #[test]
    fn mcc_filter_drops_low_confidence_outliers() {
        let (kg, group) =
            graph_with_claims(&["delayed", "delayed", "delayed", "delayed", "quartz"]);
        let mut llm = MockLlm::new(Schema::new(), 7);
        let history = HistoryStore::paper_defaults();
        let config = MultiRagConfig {
            enable_graph_level: false, // isolate the node-level check
            ..MultiRagConfig::default()
        };
        let outcome = mcc_filter(&kg, &group, &mut llm, &history, &config, 10);
        assert!(outcome
            .kept
            .iter()
            .all(|n| n.value == Value::from("delayed")));
        assert!(outcome
            .dropped
            .iter()
            .any(|n| n.value == Value::from("quartz")));
    }

    #[test]
    fn graph_level_gate_keeps_top_k_distinct_values() {
        // Three distinct values in a (numerically close) year slot:
        // the gate must cap the surviving *values* at trusted_top_k.
        let (kg, group) = graph_with_claims(&["delayed", "delayed", "on-time", "boarding"]);
        let mut llm = MockLlm::new(Schema::new(), 7);
        let history = HistoryStore::paper_defaults();
        let config = MultiRagConfig {
            enable_node_level: false,
            graph_threshold: 0.0, // force the trusted path
            ..MultiRagConfig::default()
        };
        let outcome = mcc_filter(&kg, &group, &mut llm, &history, &config, 10);
        let distinct: std::collections::HashSet<String> = outcome
            .kept
            .iter()
            .map(|n| n.value.canonical_key())
            .collect();
        assert!(distinct.len() <= config.trusted_top_k);
        assert!(!outcome.dropped.is_empty());
        // A fully consistent group keeps all its (single-valued) nodes.
        let (kg2, g2) = graph_with_claims(&["delayed", "delayed", "delayed", "delayed"]);
        let outcome2 = mcc_filter(&kg2, &g2, &mut llm, &history, &config, 10);
        assert_eq!(outcome2.kept.len(), 4);
    }

    #[test]
    fn low_confidence_groups_keep_all_candidates_for_verification() {
        let (kg, group) = graph_with_claims(&["a", "b", "c", "d"]);
        let mut llm = MockLlm::new(Schema::new(), 7);
        let history = HistoryStore::paper_defaults();
        let config = MultiRagConfig {
            enable_node_level: false, // watch the gate alone
            ..MultiRagConfig::default()
        };
        let outcome = mcc_filter(&kg, &group, &mut llm, &history, &config, 10);
        assert!(outcome.graph.unwrap().value < config.graph_threshold);
        assert_eq!(outcome.kept.len(), 4);
    }

    #[test]
    fn disabled_mcc_keeps_everything() {
        let (kg, group) = graph_with_claims(&["a", "b", "c"]);
        let mut llm = MockLlm::new(Schema::new(), 7);
        let history = HistoryStore::paper_defaults();
        let config = MultiRagConfig::default().without_mcc();
        let outcome = mcc_filter(&kg, &group, &mut llm, &history, &config, 10);
        assert_eq!(outcome.kept.len(), 3);
        assert!(outcome.dropped.is_empty());
    }

    #[test]
    fn kernel_filter_is_bit_identical_to_reference_filter() {
        let scenarios: &[&[&str]] = &[
            &["delayed", "delayed", "delayed", "on-time"],
            &["delayed", "on-time", "boarding", "cancelled"],
            &["delayed", "delayed", "delayed", "delayed", "quartz"],
            &["a", "b", "c", "d"],
            &["delayed"],
            &["delayed", "delayed"],
        ];
        let configs = [
            MultiRagConfig::default(),
            MultiRagConfig {
                graph_threshold: 0.0,
                ..MultiRagConfig::default()
            },
            MultiRagConfig::default().without_graph_level(),
            MultiRagConfig::default().without_node_level(),
            MultiRagConfig::default().without_mcc(),
            MultiRagConfig::default().with_alpha(0.9),
        ];
        for values in scenarios {
            for config in &configs {
                let (kg, group) = graph_with_claims(values);
                let history = HistoryStore::paper_defaults();
                history.record(SourceId(0), 90, 100);
                // Two fresh LLMs with the same seed: the call sequences
                // must line up for the responses (and simulated cost)
                // to match.
                let mut llm_k = MockLlm::new(Schema::new(), 7);
                let mut llm_r = MockLlm::new(Schema::new(), 7);
                let kernel = mcc_filter(&kg, &group, &mut llm_k, &history, config, 10);
                let reference = mcc_filter_reference(&kg, &group, &mut llm_r, &history, config, 10);
                assert_outcomes_bit_identical(&kernel, &reference);
                assert_eq!(
                    llm_k.usage().simulated_ms.to_bits(),
                    llm_r.usage().simulated_ms.to_bits(),
                    "identical LLM call sequence"
                );
            }
        }
    }

    #[test]
    fn profiles_share_interned_keys_across_sources() {
        let (kg, group) = graph_with_claims(&["delayed", "Delayed ", "on-time"]);
        let mut keys = KeyInterner::for_graph(&kg);
        let misses_after_build = keys.misses();
        let profiles = build_profiles(&kg, &group, &mut keys);
        assert_eq!(profiles.len(), 3);
        assert_eq!(
            profiles[0].key, profiles[1].key,
            "surface variants collapse"
        );
        assert_ne!(profiles[0].key, profiles[2].key);
        assert_eq!(
            keys.misses(),
            misses_after_build,
            "slot profiles intern nothing new — every key was precomputed per triple"
        );
        for p in &profiles {
            assert_eq!(keys.resolve(p.key), p.value.canonical_key());
            assert_eq!(p.dist.len(), 1);
            assert_eq!(p.entropy.to_bits(), (-(1.0f64 * 1.0f64.ln())).to_bits());
        }
    }
}
