//! Incremental multi-source line-graph maintenance.
//!
//! Real multi-source deployments stream: feeds update flight statuses
//! and stock prices continuously. Rebuilding the MLG from scratch per
//! batch throws away the aggregation the paper works hard to make
//! cheap. [`IncrementalMlg`] maintains the homologous-group index under
//! triple insertion in `O(log n)` per triple (amortized), so
//! consistency checks stay local as the graph grows.
//!
//! The structure deliberately tracks only what the query path needs —
//! slot groups and isolated points — not full line-graph adjacency
//! (which the batch [`crate::MultiSourceLineGraph`] provides when a
//! whole-graph view is wanted).

use crate::homologous::{HomologousGroup, HomologousSets};
use multirag_kg::{EntityId, FxHashMap, KnowledgeGraph, RelationId, SourceId, TripleId};

/// Slot key.
type Slot = (EntityId, RelationId);

/// An incrementally maintained homologous index.
#[derive(Debug, Default, Clone)]
pub struct IncrementalMlg {
    /// Slot → (triples, distinct sources).
    slots: FxHashMap<Slot, (Vec<TripleId>, Vec<SourceId>)>,
    /// Number of triples indexed.
    triples: usize,
}

impl IncrementalMlg {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the index over an existing graph (equivalent to feeding
    /// every triple through [`IncrementalMlg::insert`]).
    pub fn from_graph(kg: &KnowledgeGraph) -> Self {
        let mut index = Self::new();
        for (tid, t) in kg.iter_triples() {
            index.insert(t.subject, t.predicate, t.source, tid);
        }
        index
    }

    /// Registers one new triple. Returns the slot's updated homologous
    /// cardinality (1 = isolated, ≥2 = homologous group).
    pub fn insert(
        &mut self,
        subject: EntityId,
        predicate: RelationId,
        source: SourceId,
        triple: TripleId,
    ) -> usize {
        let entry = self
            .slots
            .entry((subject, predicate))
            .or_insert_with(|| (Vec::new(), Vec::new()));
        // Keep the triple list sorted so group views are deterministic.
        if let Err(pos) = entry.0.binary_search(&triple) {
            entry.0.insert(pos, triple);
            self.triples += 1;
        }
        if let Err(pos) = entry.1.binary_search(&source) {
            entry.1.insert(pos, source);
        }
        entry.0.len()
    }

    /// Number of indexed triples.
    pub fn triple_count(&self) -> usize {
        self.triples
    }

    /// Number of homologous groups (slots with ≥2 triples).
    pub fn group_count(&self) -> usize {
        self.slots.values().filter(|(t, _)| t.len() >= 2).count()
    }

    /// Number of isolated slots.
    pub fn isolated_count(&self) -> usize {
        self.slots.values().filter(|(t, _)| t.len() == 1).count()
    }

    /// The current homologous group of a slot, if it has one.
    pub fn slot_group(&self, subject: EntityId, predicate: RelationId) -> Option<HomologousGroup> {
        let (triples, sources) = self.slots.get(&(subject, predicate))?;
        if triples.len() < 2 {
            return None;
        }
        Some(HomologousGroup {
            entity: subject,
            relation: predicate,
            triples: triples.clone(),
            source_count: sources.len(),
        })
    }

    /// Materializes the full [`HomologousSets`] view (sorted by slot,
    /// like the batch matcher produces).
    pub fn to_sets(&self) -> HomologousSets {
        let mut sets = HomologousSets::default();
        let mut keys: Vec<&Slot> = self.slots.keys().collect();
        keys.sort_unstable();
        for key in keys {
            let (triples, sources) = &self.slots[key];
            if triples.len() >= 2 {
                sets.groups.push(HomologousGroup {
                    entity: key.0,
                    relation: key.1,
                    triples: triples.clone(),
                    source_count: sources.len(),
                });
            } else {
                sets.isolated.extend(triples.iter().copied());
            }
        }
        sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homologous::match_homologous;
    use multirag_datasets::movies::MoviesSpec;
    use multirag_kg::Value;

    #[test]
    fn insert_tracks_slot_cardinality() {
        let mut kg = KnowledgeGraph::new();
        let s0 = kg.add_source("a", "csv", "d");
        let s1 = kg.add_source("b", "json", "d");
        let e = kg.add_entity("X", "d");
        let r = kg.add_relation("attr");
        let t0 = kg.add_triple(e, r, Value::Int(1), s0, 0);
        let t1 = kg.add_triple(e, r, Value::Int(2), s1, 0);

        let mut index = IncrementalMlg::new();
        assert_eq!(index.insert(e, r, s0, t0), 1);
        assert_eq!(index.isolated_count(), 1);
        assert_eq!(index.group_count(), 0);
        assert_eq!(index.insert(e, r, s1, t1), 2);
        assert_eq!(index.group_count(), 1);
        assert_eq!(index.isolated_count(), 0);
        let group = index.slot_group(e, r).unwrap();
        assert_eq!(group.triples, vec![t0, t1]);
        assert_eq!(group.source_count, 2);
    }

    #[test]
    fn duplicate_inserts_are_idempotent() {
        let mut index = IncrementalMlg::new();
        let (e, r, s, t) = (EntityId(0), RelationId(0), SourceId(0), TripleId(0));
        index.insert(e, r, s, t);
        index.insert(e, r, s, t);
        assert_eq!(index.triple_count(), 1);
    }

    #[test]
    fn incremental_matches_batch_matcher_on_real_data() {
        let data = MoviesSpec::small().generate(42);
        let incremental = IncrementalMlg::from_graph(&data.graph).to_sets();
        let batch = match_homologous(&data.graph);
        assert_eq!(incremental.groups.len(), batch.groups.len());
        assert_eq!(incremental.isolated.len(), batch.isolated.len());
        for (a, b) in incremental.groups.iter().zip(&batch.groups) {
            assert_eq!(a.entity, b.entity);
            assert_eq!(a.relation, b.relation);
            assert_eq!(a.triples, b.triples);
            assert_eq!(a.source_count, b.source_count);
        }
    }

    #[test]
    fn same_source_reassertions_keep_source_count() {
        let mut index = IncrementalMlg::new();
        let (e, r, s) = (EntityId(0), RelationId(0), SourceId(0));
        index.insert(e, r, s, TripleId(0));
        index.insert(e, r, s, TripleId(1));
        let group = index.slot_group(e, r).unwrap();
        assert_eq!(group.triples.len(), 2);
        assert_eq!(group.source_count, 1);
    }

    #[test]
    fn streaming_growth_is_queryable_at_every_step() {
        let data = MoviesSpec::small().generate(7);
        let mut index = IncrementalMlg::new();
        for (i, (tid, t)) in data.graph.iter_triples().enumerate() {
            index.insert(t.subject, t.predicate, t.source, tid);
            assert_eq!(index.triple_count(), i + 1);
        }
        // Final state agrees with batch.
        let batch = match_homologous(&data.graph);
        assert_eq!(index.to_sets().groups.len(), batch.groups.len());
    }
}
