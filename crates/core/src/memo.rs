//! Per-epoch subgraph-confidence memoization for the serving path.
//!
//! MCC (Algorithm 1) is a pure function of the slot's content once the
//! history store is frozen: the graph-level gate `C(G)` depends only on
//! the claims' pairwise agreement, and each node-level `A(v)` blends a
//! seeded LLM authority score with the (frozen) historical credibility.
//! Paraphrased queries hitting the same `(entity, attribute)` slot can
//! therefore reuse the whole verdict instead of re-running the
//! consistency checks and their simulated LLM cost.
//!
//! The memo key is a [`profile_fingerprint`]: entity name, relation
//! name, and the sorted `(source name, interned standardized value
//! key)` pairs of the slot's [`ClaimProfile`]s — resolved from the
//! pipeline's [`multirag_kg::KeyInterner`], so no per-lookup `String`
//! is built. Keys are content-addressed so a slot whose membership
//! changed (a source quarantined mid-plan, a new claim streamed in)
//! misses cleanly. Entries are only valid within one epoch — `C(G)`
//! thresholds, `max_degree` and frozen credibility are epoch-scoped —
//! so the serving layer clears the memo on every swap.

use crate::confidence::{ClaimProfile, GraphConfidence, NodeConfidence};
use multirag_kg::{EntityId, FxHashMap, KeyInterner, KnowledgeGraph, RelationId};
use multirag_obs::MetricsRegistry;
use parking_lot::Mutex;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A memoized MCC verdict for one slot subgraph.
#[derive(Debug, Clone, Default)]
pub struct SlotVerdict {
    /// Graph-level confidence (None for isolated slots).
    pub graph: Option<GraphConfidence>,
    /// Claims that survived node-level assessment.
    pub kept: Vec<NodeConfidence>,
    /// Number of claims dropped.
    pub dropped: usize,
    /// Claims that reached node-level assessment (post graph gate).
    pub gated: usize,
}

/// Canonical content hash of a slot subgraph: entity name, relation
/// name, and sorted `(source name, standardized value key)` pairs of
/// its claim profiles.
///
/// The value keys are resolved from the interner the profiles were
/// built against — no string is rebuilt or allocated per lookup.
/// Object-entity claims already profile as their surface entity name
/// (the form the pipeline standardizes), so the key is stable under
/// triple-id renumbering across warm starts. A multi-valued source
/// contributes its aggregate list key, which discriminates exactly as
/// finely as hashing its member triples one by one.
pub fn profile_fingerprint(
    kg: &KnowledgeGraph,
    entity: EntityId,
    relation: RelationId,
    profiles: &[ClaimProfile],
    keys: &KeyInterner,
) -> u64 {
    let mut pairs: Vec<(&str, &str)> = profiles
        .iter()
        .map(|p| (kg.source_name(p.source), keys.resolve(p.key)))
        .collect();
    pairs.sort_unstable();
    let mut hasher = multirag_kg::FxHasher::default();
    kg.entity_name(entity).hash(&mut hasher);
    kg.entity_domain(entity).hash(&mut hasher);
    kg.relation_name(relation).hash(&mut hasher);
    pairs.hash(&mut hasher);
    hasher.finish()
}

#[derive(Debug, Default)]
struct MemoInner {
    entries: FxHashMap<u64, SlotVerdict>,
    metrics: Option<MetricsRegistry>,
}

/// Shared, thread-safe MCC verdict memo. Cheap to clone — all clones
/// share one store and one set of hit/miss counters.
#[derive(Debug, Clone, Default)]
pub struct ConfidenceMemo {
    inner: Arc<Mutex<MemoInner>>,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
}

impl ConfidenceMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a metrics registry: lookups bump
    /// `mcc_memo_hits_total` / `mcc_memo_misses_total`.
    pub fn attach_metrics(&self, metrics: MetricsRegistry) {
        self.inner.lock().metrics = Some(metrics);
    }

    /// Looks up a verdict, counting the hit or miss.
    pub fn get(&self, key: u64) -> Option<SlotVerdict> {
        let inner = self.inner.lock();
        let found = inner.entries.get(&key).cloned();
        match (&found, &inner.metrics) {
            (Some(_), Some(m)) => m.inc("mcc_memo_hits_total", 1),
            (None, Some(m)) => m.inc("mcc_memo_misses_total", 1),
            _ => {}
        }
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Stores a verdict.
    pub fn put(&self, key: u64, verdict: SlotVerdict) {
        self.inner.lock().entries.insert(key, verdict);
    }

    /// Drops every entry (epoch swap). Counters survive — they describe
    /// the run, not the epoch.
    pub fn clear(&self) {
        self.inner.lock().entries.clear();
    }

    /// Number of memoized slots.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence::build_profiles;
    use crate::homologous::match_slot;
    use multirag_kg::Value;

    fn slot_graph(values: &[&str]) -> (KnowledgeGraph, EntityId, RelationId) {
        let mut kg = KnowledgeGraph::new();
        let e = kg.add_entity("X", "d");
        let r = kg.add_relation("attr");
        for (i, v) in values.iter().enumerate() {
            let s = kg.add_source(&format!("s{i}"), "json", "d");
            kg.add_triple(e, r, Value::from(*v), s, 0);
        }
        (kg, e, r)
    }

    fn fingerprint_of(values: &[&str]) -> u64 {
        let (kg, e, r) = slot_graph(values);
        let group = match_slot(&kg, e, r)
            .groups
            .into_iter()
            .next()
            .expect("homologous slot");
        let mut keys = KeyInterner::for_graph(&kg);
        let profiles = build_profiles(&kg, &group, &mut keys);
        profile_fingerprint(&kg, e, r, &profiles, &keys)
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let h1 = fingerprint_of(&["a", "b"]);
        assert_eq!(h1, fingerprint_of(&["a", "b"]), "pure function of content");
        // Profile order does not matter — the pairs are sorted.
        let (kg, e, r) = slot_graph(&["a", "b"]);
        let group = match_slot(&kg, e, r)
            .groups
            .into_iter()
            .next()
            .expect("homologous slot");
        let mut keys = KeyInterner::for_graph(&kg);
        let mut profiles = build_profiles(&kg, &group, &mut keys);
        profiles.reverse();
        assert_eq!(h1, profile_fingerprint(&kg, e, r, &profiles, &keys));
        // Different content, different key.
        assert_ne!(h1, fingerprint_of(&["a", "c"]));
        // A subset (one source quarantined) misses.
        assert_ne!(
            h1,
            profile_fingerprint(&kg, e, r, &profiles[..1], &keys),
            "membership change must miss"
        );
    }

    #[test]
    fn memo_counts_hits_and_misses_and_clears() {
        let memo = ConfidenceMemo::new();
        let metrics = MetricsRegistry::new();
        memo.attach_metrics(metrics.clone());
        assert!(memo.get(7).is_none());
        memo.put(
            7,
            SlotVerdict {
                dropped: 1,
                gated: 3,
                ..SlotVerdict::default()
            },
        );
        let verdict = memo.get(7).expect("stored");
        assert_eq!(verdict.dropped, 1);
        assert_eq!(verdict.gated, 3);
        assert_eq!((memo.hits(), memo.misses()), (1, 1));
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("mcc_memo_hits_total"), 1);
        assert_eq!(snap.counter("mcc_memo_misses_total"), 1);
        // Clones share the store and the counters.
        let alias = memo.clone();
        assert!(alias.get(7).is_some());
        assert_eq!(memo.hits(), 2);
        alias.clear();
        assert!(memo.is_empty());
        assert!(memo.get(7).is_none());
        assert_eq!(memo.hits(), 2);
        assert_eq!(memo.misses(), 2);
    }
}
