//! Cross-shard merge tier: reduces per-shard MCC verdicts into one
//! cluster answer.
//!
//! A sharded deployment fans a query out to the slot's owner and its
//! replicas; each shard runs the same MCC pipeline and returns a
//! [`PipelineAnswer`]. This module folds those verdicts back into one
//! answer the router can return. Two properties carry the cluster's
//! determinism story:
//!
//! 1. **Order invariance.** Verdicts are sorted by shard id before any
//!    reduction, so the merged result is a pure function of the *set*
//!    of `(shard, answer)` pairs — the arrival interleaving (which
//!    replica responded first) can never leak into the output.
//! 2. **Identity on agreement.** The merged answer is the winning
//!    shard's answer *verbatim*, never a re-synthesis. When every
//!    shard computed the same answer (the shared-snapshot design
//!    guarantees this in healthy operation), the merge tier returns
//!    exactly that answer — which is what makes 1-node == N-node
//!    parity assertable byte-for-byte downstream.
//!
//! Cross-shard homologous matching happens on the `kept` claim sets:
//! claims are keyed by `(source, triple, canonical value)` — the same
//! identity the MLG's homologous grouping uses shard-locally — and
//! counted across shards, so the router can see how much of the
//! evidence set every replica independently reproduced.

use crate::confidence::NodeConfidence;
use crate::pipeline::PipelineAnswer;
use std::collections::BTreeMap;

/// The merge tier's reduction of one query's per-shard verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedVerdict {
    /// Shard whose answer was selected.
    pub shard: u32,
    /// The selected answer, verbatim (no re-synthesis).
    pub answer: PipelineAnswer,
    /// Distinct homologous claims across every shard's kept set, keyed
    /// by `(source, triple, canonical value)`.
    pub matched_claims: usize,
    /// True when every non-abstaining shard produced the same emitted
    /// value set (compared on canonical answer keys).
    pub unanimous: bool,
    /// How many shard verdicts were reduced.
    pub shards: usize,
}

/// Key under which two shards' claims count as the same homologous
/// claim: same source, same triple, same canonical value.
fn claim_key(claim: &NodeConfidence) -> (u32, u32, String) {
    (claim.source.0, claim.triple.0, claim.value.answer_key())
}

/// Canonical emitted-value fingerprint of an answer: sorted answer
/// keys, so two shards agree iff they emit the same value set
/// regardless of emission order.
fn answer_fingerprint(answer: &PipelineAnswer) -> Vec<String> {
    let mut keys: Vec<String> = answer.values.iter().map(|v| v.answer_key()).collect();
    keys.sort();
    keys
}

/// Reduces per-shard verdicts for one query in sorted-shard order.
///
/// Selection rule, applied after sorting by shard id:
///
/// - a non-abstaining shard always beats an abstaining one;
/// - among non-abstaining shards, the highest graph confidence wins
///   (`f64::total_cmp`, so the comparison itself is deterministic),
///   ties going to the lowest shard id;
/// - when every shard abstained, the lowest shard's abstention is
///   returned so the caller still gets a structured verdict.
///
/// Returns `None` only for an empty input.
pub fn reduce_shard_answers(verdicts: &[(u32, PipelineAnswer)]) -> Option<MergedVerdict> {
    let mut ordered: Vec<&(u32, PipelineAnswer)> = verdicts.iter().collect();
    ordered.sort_by_key(|(shard, _)| *shard);

    // Cross-shard homologous matching over every shard's kept claims.
    let mut matched: BTreeMap<(u32, u32, String), f64> = BTreeMap::new();
    for (_, answer) in &ordered {
        for claim in &answer.kept {
            let entry = matched.entry(claim_key(claim)).or_insert(claim.confidence);
            if claim.confidence > *entry {
                *entry = claim.confidence;
            }
        }
    }

    let mut winner: Option<&(u32, PipelineAnswer)> = None;
    for candidate in &ordered {
        let better = match winner {
            None => true,
            Some((_, best)) => match (best.abstained, candidate.1.abstained) {
                (true, false) => true,
                (false, true) | (true, true) => false,
                (false, false) => {
                    let best_c = best.graph_confidence.map(|g| g.value).unwrap_or(0.0);
                    let cand_c = candidate.1.graph_confidence.map(|g| g.value).unwrap_or(0.0);
                    cand_c.total_cmp(&best_c) == std::cmp::Ordering::Greater
                }
            },
        };
        if better {
            winner = Some(candidate);
        }
    }
    let (shard, answer) = winner?;

    let mut fingerprints = ordered
        .iter()
        .filter(|(_, a)| !a.abstained)
        .map(|(_, a)| answer_fingerprint(a));
    let unanimous = match fingerprints.next() {
        Some(first) => fingerprints.all(|fp| fp == first),
        // All shards abstained: vacuously unanimous.
        None => true,
    };

    Some(MergedVerdict {
        shard: *shard,
        answer: answer.clone(),
        matched_claims: matched.len(),
        unanimous,
        shards: ordered.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::AbstainReason;
    use multirag_kg::{SourceId, TripleId, Value};

    fn answered(confidence: f64, value: &str) -> PipelineAnswer {
        PipelineAnswer {
            values: vec![Value::Str(value.to_string())],
            fusion_values: vec![Value::Str(value.to_string())],
            abstained: false,
            abstain_reason: None,
            hallucinated: false,
            graph_confidence: Some(crate::confidence::GraphConfidence {
                value: confidence,
                unordered_pairs: 1,
                ordered_pairs: 2,
            }),
            kept: vec![NodeConfidence {
                triple: TripleId(0),
                value: Value::Str(value.to_string()),
                source: SourceId(0),
                consistency: 0.5,
                auth_llm: 0.5,
                auth_hist: 0.5,
                authority: 0.5,
                confidence,
            }],
            dropped: 0,
            examined: 1,
            quarantined_claims: 0,
            escalation_attempts: 0,
        }
    }

    fn abstained() -> PipelineAnswer {
        PipelineAnswer {
            values: Vec::new(),
            fusion_values: Vec::new(),
            abstained: true,
            abstain_reason: Some(AbstainReason::AllSourcesDown),
            hallucinated: false,
            graph_confidence: None,
            kept: Vec::new(),
            dropped: 0,
            examined: 0,
            quarantined_claims: 0,
            escalation_attempts: 0,
        }
    }

    #[test]
    fn empty_input_reduces_to_none() {
        assert_eq!(reduce_shard_answers(&[]), None);
    }

    #[test]
    fn single_verdict_is_identity() {
        let a = answered(0.8, "x");
        let merged = reduce_shard_answers(&[(3, a.clone())]).unwrap();
        assert_eq!(merged.shard, 3);
        assert_eq!(merged.answer, a);
        assert_eq!(merged.matched_claims, 1);
        assert!(merged.unanimous);
    }

    #[test]
    fn reduction_is_order_invariant() {
        let verdicts = vec![
            (2, answered(0.4, "b")),
            (0, answered(0.9, "a")),
            (1, abstained()),
        ];
        let mut shuffled = verdicts.clone();
        shuffled.rotate_left(2);
        let a = reduce_shard_answers(&verdicts).unwrap();
        let b = reduce_shard_answers(&shuffled).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.shard, 0);
        assert!(!a.unanimous);
    }

    #[test]
    fn answered_beats_abstained_and_ties_go_low() {
        let merged = reduce_shard_answers(&[
            (0, abstained()),
            (2, answered(0.7, "x")),
            (1, answered(0.7, "x")),
        ])
        .unwrap();
        // Equal confidence: the lowest shard id wins.
        assert_eq!(merged.shard, 1);
        assert!(!merged.answer.abstained);
        assert!(merged.unanimous);
        assert_eq!(merged.shards, 3);
    }

    #[test]
    fn all_abstained_returns_lowest_shard_verdict() {
        let merged = reduce_shard_answers(&[(5, abstained()), (2, abstained())]).unwrap();
        assert_eq!(merged.shard, 2);
        assert!(merged.answer.abstained);
        assert!(merged.unanimous);
    }

    #[test]
    fn homologous_claims_dedupe_across_shards() {
        // Identical answers on two shards: one distinct claim.
        let merged =
            reduce_shard_answers(&[(0, answered(0.8, "x")), (1, answered(0.8, "x"))]).unwrap();
        assert_eq!(merged.matched_claims, 1);
        // Different values: two distinct claims.
        let merged =
            reduce_shard_answers(&[(0, answered(0.8, "x")), (1, answered(0.6, "y"))]).unwrap();
        assert_eq!(merged.matched_claims, 2);
        assert!(!merged.unanimous);
    }
}
