#![warn(missing_docs)]

//! # multirag-core
//!
//! The paper's primary contribution: multi-source line graphs, the
//! homologous-subgraph machinery, multi-level confidence computing and
//! the MKLGP query pipeline.
//!
//! * [`config`] — thresholds, α/β, and the ablation switches behind
//!   Table III (`w/o MKA`, `w/o graph level`, `w/o node level`,
//!   `w/o MCC`).
//! * [`homologous`] — Definitions 3–5: grouping the claims of one
//!   `(entity, attribute)` slot across sources into homologous
//!   subgraphs (`O(n log n)` matching).
//! * [`mlg`] — the multi-source line graph: homologous groups become
//!   cliques in the triple line graph (Fig. 4), indexed for per-query
//!   extraction.
//! * [`incremental`] — streaming maintenance of the homologous index
//!   under triple insertion (feeds update continuously; rebuilding per
//!   batch would forfeit the aggregation).
//! * [`confidence`] — Eqs. 4–11: mutual-information graph-level
//!   confidence, node consistency, LLM + historical authority, and the
//!   MCC algorithm (Algorithm 1).
//! * [`history`] — the incremental source-credibility store behind
//!   `Auth_hist` (Eq. 11).
//! * [`memo`] — per-epoch memoization of MCC verdicts by canonical
//!   subgraph hash (the serving subsystem's mid-level cache).
//! * [`pipeline`] — MKLGP (Algorithm 2): logic form → extraction → MLG
//!   → MCC → trustworthy answer.
//! * [`loopctl`] — closed-loop grounded generation: grade the drafted
//!   answer against the kept context and escalate (widen → consult →
//!   tighten) under a deadline-bounded budget.

pub mod confidence;
pub mod config;
pub mod history;
pub mod homologous;
pub mod incremental;
pub mod loopctl;
pub mod memo;
pub mod merge;
pub mod mlg;
pub mod pipeline;
pub mod qa;

pub use confidence::{ClaimProfile, GraphConfidence, KernelCounters, MccOutcome, NodeConfidence};
pub use config::MultiRagConfig;
pub use history::HistoryStore;
pub use homologous::{match_homologous, match_homologous_tiered, HomologousGroup, HomologousSets};
pub use incremental::IncrementalMlg;
pub use loopctl::{grade_supported, LadderStep, LoopConfig};
pub use memo::{profile_fingerprint, ConfidenceMemo, SlotVerdict};
pub use merge::{reduce_shard_answers, MergedVerdict};
pub use mlg::MultiSourceLineGraph;
pub use pipeline::{kg_schema, AbstainReason, MccWorker, MklgpPipeline, PipelineAnswer};
pub use qa::{MultiHopOutcome, MultiRagQa};
