//! MKLGP — Multi-source Knowledge Line Graph Prompting (Algorithm 2).
//!
//! Given a user query, the pipeline:
//!
//! 1. generates a logic form via the (simulated) LLM,
//! 2. extracts the query-relevant documents/claims — through the MLG's
//!    slot index when MKA is enabled, or by scanning the entity's whole
//!    neighbourhood when it is not (the `w/o MKA` ablation, which both
//!    slows extraction dramatically and pollutes the context),
//! 3. runs MCC (Algorithm 1) to obtain the trusted node set `SVs` and
//!    the isolated/low-confidence set `LVs`,
//! 4. generates a trustworthy answer by prompting the LLM with the
//!    surviving claims (the hallucination model sees exactly how clean
//!    that context is),
//! 5. updates the historical source-credibility store.

use crate::confidence::{self, GraphConfidence, KernelCounters, MccOutcome, NodeConfidence};
use crate::config::MultiRagConfig;
use crate::history::HistoryStore;
use crate::homologous::HomologousGroup;
use crate::loopctl::{grade_supported, LadderStep, LoopConfig};
use crate::memo::{profile_fingerprint, ConfidenceMemo, SlotVerdict};
use crate::mlg::MultiSourceLineGraph;
use multirag_datasets::Query;
use multirag_faults::{ms_to_us, FaultPlan, RetryPolicy};
use multirag_ingest::{fuse_sources_with, Claim, IngestMode, RawSource};
use multirag_kg::{
    EntityId, FxHashMap, FxHashSet, KeyInterner, KnowledgeGraph, Object, RelationId, SourceId,
    TieredIndex, TindexCounters, TripleId, Value,
};
use multirag_llmsim::halluc::GeneratedAnswer;
use multirag_llmsim::{ContextProfile, LlmResponseCache, LlmUsage, MockLlm, Schema};
use multirag_obs::WallTimer;
use multirag_obs::{
    AnswerProvenance, ObsHandle, QueryTrace, SourceContribution, Stage, StageCost, StageSpan,
    SubgraphDecision, TraceEvent,
};
use std::sync::Arc;

/// Why the pipeline declined to answer — degraded modes surface a
/// structured verdict instead of a silent empty answer, so the chaos
/// harness (and any caller) can distinguish "the data never existed"
/// from "the data was there but its sources were down".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbstainReason {
    /// The query's entity or attribute is not in the graph.
    UnknownSlot,
    /// Claims for the slot exist, but every asserting source is
    /// quarantined by the fault plan.
    AllSourcesDown,
    /// Extraction and MCC left no trustworthy context at all.
    NoTrustedContext,
    /// The generation call failed even after retrying; answering
    /// without the LLM would mean guessing.
    GenerationFailed {
        /// Attempts the retry policy made before giving up.
        attempts: u32,
    },
    /// The closed loop kept grading the draft as unsupported and ran
    /// out of escalation budget (attempts or deadline); abstaining is
    /// the honest verdict — the fusion result still stands.
    EscalationExhausted {
        /// Escalation attempts spent before giving up.
        attempts: u32,
    },
}

impl AbstainReason {
    /// Stable snake-case identifier, used as a metrics label and in the
    /// canonical [`QueryTrace`] export.
    pub fn slug(&self) -> &'static str {
        match self {
            AbstainReason::UnknownSlot => "unknown_slot",
            AbstainReason::AllSourcesDown => "all_sources_down",
            AbstainReason::NoTrustedContext => "no_trusted_context",
            AbstainReason::GenerationFailed { .. } => "generation_failed",
            AbstainReason::EscalationExhausted { .. } => "escalation_exhausted",
        }
    }

    /// Alias for [`AbstainReason::slug`] under the conventional name.
    pub fn as_str(&self) -> &'static str {
        self.slug()
    }

    /// Every reason's slug, in declaration order — the schema golden
    /// enumerates these so a new reason is a reviewed schema change.
    pub const ALL_SLUGS: [&'static str; 5] = [
        "unknown_slot",
        "all_sources_down",
        "no_trusted_context",
        "generation_failed",
        "escalation_exhausted",
    ];
}

impl std::fmt::Display for AbstainReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbstainReason::UnknownSlot => write!(f, "unknown entity or attribute"),
            AbstainReason::AllSourcesDown => write!(f, "all asserting sources down"),
            AbstainReason::NoTrustedContext => write!(f, "no trustworthy context"),
            AbstainReason::GenerationFailed { attempts } => {
                write!(f, "generation failed after {attempts} attempt(s)")
            }
            AbstainReason::EscalationExhausted { attempts } => {
                write!(f, "escalation budget exhausted after {attempts} attempt(s)")
            }
        }
    }
}

/// The pipeline's verdict on one query.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineAnswer {
    /// Emitted answer values (empty when abstaining).
    pub values: Vec<Value>,
    /// The trustworthy fused value set *before* generation — what the
    /// MCC module hands to the LLM. Table II's "data fusion results"
    /// F1 is computed on this set (§IV-A-b), while `values` carries the
    /// post-generation answer the hallucination law may corrupt.
    pub fusion_values: Vec<Value>,
    /// True when no trustworthy context survived at all.
    pub abstained: bool,
    /// Structured abstention verdict (set iff `abstained`).
    pub abstain_reason: Option<AbstainReason>,
    /// Whether the generation step hallucinated (ground truth of the
    /// simulation — the harness uses it for error analysis, never the
    /// pipeline itself).
    pub hallucinated: bool,
    /// Graph-level confidence of the answering subgraph.
    pub graph_confidence: Option<GraphConfidence>,
    /// Claims that survived MCC.
    pub kept: Vec<NodeConfidence>,
    /// Claims MCC dropped.
    pub dropped: usize,
    /// Number of context claims examined during extraction (the w/o MKA
    /// path examines many more).
    pub examined: usize,
    /// Claims skipped because their source is quarantined (down).
    pub quarantined_claims: usize,
    /// Escalation attempts the closed loop spent on this answer (0
    /// when the loop is disabled or the first grade already passed).
    pub escalation_attempts: u32,
}

/// The MKLGP pipeline bound to one knowledge graph.
///
/// # Examples
///
/// ```
/// use multirag_core::{MklgpPipeline, MultiRagConfig};
/// use multirag_datasets::movies::MoviesSpec;
///
/// let dataset = MoviesSpec::small().generate(42);
/// let mut pipeline = MklgpPipeline::new(&dataset.graph, MultiRagConfig::default(), 42);
/// let answer = pipeline.answer(&dataset.queries[0]);
/// assert!(!answer.fusion_values.is_empty());
/// ```
#[derive(Clone)]
pub struct MklgpPipeline<'g> {
    kg: &'g KnowledgeGraph,
    mlg: Option<MultiSourceLineGraph>,
    llm: MockLlm,
    history: HistoryStore,
    config: MultiRagConfig,
    max_degree: usize,
    quarantined: FxHashSet<SourceId>,
    obs: Option<ObsHandle>,
    mlg_cost: StageCost,
    mlg_groups: usize,
    memo: Option<ConfidenceMemo>,
    /// Per-graph canonical-key interner; every triple's standardized
    /// value key is precomputed, so MCC never builds a key `String`.
    keys: KeyInterner,
    /// Kernel op counters, flushed into the metrics registry per query.
    kernel: KernelCounters,
    /// Registry watermark: `(nmi_pairs, profiles_built, interner hits,
    /// interner misses)` already flushed, so counters export as deltas.
    flushed: (u64, u64, u64, u64),
    /// Closed-loop budget; `None` (the default) disables grading and
    /// escalation entirely — bit-identical to the single-pass pipeline.
    loopcfg: Option<LoopConfig>,
    /// Pre-fused reserve claims the consult rung draws on, shared
    /// across pipeline clones.
    reserve: Option<Arc<Vec<Claim>>>,
    /// Prebuilt tiered retrieval index (DESIGN.md §5.15). When
    /// attached, slot extraction and homologous matching resolve by
    /// tier descent instead of linear/keyed scans — identical answers,
    /// sub-linear candidate cost. Shared across pipeline clones.
    tindex: Option<Arc<TieredIndex>>,
    /// Tier-descent cost counters, flushed into the registry as deltas
    /// like `kernel`.
    tcounters: TindexCounters,
    /// Registry watermark for the tindex counters.
    flushed_tindex: TindexCounters,
}

/// Raw per-query observations collected while answering; the [`answer`]
/// wrapper turns them into a [`QueryTrace`] when an observer is
/// attached.
///
/// [`answer`]: MklgpPipeline::answer
#[derive(Default)]
struct AnswerStats {
    spans: Vec<StageSpan>,
    subgraph: Option<SubgraphDecision>,
    quarantined: Vec<(SourceId, usize)>,
    /// Closed-loop events (grade failures, escalations) in occurrence
    /// order, republished into the trace.
    events: Vec<TraceEvent>,
}

/// What the escalation loop reported back to `answer_with_stats`.
struct LoopOutcome {
    /// Escalation attempts actually spent.
    attempts: u32,
    /// True when the budget ran out before a passing grade — the caller
    /// abstains with [`AbstainReason::EscalationExhausted`].
    exhausted: bool,
}

/// Records the loop's two stages. Wall time is pinned to zero: the loop
/// runs on metered simulated time only, and wall clocks are excluded
/// from the canonical trace JSON anyway. The grade span's output is the
/// number of drafts ultimately accepted (1, or 0 on exhaustion); the
/// escalation span maps attempts to emitted values.
fn push_loop_spans(
    stats: &mut AnswerStats,
    grade_calls: usize,
    grade_sim: f64,
    attempts: u32,
    esc_sim: f64,
    emitted: usize,
) {
    stats.spans.push(StageSpan {
        stage: Stage::Grade,
        wall_s: 0.0,
        sim_ms: grade_sim,
        input: grade_calls,
        output: usize::from(emitted > 0 || attempts == 0),
    });
    if attempts > 0 {
        stats.spans.push(StageSpan {
            stage: Stage::Escalation,
            wall_s: 0.0,
            sim_ms: esc_sim,
            input: attempts as usize,
            output: emitted,
        });
    }
}

impl AnswerStats {
    /// Closes a span: wall from `started`, simulated time as the meter
    /// delta over the region.
    fn span(
        &mut self,
        stage: Stage,
        started: WallTimer,
        sim_before: f64,
        sim_now: f64,
        input: usize,
        output: usize,
    ) {
        self.spans.push(StageSpan {
            stage,
            wall_s: started.elapsed_s(),
            sim_ms: sim_now - sim_before,
            input,
            output,
        });
    }
}

/// Builds the extraction schema a pipeline (or a cluster router) uses
/// for this graph: every relation plus every entity name, verbatim.
/// Split out of [`MklgpPipeline::new`] so the sharded router can build
/// the *same* schema — and therefore the same logic forms — without
/// paying for a full pipeline.
pub fn kg_schema(kg: &KnowledgeGraph) -> Schema {
    let mut schema = Schema::new();
    for r in 0..kg.relation_count() {
        schema.add_relation(kg.relation_name(RelationId(r as u32)));
    }
    for e in kg.entity_ids() {
        schema.add_entity_verbatim(kg.entity_name(e));
    }
    schema
}

impl<'g> MklgpPipeline<'g> {
    /// Builds the pipeline: schema from the graph's relations and
    /// entities, the MLG (unless ablated), and a fresh history store
    /// seeded by MKA consensus feedback.
    pub fn new(kg: &'g KnowledgeGraph, config: MultiRagConfig, seed: u64) -> Self {
        Self::build(kg, config, seed, None, None)
    }

    /// Builds the pipeline around a prebuilt [`TieredIndex`]: homologous
    /// matching runs by tier descent during MLG construction, and slot
    /// extraction probes the index instead of the graph's slot map.
    /// Answers are bit-identical to [`MklgpPipeline::new`]; only the
    /// candidate-selection cost changes (`repro_index` gates both).
    pub fn new_with_index(
        kg: &'g KnowledgeGraph,
        config: MultiRagConfig,
        seed: u64,
        index: Arc<TieredIndex>,
    ) -> Self {
        Self::build(kg, config, seed, None, Some(index))
    }

    /// Builds the pipeline around an externally supplied history store,
    /// skipping the MKA consensus-feedback rounds entirely. The serving
    /// layer holds a frozen per-epoch credibility snapshot; rebuilding
    /// consensus in [`MklgpPipeline::new`] only to discard it via
    /// [`MklgpPipeline::with_history`] wastes the dominant share of
    /// per-worker pipeline construction, which matters once a cluster
    /// spins up one pipeline per (node, worker) pair.
    pub fn new_with_history(
        kg: &'g KnowledgeGraph,
        config: MultiRagConfig,
        seed: u64,
        history: HistoryStore,
    ) -> Self {
        Self::build(kg, config, seed, Some(history), None)
    }

    /// [`MklgpPipeline::new_with_history`] plus a prebuilt
    /// [`TieredIndex`] — the epoch-serving constructor: the snapshot
    /// carries both the frozen credibility store and the index, so
    /// per-worker pipeline construction pays for neither.
    pub fn new_with_history_and_index(
        kg: &'g KnowledgeGraph,
        config: MultiRagConfig,
        seed: u64,
        history: HistoryStore,
        index: Arc<TieredIndex>,
    ) -> Self {
        Self::build(kg, config, seed, Some(history), Some(index))
    }

    fn build(
        kg: &'g KnowledgeGraph,
        config: MultiRagConfig,
        seed: u64,
        supplied_history: Option<HistoryStore>,
        index: Option<Arc<TieredIndex>>,
    ) -> Self {
        let llm = MockLlm::new(kg_schema(kg), seed);
        let mlg_started = WallTimer::start();
        let mlg = config.enable_mka.then(|| match index.as_deref() {
            Some(tindex) => MultiSourceLineGraph::build_with_index(kg, tindex),
            None => MultiSourceLineGraph::build(kg),
        });
        let max_degree = kg
            .entity_ids()
            .map(|e| kg.neighbors(e).len())
            .max()
            .unwrap_or(0);
        let seed_consensus = supplied_history.is_none();
        let history =
            supplied_history.unwrap_or_else(|| HistoryStore::new(config.history_pseudo, 0.5));
        // MKA consistency feedback: the homologous line graph makes
        // cross-source agreement a local property (§III-C: "enabling
        // rapid consistency checks and conflict feedback for homologous
        // data"). A few credibility-weighted consensus rounds over the
        // aggregated groups estimate each source's historical
        // credibility — the `Pr^h(D)` that `Auth_hist` (Eq. 11) blends
        // in. Without MKA this signal does not exist (part of the
        // w/o-MKA F1 drop in Table III). A caller-supplied history is
        // already settled, so the rounds are skipped outright.
        if let Some(mlg) = mlg.as_ref().filter(|_| seed_consensus) {
            let groups: Vec<Vec<(SourceId, String)>> = mlg
                .sets()
                .groups
                .iter()
                .map(|group| {
                    group
                        .triples
                        .iter()
                        .map(|&tid| {
                            let t = kg.triple(tid);
                            let key = match &t.object {
                                Object::Literal(v) => v.standardized().canonical_key(),
                                other => other.canonical_key(),
                            };
                            (t.source, key)
                        })
                        .collect()
                })
                .collect();
            let mut cred: FxHashMap<SourceId, f64> = FxHashMap::default();
            let mut final_tally: FxHashMap<SourceId, (usize, usize)> = FxHashMap::default();
            for _round in 0..3 {
                let mut tally: FxHashMap<SourceId, (usize, usize)> = FxHashMap::default();
                for claims in &groups {
                    if claims.len() < 2 {
                        continue;
                    }
                    // Credibility-weighted support per value.
                    let mut weight: FxHashMap<&str, f64> = FxHashMap::default();
                    let mut total = 0.0;
                    for (source, key) in claims {
                        let w = cred.get(source).copied().unwrap_or(0.5);
                        *weight.entry(key.as_str()).or_insert(0.0) += w;
                        total += w;
                    }
                    let Some((best, &max_w)) = weight
                        .iter()
                        .max_by(|a, b| {
                            a.1.partial_cmp(b.1)
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then(b.0.cmp(a.0))
                        })
                        .map(|(k, w)| (*k, w))
                    else {
                        continue;
                    };
                    // Only groups with a clear weighted consensus carry
                    // a trustworthy signal.
                    if max_w * 2.0 <= total {
                        continue;
                    }
                    for (source, key) in claims {
                        let entry = tally.entry(*source).or_insert((0, 0));
                        entry.1 += 1;
                        if key == best {
                            entry.0 += 1;
                        }
                    }
                }
                for (source, (correct, total)) in &tally {
                    // Smoothed agreement rate.
                    cred.insert(*source, (*correct as f64 + 2.5) / (*total as f64 + 5.0));
                }
                final_tally = tally;
            }
            for (source, (correct, total)) in final_tally {
                history.record(source, correct, total);
            }
        }
        // `mlg_build` covers line-graph construction *and* the MKA
        // consistency-feedback rounds above — the full cost of having
        // aggregation (zero in the w/o-MKA ablation).
        let mlg_cost = StageCost {
            wall_s: mlg_started.elapsed_s(),
            sim_ms: 0.0,
        };
        let mlg_groups = mlg
            .as_ref()
            .map(|m| m.sets().groups.len() + m.sets().isolated.len())
            .unwrap_or(0);
        Self {
            kg,
            mlg,
            llm,
            history,
            config,
            max_degree,
            quarantined: FxHashSet::default(),
            obs: None,
            mlg_cost,
            mlg_groups,
            memo: None,
            keys: KeyInterner::for_graph(kg),
            kernel: KernelCounters::default(),
            flushed: (0, 0, 0, 0),
            loopcfg: None,
            reserve: None,
            tindex: index,
            tcounters: TindexCounters::default(),
            flushed_tindex: TindexCounters::default(),
        }
    }

    /// Attaches an observer: the LLM mirrors its meter into the shared
    /// registry, history updates are counted, graph-shape gauges are
    /// set, and the (already paid) `mlg_build` cost is recorded as a
    /// span. Every subsequent [`answer`] emits a [`QueryTrace`].
    ///
    /// [`answer`]: MklgpPipeline::answer
    pub fn with_observer(mut self, obs: ObsHandle) -> Self {
        let registry = obs.registry();
        self.llm = self.llm.clone().with_metrics(registry.clone());
        self.history.attach_metrics(registry.clone());
        registry.gauge_set("graph_sources", self.kg.source_count() as f64);
        registry.gauge_set("graph_triples", self.kg.triple_count() as f64);
        registry.gauge_set("graph_quarantined_sources", self.quarantined.len() as f64);
        obs.record_span(&StageSpan {
            stage: Stage::MlgBuild,
            wall_s: self.mlg_cost.wall_s,
            sim_ms: self.mlg_cost.sim_ms,
            input: self.kg.triple_count(),
            output: self.mlg_groups,
        });
        self.obs = Some(obs);
        self
    }

    /// The attached observer, if any.
    pub fn observer(&self) -> Option<&ObsHandle> {
        self.obs.as_ref()
    }

    /// Subjects the pipeline to a deterministic fault plan: LLM calls
    /// can fail (and are retried with seeded backoff), and sources the
    /// plan declares down are quarantined — their claims are skipped
    /// and their credibility takes the hit, so answers come from the
    /// surviving sources.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.quarantined = (0..self.kg.source_count())
            .map(|i| SourceId(i as u32))
            .filter(|&id| plan.source_down(self.kg.source_name(id)))
            .collect();
        self.llm = self.llm.with_fault_plan(plan);
        self
    }

    /// Overrides the retry policy the LLM applies under faults.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.llm = self.llm.with_retry_policy(retry);
        self
    }

    /// Replaces the history store — the serving layer installs the
    /// epoch's (frozen) credibility snapshot so every worker clone
    /// answers from the same `Auth_hist` state, instead of the
    /// consensus-seeded store [`MklgpPipeline::new`] builds. Call
    /// before [`MklgpPipeline::with_observer`] so metrics attach to
    /// the store that will actually be used.
    pub fn with_history(mut self, history: HistoryStore) -> Self {
        self.history = history;
        self
    }

    /// Shares a per-epoch MCC verdict memo: slots whose canonical
    /// subgraph hash is already memoized skip the consistency checks
    /// (and their simulated LLM cost) entirely. Only sound while the
    /// history store is frozen — the serving layer freezes history for
    /// the epoch and clears the memo on every swap.
    pub fn with_confidence_memo(mut self, memo: ConfidenceMemo) -> Self {
        self.memo = Some(memo);
        self
    }

    /// Puts a shared content-addressed response cache in front of the
    /// LLM (see [`MockLlm::with_response_cache`]).
    pub fn with_llm_response_cache(mut self, cache: LlmResponseCache) -> Self {
        self.llm = self.llm.with_response_cache(cache);
        self
    }

    /// Enables the closed loop (grade → escalate → regenerate) with the
    /// given budget. A config with `max_attempts == 0` keeps the loop
    /// off, bit-identical to never calling this.
    pub fn with_loop_control(mut self, cfg: LoopConfig) -> Self {
        self.loopcfg = cfg.enabled().then_some(cfg);
        self
    }

    /// The active closed-loop budget, if any.
    pub fn loop_control(&self) -> Option<LoopConfig> {
        self.loopcfg
    }

    /// Installs reserve sources for the consult rung of the escalation
    /// ladder. They are fused once, leniently (malformed reserves must
    /// not poison escalation — lenient fusion cannot fail, and if it
    /// ever did the rung would simply have nothing to consult), and
    /// shared across pipeline clones; the simulated cost of consulting
    /// them is charged when the rung runs.
    pub fn with_reserve_sources(mut self, sources: &[RawSource]) -> Self {
        let claims: Vec<Claim> = fuse_sources_with(sources, IngestMode::Lenient)
            .map(|report| {
                report
                    .adapted
                    .into_iter()
                    .flat_map(|(_, adapted)| adapted.claims)
                    .collect()
            })
            .unwrap_or_default();
        self.reserve = Some(Arc::new(claims));
        self
    }

    /// Sources the fault plan declared down for this run.
    pub fn quarantined_sources(&self) -> &FxHashSet<SourceId> {
        &self.quarantined
    }

    /// The LLM client (for usage metering).
    pub fn llm(&self) -> &MockLlm {
        &self.llm
    }

    /// Resets the LLM usage meter.
    pub fn reset_usage(&mut self) {
        self.llm.reset_usage();
    }

    /// The MLG, when MKA is enabled.
    pub fn mlg(&self) -> Option<&MultiSourceLineGraph> {
        self.mlg.as_ref()
    }

    /// The history store (shared source credibility).
    pub fn history(&self) -> &HistoryStore {
        &self.history
    }

    /// The homologous groups of the MLG slot index, in `(entity,
    /// relation)` order. Empty when MKA is ablated — there is no
    /// aggregated index to fan out over.
    pub fn slot_groups(&self) -> &[HomologousGroup] {
        self.mlg
            .as_ref()
            .map(|m| m.sets().groups.as_slice())
            .unwrap_or(&[])
    }

    /// Snapshot of the kernel op counters accumulated by this pipeline.
    pub fn kernel_counters(&self) -> KernelCounters {
        self.kernel
    }

    /// Snapshot of the tier-descent cost counters (all zero when no
    /// tiered index is attached).
    pub fn tindex_counters(&self) -> TindexCounters {
        self.tcounters
    }

    /// The attached tiered retrieval index, if any.
    pub fn tindex(&self) -> Option<&Arc<TieredIndex>> {
        self.tindex.as_ref()
    }

    /// Canonical-key interner statistics: `(hits, misses)`. Hits
    /// include per-triple cache lookups; misses are distinct keys
    /// interned (including the up-front `for_graph` pass).
    pub fn interner_stats(&self) -> (u64, u64) {
        (self.keys.hits(), self.keys.misses())
    }

    /// Splits off a self-contained slot-level MCC evaluator: cloned LLM
    /// stream (usage meter reset), cloned interner, the current history
    /// snapshot, and fresh op counters. The deterministic fan-out path
    /// gives each worker thread one of these; because MCC never writes
    /// history, every worker observes exactly the state a serial sweep
    /// would.
    pub fn mcc_worker(&self) -> MccWorker<'g> {
        let mut llm = self.llm.clone();
        llm.reset_usage();
        MccWorker {
            kg: self.kg,
            llm,
            keys: self.keys.clone(),
            history: self.history.clone(),
            config: self.config,
            max_degree: self.max_degree,
            counters: KernelCounters::default(),
        }
    }

    /// Answers one benchmark query (Algorithm 2). When an observer is
    /// attached the query additionally emits a [`QueryTrace`] — spans,
    /// subgraph verdicts, chaos events and answer provenance.
    pub fn answer(&mut self, query: &Query) -> PipelineAnswer {
        let usage_before = self.llm.usage();
        let mut stats = AnswerStats::default();
        let answer = self.answer_with_stats(query, &mut stats);
        self.flush_kernel_metrics();
        if let Some(obs) = self.obs.clone() {
            let trace = self.build_trace(query, &answer, stats, &usage_before);
            obs.finish_query(trace);
        }
        answer
    }

    /// Like [`MklgpPipeline::answer`], but also hands the caller the
    /// [`QueryTrace`]. The deterministic fan-out harness answers on
    /// worker clones (no observer attached) and republishes the traces
    /// in query order, so parallel trace exports stay byte-identical to
    /// serial runs. When an observer *is* attached, the trace is still
    /// published exactly as [`MklgpPipeline::answer`] would.
    pub fn answer_traced(&mut self, query: &Query) -> (PipelineAnswer, QueryTrace) {
        let usage_before = self.llm.usage();
        let mut stats = AnswerStats::default();
        let answer = self.answer_with_stats(query, &mut stats);
        self.flush_kernel_metrics();
        let trace = self.build_trace(query, &answer, stats, &usage_before);
        if let Some(obs) = &self.obs {
            obs.finish_query(trace.clone());
        }
        (answer, trace)
    }

    /// Publishes kernel-counter deltas into the observer's metrics
    /// registry: `mcc_nmi_pairs_total`, `claim_profiles_built_total`,
    /// `claim_key_interner_hits_total`, `claim_key_interner_misses_total`.
    /// Deltas since the last flush, so repeated calls never double-count;
    /// zero deltas are skipped so metric exports only list counters that
    /// actually moved.
    fn flush_kernel_metrics(&mut self) {
        let Some(obs) = &self.obs else { return };
        let registry = obs.registry();
        let now = (
            self.kernel.nmi_pairs,
            self.kernel.profiles_built,
            self.keys.hits(),
            self.keys.misses(),
        );
        for (name, delta) in [
            ("mcc_nmi_pairs_total", now.0 - self.flushed.0),
            ("claim_profiles_built_total", now.1 - self.flushed.1),
            ("claim_key_interner_hits_total", now.2 - self.flushed.2),
            ("claim_key_interner_misses_total", now.3 - self.flushed.3),
        ] {
            if delta > 0 {
                registry.inc(name, delta);
            }
        }
        self.flushed = now;
        let tnow = self.tcounters;
        let tdelta = tnow.since(self.flushed_tindex);
        for (name, delta) in [
            ("tindex_tier_descents_total", tdelta.tier_descents),
            ("tindex_bitset_and_ops_total", tdelta.bitset_and_ops),
            ("tindex_candidates_pruned_total", tdelta.candidates_pruned),
        ] {
            if delta > 0 {
                registry.inc(name, delta);
            }
        }
        self.flushed_tindex = tnow;
    }

    /// Algorithm 2's body, recording raw observations into `stats`.
    fn answer_with_stats(&mut self, query: &Query, stats: &mut AnswerStats) -> PipelineAnswer {
        let extract_started = WallTimer::start();
        let sim_at_start = self.llm.usage().simulated_ms;
        // Step 1: logic-form generation. A failed call (fault plan +
        // exhausted retries) degrades to the slot the benchmark query
        // carries — same as the LLM failing to parse the question.
        let lf = self
            .llm
            .try_logic_form(&format!("lf:{}", query.key()), &query.text)
            .unwrap_or(None);
        let (entity_name, relation_name) = match &lf {
            Some(lf) => (lf.entity.clone(), lf.target_relation().to_string()),
            // Fallback: the benchmark query carries its slot.
            None => (query.entity.clone(), query.attribute.clone()),
        };
        let entity = self
            .kg
            .find_entity(&entity_name, self.kg_domain())
            .or_else(|| self.kg.find_entity(&query.entity, self.kg_domain()));
        let relation = self
            .kg
            .find_relation(&relation_name)
            .or_else(|| self.kg.find_relation(&query.attribute));
        let (Some(entity), Some(relation)) = (entity, relation) else {
            let sim = self.llm.usage().simulated_ms;
            stats.span(
                Stage::HomologousGroup,
                extract_started,
                sim_at_start,
                sim,
                0,
                0,
            );
            return PipelineAnswer {
                values: Vec::new(),
                fusion_values: Vec::new(),
                abstained: true,
                abstain_reason: Some(AbstainReason::UnknownSlot),
                hallucinated: false,
                graph_confidence: None,
                kept: Vec::new(),
                dropped: 0,
                examined: 0,
                quarantined_claims: 0,
                escalation_attempts: 0,
            };
        };

        // Step 2: multi-document extraction.
        let (slot_triples, noise_triples, examined) = self.extract(entity, relation);

        // Degraded mode: claims from quarantined (down) sources never
        // reach the context — the answer comes from whoever survives.
        // Each skipped claim is recorded as a miss so outage-prone
        // sources lose historical credibility (Eq. 11 feedback).
        let had_claims = !slot_triples.is_empty();
        let mut quarantined_claims = 0usize;
        let (slot_triples, noise_triples) = if self.quarantined.is_empty() {
            (slot_triples, noise_triples)
        } else {
            let mut down_tally: FxHashMap<SourceId, usize> = FxHashMap::default();
            let slot: Vec<TripleId> = slot_triples
                .into_iter()
                .filter(|&tid| {
                    let source = self.kg.triple(tid).source;
                    if self.quarantined.contains(&source) {
                        *down_tally.entry(source).or_insert(0) += 1;
                        false
                    } else {
                        true
                    }
                })
                .collect();
            let noise: Vec<TripleId> = noise_triples
                .into_iter()
                .filter(|&tid| !self.quarantined.contains(&self.kg.triple(tid).source))
                .collect();
            for (source, skipped) in down_tally {
                quarantined_claims += skipped;
                stats.quarantined.push((source, skipped));
                self.history.record(source, 0, skipped);
            }
            (slot, noise)
        };
        if had_claims && slot_triples.is_empty() {
            let sim = self.llm.usage().simulated_ms;
            stats.span(
                Stage::HomologousGroup,
                extract_started,
                sim_at_start,
                sim,
                examined,
                0,
            );
            return PipelineAnswer {
                values: Vec::new(),
                fusion_values: Vec::new(),
                abstained: true,
                abstain_reason: Some(AbstainReason::AllSourcesDown),
                hallucinated: false,
                graph_confidence: None,
                kept: Vec::new(),
                dropped: 0,
                examined,
                quarantined_claims,
                escalation_attempts: 0,
            };
        }

        // Step 3: MCC, over the *extracted* claims (the MKA path
        // extracts the full slot; the unaggregated path may have missed
        // some).
        let sets = sets_from_extraction(self.kg, entity, relation, &slot_triples);
        let sim = self.llm.usage().simulated_ms;
        stats.span(
            Stage::HomologousGroup,
            extract_started,
            sim_at_start,
            sim,
            examined,
            slot_triples.len(),
        );
        let (graph_confidence, mut kept, dropped) = if let Some(group) = sets.groups.first() {
            let group_triples = group.triples.len();
            let group_sources = group.source_count;
            // Claim profiles are built once per slot — resolved to
            // interned keys, distributions sorted, entropy precomputed —
            // and shared by the memo fingerprint, the graph gate and the
            // node assessment below.
            let profiles = confidence::build_profiles(self.kg, group, &mut self.keys);
            self.kernel.profiles_built += profiles.len() as u64;
            // Per-epoch MCC memo: the verdict is a pure function of the
            // slot's (post-quarantine) content once history is frozen,
            // so a content-hash hit replays it without touching the LLM.
            let memo_key = self
                .memo
                .as_ref()
                .map(|_| profile_fingerprint(self.kg, entity, relation, &profiles, &self.keys));
            let spans_before = stats.spans.len();
            let verdict = memo_key
                .and_then(|key| self.memo.as_ref().and_then(|m| m.get(key)))
                .unwrap_or_else(|| {
                    let outcome = if self.config.use_reference_mcc {
                        confidence::mcc_filter_reference(
                            self.kg,
                            group,
                            &mut self.llm,
                            &self.history,
                            &self.config,
                            self.max_degree,
                        )
                    } else {
                        confidence::mcc_filter_profiles(
                            self.kg,
                            group,
                            &profiles,
                            &self.keys,
                            &mut self.llm,
                            &self.history,
                            &self.config,
                            self.max_degree,
                            &mut self.kernel,
                        )
                    };
                    let verdict = SlotVerdict {
                        graph: outcome.graph,
                        kept: outcome.kept,
                        dropped: outcome.dropped.len(),
                        gated: outcome.gated,
                    };
                    if let (Some(memo), Some(key)) = (&self.memo, memo_key) {
                        memo.put(key, verdict.clone());
                    }
                    stats.spans.push(StageSpan {
                        stage: Stage::GraphConfidence,
                        wall_s: outcome.graph_cost.wall_s,
                        sim_ms: outcome.graph_cost.sim_ms,
                        input: group_triples,
                        output: verdict.gated,
                    });
                    stats.spans.push(StageSpan {
                        stage: Stage::NodeConfidence,
                        wall_s: outcome.node_cost.wall_s,
                        sim_ms: outcome.node_cost.sim_ms,
                        input: verdict.gated,
                        output: verdict.kept.len(),
                    });
                    verdict
                });
            // A memo hit recorded no spans above: account the stages at
            // zero cost so traces keep their shape.
            if stats.spans.len() == spans_before {
                stats.spans.push(StageSpan {
                    stage: Stage::GraphConfidence,
                    wall_s: 0.0,
                    sim_ms: 0.0,
                    input: group_triples,
                    output: verdict.gated,
                });
                stats.spans.push(StageSpan {
                    stage: Stage::NodeConfidence,
                    wall_s: 0.0,
                    sim_ms: 0.0,
                    input: verdict.gated,
                    output: verdict.kept.len(),
                });
            }
            stats.subgraph = Some(SubgraphDecision {
                entity: self.kg.entity_name(entity).to_string(),
                relation: self.kg.relation_name(relation).to_string(),
                triples: group_triples,
                source_count: group_sources,
                graph_confidence: verdict.graph.map(|g| g.value),
                passed_graph_gate: self.config.enable_graph_level
                    && verdict
                        .graph
                        .is_some_and(|g| g.value >= self.config.graph_threshold),
                kept_nodes: verdict.kept.len(),
                dropped_nodes: verdict.dropped,
            });
            (verdict.graph, verdict.kept, verdict.dropped)
        } else {
            // Isolated slot: a single claim, assessed leniently (no
            // peers to contradict it).
            let node_started = WallTimer::start();
            let sim_before = self.llm.usage().simulated_ms;
            let kept: Vec<NodeConfidence> = sets
                .isolated
                .iter()
                .map(|&tid| self.singleton_assessment(tid))
                .collect();
            let sim = self.llm.usage().simulated_ms;
            stats.span(
                Stage::NodeConfidence,
                node_started,
                sim_before,
                sim,
                sets.isolated.len(),
                kept.len(),
            );
            if !sets.isolated.is_empty() {
                let mut srcs: Vec<SourceId> = sets
                    .isolated
                    .iter()
                    .map(|&tid| self.kg.triple(tid).source)
                    .collect();
                srcs.sort_unstable();
                srcs.dedup();
                stats.subgraph = Some(SubgraphDecision {
                    entity: self.kg.entity_name(entity).to_string(),
                    relation: self.kg.relation_name(relation).to_string(),
                    triples: sets.isolated.len(),
                    source_count: srcs.len(),
                    graph_confidence: None,
                    passed_graph_gate: false,
                    kept_nodes: kept.len(),
                    dropped_nodes: 0,
                });
            }
            (None, kept, 0)
        };

        // Step 4: trustworthy answer generation.
        let gen_started = WallTimer::start();
        let sim_before_gen = self.llm.usage().simulated_ms;
        let context_claims = kept.len() + noise_triples.len();
        let (faithful, distractors, profile, context_tokens) =
            self.build_context(&kept, dropped, &noise_triples);
        if faithful.is_empty() && kept.is_empty() {
            let sim = self.llm.usage().simulated_ms;
            stats.span(
                Stage::Generation,
                gen_started,
                sim_before_gen,
                sim,
                context_claims,
                0,
            );
            return PipelineAnswer {
                values: Vec::new(),
                fusion_values: Vec::new(),
                abstained: true,
                abstain_reason: Some(AbstainReason::NoTrustedContext),
                hallucinated: false,
                graph_confidence,
                kept,
                dropped,
                examined,
                quarantined_claims,
                escalation_attempts: 0,
            };
        }
        let fusion_values = self.restore_surface(entity, relation, faithful.clone());
        let generated = match self.llm.try_generate_answer(
            &query.key(),
            faithful.clone(),
            &distractors,
            &profile,
            context_tokens,
        ) {
            Ok(g) => g,
            // A dead generation call must abstain, never guess: the
            // fusion result (computed without the LLM) still stands.
            Err(err) => {
                let sim = self.llm.usage().simulated_ms;
                stats.span(
                    Stage::Generation,
                    gen_started,
                    sim_before_gen,
                    sim,
                    context_claims,
                    0,
                );
                return PipelineAnswer {
                    values: Vec::new(),
                    fusion_values,
                    abstained: true,
                    abstain_reason: Some(AbstainReason::GenerationFailed {
                        attempts: err.attempts(),
                    }),
                    hallucinated: false,
                    graph_confidence,
                    kept,
                    dropped,
                    examined,
                    quarantined_claims,
                    escalation_attempts: 0,
                };
            }
        };
        let sim = self.llm.usage().simulated_ms;
        stats.span(
            Stage::Generation,
            gen_started,
            sim_before_gen,
            sim,
            context_claims,
            generated.values.len(),
        );

        // Closed loop (§5.11): grade the draft against the kept
        // context; on a failing grade walk the escalation ladder under
        // the configured deadline budget. Disabled (`loopcfg: None`)
        // this block is a no-op and the pipeline is bit-identical to
        // its single-pass form.
        let mut generated = generated;
        let mut escalation_attempts = 0u32;
        if let Some(cfg) = self.loopcfg {
            let outcome = self.escalate(
                query,
                cfg,
                entity,
                relation,
                &slot_triples,
                &noise_triples,
                &mut kept,
                dropped,
                faithful,
                distractors,
                profile,
                context_tokens,
                &mut generated,
                stats,
            );
            escalation_attempts = outcome.attempts;
            if outcome.exhausted {
                return PipelineAnswer {
                    values: Vec::new(),
                    fusion_values,
                    abstained: true,
                    abstain_reason: Some(AbstainReason::EscalationExhausted {
                        attempts: outcome.attempts,
                    }),
                    hallucinated: false,
                    graph_confidence,
                    kept,
                    dropped,
                    examined,
                    quarantined_claims,
                    escalation_attempts: outcome.attempts,
                };
            }
        }

        // Step 5: historical credibility update, using the emitted
        // answer set as the feedback signal.
        let mut per_source: FxHashMap<SourceId, (usize, usize)> = FxHashMap::default();
        for node in &kept {
            let correct = generated
                .values
                .iter()
                .any(|v| v.canonical_key() == node.value.canonical_key());
            let entry = per_source.entry(node.source).or_insert((0, 0));
            entry.1 += 1;
            if correct {
                entry.0 += 1;
            }
        }
        for (source, (correct, total)) in per_source {
            self.history.record(source, correct, total);
        }

        PipelineAnswer {
            values: self.restore_surface(entity, relation, generated.values),
            fusion_values,
            abstained: false,
            abstain_reason: None,
            hallucinated: generated.hallucinated,
            graph_confidence,
            kept,
            dropped,
            examined,
            quarantined_claims,
            escalation_attempts,
        }
    }

    /// The closed loop's body: grade the current draft, and while the
    /// grade fails walk the ladder (widen → consult → tighten),
    /// regenerate, and re-grade — all within `cfg`'s attempt and
    /// deadline budgets. Degradation contract: a dead grader accepts
    /// the single-pass verdict (never panics, never loops), a dead
    /// regenerator keeps the current draft and stops escalating, and a
    /// blown budget reports exhaustion so the caller abstains.
    #[allow(clippy::too_many_arguments)]
    fn escalate(
        &mut self,
        query: &Query,
        cfg: LoopConfig,
        entity: EntityId,
        relation: RelationId,
        slot_triples: &[TripleId],
        noise_triples: &[TripleId],
        kept: &mut Vec<NodeConfidence>,
        dropped: usize,
        mut faithful: Vec<Value>,
        mut distractors: Vec<Value>,
        mut profile: ContextProfile,
        mut context_tokens: usize,
        generated: &mut GeneratedAnswer,
        stats: &mut AnswerStats,
    ) -> LoopOutcome {
        let loop_sim_start = self.llm.usage().simulated_ms;
        let mut grade_calls = 0usize;
        let mut grade_sim = 0.0f64;
        let mut esc_sim = 0.0f64;
        let mut attempts = 0u32;

        // Initial grade of the single-pass draft.
        let mut passed = {
            let sim_before = self.llm.usage().simulated_ms;
            grade_calls += 1;
            let verdict = match self.llm.try_grade_support(
                &format!("grade:{}#g0", query.key()),
                context_tokens,
                generated.values.len(),
            ) {
                Ok(()) => grade_supported(&generated.values, &faithful, &mut self.keys),
                // Dead grader: fall back to the single-pass verdict.
                Err(_) => {
                    stats.events.push(TraceEvent::GradeFailed { attempt: 0 });
                    true
                }
            };
            grade_sim += self.llm.usage().simulated_ms - sim_before;
            verdict
        };

        while !passed {
            // Budget gate: attempts and the metered µs deadline. All
            // meter charges are whole microseconds, so the delta is
            // exact.
            let elapsed_us = ms_to_us(self.llm.usage().simulated_ms - loop_sim_start);
            if attempts >= cfg.max_attempts || elapsed_us >= cfg.deadline_us {
                push_loop_spans(stats, grade_calls, grade_sim, attempts, esc_sim, 0);
                return LoopOutcome {
                    attempts,
                    exhausted: true,
                };
            }
            attempts += 1;
            let step = LadderStep::for_attempt(attempts);
            stats.events.push(TraceEvent::Escalated {
                step: step.slug().to_string(),
                attempt: attempts,
            });
            let sim_before = self.llm.usage().simulated_ms;
            match step {
                LadderStep::Widen => {
                    // Rescue slot claims MCC dropped (quarantined ones
                    // were filtered out of `slot_triples` upstream):
                    // each is re-assessed leniently and the context is
                    // rebuilt over the widened kept set.
                    let mut have: Vec<TripleId> = kept.iter().map(|n| n.triple).collect();
                    have.sort_unstable();
                    for &tid in slot_triples {
                        if have.binary_search(&tid).is_err() {
                            kept.push(self.singleton_assessment(tid));
                        }
                    }
                    let (f, d, p, t) = self.build_context(kept, dropped, noise_triples);
                    faithful = f;
                    distractors = d;
                    profile = p;
                    context_tokens = t;
                }
                LadderStep::Consult => {
                    // Fold in reserve claims for this slot: agreement
                    // shrinks the conflict profile, disagreement joins
                    // the distractors. No reserves configured is a
                    // no-op — the rung still regenerates.
                    if let Some(reserve) = self.reserve.clone() {
                        let entity_name = self.kg.entity_name(entity);
                        let relation_name = self.kg.relation_name(relation);
                        let faithful_keys: Vec<multirag_kg::Symbol> =
                            faithful.iter().map(|v| self.keys.key_of(v)).collect();
                        let mut distractor_keys: Vec<multirag_kg::Symbol> =
                            distractors.iter().map(|v| self.keys.key_of(v)).collect();
                        let mut matched = 0usize;
                        let mut agree = 0usize;
                        for claim in reserve.iter() {
                            if !claim.entity.eq_ignore_ascii_case(entity_name)
                                || !claim.attribute.eq_ignore_ascii_case(relation_name)
                            {
                                continue;
                            }
                            matched += 1;
                            let value = claim.value.standardized();
                            let key = self.keys.key_of(&value);
                            if faithful_keys.contains(&key) {
                                agree += 1;
                            } else if !distractor_keys.contains(&key) {
                                distractor_keys.push(key);
                                distractors.push(value);
                            }
                        }
                        // Independent agreement dilutes the conflict
                        // mass; the context itself grows by the
                        // consulted claims.
                        profile.conflict_ratio *= 1.0 / (1.0 + agree as f64);
                        profile.claims += matched;
                        context_tokens += 16 * matched;
                        // The simulated cost of reading the reserves.
                        self.llm.reason(64 + 16 * matched, 16);
                    }
                }
                LadderStep::Tighten => {
                    // Last rung: regenerate against the faithful set
                    // alone with the conflict profile collapsed — the
                    // cheapest, lowest-risk context we can offer.
                    distractors.clear();
                    profile.conflict_ratio *= 0.25;
                    profile.irrelevance_ratio = 0.0;
                    profile.claims = faithful.len();
                    context_tokens = 24 * faithful.len();
                }
            }
            // Regenerate with the tightened context. The suffixed call
            // key re-rolls both the fault plan and the hallucination
            // draw — an escalation is a genuinely new call.
            match self.llm.try_generate_answer(
                &format!("{}#e{attempts}", query.key()),
                faithful.clone(),
                &distractors,
                &profile,
                context_tokens,
            ) {
                Ok(g) => *generated = g,
                // Dead regenerator: keep the current draft and stop
                // escalating — degraded, never panicking.
                Err(_) => {
                    esc_sim += self.llm.usage().simulated_ms - sim_before;
                    push_loop_spans(
                        stats,
                        grade_calls,
                        grade_sim,
                        attempts,
                        esc_sim,
                        generated.values.len(),
                    );
                    return LoopOutcome {
                        attempts,
                        exhausted: false,
                    };
                }
            }
            esc_sim += self.llm.usage().simulated_ms - sim_before;

            // Re-grade the fresh draft.
            let sim_before = self.llm.usage().simulated_ms;
            grade_calls += 1;
            passed = match self.llm.try_grade_support(
                &format!("grade:{}#g{attempts}", query.key()),
                context_tokens,
                generated.values.len(),
            ) {
                Ok(()) => grade_supported(&generated.values, &faithful, &mut self.keys),
                Err(_) => {
                    stats
                        .events
                        .push(TraceEvent::GradeFailed { attempt: attempts });
                    true
                }
            };
            grade_sim += self.llm.usage().simulated_ms - sim_before;
        }
        push_loop_spans(
            stats,
            grade_calls,
            grade_sim,
            attempts,
            esc_sim,
            generated.values.len(),
        );
        LoopOutcome {
            attempts,
            exhausted: false,
        }
    }

    /// Assembles the canonical [`QueryTrace`] for one answered query:
    /// spans in pipeline order, the subgraph verdict, per-source
    /// contributions sorted by name, chaos events, and answer
    /// provenance. Everything serialized is deterministic for a fixed
    /// seed (wall clocks stay out of the canonical JSON).
    fn build_trace(
        &self,
        query: &Query,
        answer: &PipelineAnswer,
        stats: AnswerStats,
        before: &LlmUsage,
    ) -> QueryTrace {
        let mut trace = QueryTrace::new(u64::from(query.id), query.key());
        trace.spans = stats.spans;
        trace.subgraphs.extend(stats.subgraph);
        // Per-source contributions: kept claims + quarantine losses,
        // keyed (and therefore sorted) by source name.
        let mut sources: std::collections::BTreeMap<String, SourceContribution> =
            std::collections::BTreeMap::new();
        for node in &answer.kept {
            let name = self.kg.source_name(node.source).to_string();
            sources
                .entry(name.clone())
                .or_insert_with(|| SourceContribution {
                    source: name,
                    kept_claims: 0,
                    quarantined_claims: 0,
                })
                .kept_claims += 1;
        }
        let mut quarantined: std::collections::BTreeMap<String, usize> =
            std::collections::BTreeMap::new();
        for (source, skipped) in stats.quarantined {
            *quarantined
                .entry(self.kg.source_name(source).to_string())
                .or_default() += skipped;
        }
        for (name, &skipped) in &quarantined {
            sources
                .entry(name.clone())
                .or_insert_with(|| SourceContribution {
                    source: name.clone(),
                    kept_claims: 0,
                    quarantined_claims: 0,
                })
                .quarantined_claims += skipped;
        }
        trace.sources = sources.into_values().collect();
        for (source, skipped_claims) in quarantined {
            trace.events.push(TraceEvent::SourceQuarantined {
                source,
                skipped_claims,
            });
        }
        let usage = self.llm.usage();
        let retries = usage.retries.saturating_sub(before.retries);
        if retries > 0 {
            trace.events.push(TraceEvent::LlmRetries { count: retries });
        }
        let failed = usage.failed_calls.saturating_sub(before.failed_calls);
        if failed > 0 {
            trace
                .events
                .push(TraceEvent::LlmCallsFailed { count: failed });
        }
        // Closed-loop events (grade failures, escalations) in
        // occurrence order, ahead of the final abstention verdict.
        trace.events.extend(stats.events);
        if let Some(reason) = answer.abstain_reason {
            trace.events.push(TraceEvent::Abstained {
                reason: reason.slug().to_string(),
            });
        }
        let mut supporting: Vec<String> = answer
            .kept
            .iter()
            .map(|n| self.kg.source_name(n.source).to_string())
            .collect();
        supporting.sort();
        supporting.dedup();
        trace.answer = AnswerProvenance {
            answered: !answer.abstained,
            abstain_reason: answer.abstain_reason.map(|r| r.slug().to_string()),
            values: answer.values.iter().map(Value::canonical_key).collect(),
            fusion_values: answer
                .fusion_values
                .iter()
                .map(Value::canonical_key)
                .collect(),
            supporting_sources: supporting,
            hallucinated: answer.hallucinated,
        };
        trace
    }

    /// Maps standardized answer values back to a representative surface
    /// form from the slot's raw claims (the normal form is an internal
    /// artifact of std.py-style standardization; users should see what
    /// a source actually wrote).
    fn restore_surface(
        &self,
        entity: EntityId,
        relation: RelationId,
        values: Vec<Value>,
    ) -> Vec<Value> {
        let raw: Vec<Value> = self
            .kg
            .slot_triples(entity, relation)
            .iter()
            .map(|&tid| match &self.kg.triple(tid).object {
                Object::Entity(e) => Value::Str(self.kg.entity_name(*e).to_string()),
                Object::Literal(v) => v.clone(),
            })
            .collect();
        values
            .into_iter()
            .map(|v| {
                raw.iter()
                    .flat_map(|r| r.scalar_claims())
                    .find(|r| r.answer_key() == v.answer_key())
                    .unwrap_or(v)
            })
            .collect()
    }

    fn kg_domain(&self) -> &str {
        // All benchmark graphs are single-domain; read it off the first
        // source.
        if self.kg.source_count() > 0 {
            let rec = self.kg.source(SourceId(0));
            self.kg.resolve(rec.domain)
        } else {
            ""
        }
    }

    /// Extraction step: MKA path (slot-index probe) vs the unaggregated
    /// scan. Returns `(slot_triples, noise_triples, examined_count)`.
    fn extract(
        &mut self,
        entity: EntityId,
        relation: RelationId,
    ) -> (Vec<TripleId>, Vec<TripleId>, usize) {
        if self.mlg.is_some() {
            // MKA: O(slot) probe — tier descent through the prebuilt
            // index when one is attached (entity lookup → slot bitset
            // → claim postings), otherwise the graph's slot map. Both
            // return the same ascending-id claim set.
            let slot = match self.tindex.as_ref() {
                Some(index) => index.descend(entity, relation, &mut self.tcounters),
                None => self.kg.slot_triples(entity, relation).to_vec(),
            };
            let examined = slot.len();
            (slot, Vec::new(), examined)
        } else {
            // w/o MKA: the whole entity neighbourhood is scanned and
            // handed to the LLM for relevance filtering — slow and
            // noisy. We actually do the scan (the time shows up in QT)
            // and actually keep the noise (it shows up in the context
            // profile).
            let mut slot = Vec::new();
            let mut noise = Vec::new();
            let mut examined = 0usize;
            for (tid, t) in self.kg.iter_triples() {
                examined += 1;
                if t.subject == entity {
                    if t.predicate == relation {
                        slot.push(tid);
                    } else {
                        noise.push(tid);
                    }
                } else if t.object.as_entity() == Some(entity) {
                    noise.push(tid);
                }
            }
            // The LLM reads the whole candidate bundle to filter it.
            self.llm.reason(64 + 8 * (slot.len() + noise.len()), 32);
            // Imperfect relevance filtering over the unaggregated
            // bundle: without the homologous index a fraction of
            // genuine slot claims is missed — the retrieval-recall loss
            // the paper's Challenge 1 attributes to sparse multi-source
            // data.
            let seed = self.llm.seed();
            slot.retain(|tid| {
                multirag_llmsim::determinism::bernoulli(
                    seed,
                    &format!("mka-filter:{}", tid.0),
                    0.85,
                )
            });
            // A fixed context window: without the homologous index the
            // retriever stuffs a conventional top-k chunk budget, and
            // noise chunks compete with genuine claims for the slots.
            let window = 8usize.saturating_sub(noise.len().min(3));
            slot.truncate(window);
            (slot, noise, examined)
        }
    }

    fn singleton_assessment(&mut self, tid: TripleId) -> NodeConfidence {
        let t = self.kg.triple(tid);
        let value = match &t.object {
            Object::Entity(e) => Value::Str(self.kg.entity_name(*e).to_string()),
            Object::Literal(v) => v.standardized(),
        };
        let auth_hist = self.history.auth_hist(t.source, 1.0, 1);
        let authority = self.config.alpha * 0.5 + (1.0 - self.config.alpha) * auth_hist;
        NodeConfidence {
            triple: tid,
            value,
            source: t.source,
            consistency: 0.5,
            auth_llm: 0.5,
            auth_hist,
            authority,
            confidence: 0.5 + authority,
        }
    }

    /// Builds the generation context from the surviving claims.
    fn build_context(
        &self,
        kept: &[NodeConfidence],
        dropped: usize,
        noise: &[TripleId],
    ) -> (Vec<Value>, Vec<Value>, ContextProfile, usize) {
        // Confidence-weighted support per canonical value among the
        // kept claims: a claim "votes" with its node confidence, so a
        // reliable source outweighs a decoy-copying one even at equal
        // claim counts.
        let mut support: FxHashMap<String, (Value, f64, usize)> = FxHashMap::default();
        for node in kept {
            // A node is one source's assertion; multi-valued assertions
            // vote for each of their scalar claims.
            for scalar in node.value.scalar_claims() {
                let entry =
                    support
                        .entry(scalar.canonical_key())
                        .or_insert((scalar.clone(), 0.0, 0));
                entry.1 += node.confidence.max(0.05);
                entry.2 += 1;
            }
        }
        let max_support = support.values().map(|&(_, w, _)| w).fold(0.0f64, f64::max);
        // Faithful read: every value within 48% of the modal weighted
        // support (multi-valued truths tie near the max even under
        // uneven coverage; weakly supported outliers fall away).
        let mut faithful: Vec<(Value, f64)> = support
            .values()
            .filter(|&&(_, w, _)| w > 0.48 * max_support)
            .map(|(v, w, _)| (v.clone(), *w))
            .collect();
        // When every claim stands alone (all singleton support) keep
        // only the best-weighted candidate: there is no consensus.
        let lone_claims = support.values().all(|&(_, _, c)| c <= 1);
        faithful.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.canonical_key().cmp(&b.0.canonical_key()))
        });
        if lone_claims && faithful.len() > 1 {
            faithful.truncate(1);
        }
        let answer_support: f64 = faithful.iter().map(|&(_, w)| w).sum();
        let faithful_keys: std::collections::HashSet<String> =
            faithful.iter().map(|(v, _)| v.canonical_key()).collect();
        let distractors: Vec<Value> = support
            .values()
            .filter(|(v, _, _)| !faithful_keys.contains(&v.canonical_key()))
            .map(|(v, _, _)| v.clone())
            .collect();

        let total_claims = kept.len() + noise.len();
        let total_weight: f64 = support.values().map(|&(_, w, _)| w).sum();
        let conflict_ratio = if kept.is_empty() || total_weight <= 0.0 {
            1.0
        } else {
            (1.0 - answer_support / total_weight).max(0.0)
        };
        let irrelevance_ratio = if total_claims == 0 {
            0.0
        } else {
            noise.len() as f64 / total_claims as f64
        };
        let coverage = if kept.is_empty() { 0.0 } else { 1.0 };
        let profile = ContextProfile {
            conflict_ratio,
            irrelevance_ratio,
            coverage,
            claims: total_claims,
        };
        let context_tokens = 24 * kept.len() + 16 * noise.len() + 8 * dropped.min(8);
        (
            faithful.into_iter().map(|(v, _)| v).collect(),
            distractors,
            profile,
            context_tokens,
        )
    }
}

/// Builds homologous sets from the triples extraction actually
/// recovered — the per-query variant of [`match_slot`] that respects
/// retrieval recall (the w/o-MKA path may have missed claims).
fn sets_from_extraction(
    kg: &KnowledgeGraph,
    entity: EntityId,
    relation: RelationId,
    extracted: &[TripleId],
) -> crate::homologous::HomologousSets {
    let mut sets = crate::homologous::HomologousSets::default();
    if extracted.len() >= 2 {
        let mut triples = extracted.to_vec();
        triples.sort_unstable();
        let mut sources: Vec<SourceId> = triples.iter().map(|&tid| kg.triple(tid).source).collect();
        sources.sort_unstable();
        sources.dedup();
        sets.groups.push(HomologousGroup {
            entity,
            relation,
            triples,
            source_count: sources.len(),
        });
    } else {
        sets.isolated = extracted.to_vec();
    }
    sets
}

/// A self-contained slot-level MCC evaluator split off a pipeline via
/// [`MklgpPipeline::mcc_worker`]: its own LLM stream, key interner and
/// op counters over the shared (read-only) graph and a history
/// snapshot. The `eval` fan-out harness runs one worker per thread and
/// folds usage and counters back together in slot order, so parallel
/// sweeps are byte-identical to serial ones.
#[derive(Clone)]
pub struct MccWorker<'g> {
    kg: &'g KnowledgeGraph,
    llm: MockLlm,
    keys: KeyInterner,
    history: HistoryStore,
    config: MultiRagConfig,
    max_degree: usize,
    counters: KernelCounters,
}

impl<'g> MccWorker<'g> {
    /// Runs MCC (Algorithm 1) over one homologous group, honouring the
    /// pipeline's `use_reference_mcc` switch.
    pub fn run(&mut self, group: &HomologousGroup) -> MccOutcome {
        if self.config.use_reference_mcc {
            return confidence::mcc_filter_reference(
                self.kg,
                group,
                &mut self.llm,
                &self.history,
                &self.config,
                self.max_degree,
            );
        }
        let profiles = confidence::build_profiles(self.kg, group, &mut self.keys);
        self.counters.profiles_built += profiles.len() as u64;
        confidence::mcc_filter_profiles(
            self.kg,
            group,
            &profiles,
            &self.keys,
            &mut self.llm,
            &self.history,
            &self.config,
            self.max_degree,
            &mut self.counters,
        )
    }

    /// The worker's LLM usage meter.
    pub fn usage(&self) -> LlmUsage {
        self.llm.usage()
    }

    /// Resets the worker's usage meter (fan-out cells meter per-group
    /// deltas).
    pub fn reset_usage(&mut self) {
        self.llm.reset_usage();
    }

    /// Kernel op counters accumulated by this worker.
    pub fn counters(&self) -> KernelCounters {
        self.counters
    }

    /// Interner statistics `(hits, misses)` for this worker's clone.
    pub fn interner_stats(&self) -> (u64, u64) {
        (self.keys.hits(), self.keys.misses())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multirag_datasets::movies::MoviesSpec;
    use multirag_datasets::spec::MultiSourceDataset;

    fn dataset() -> MultiSourceDataset {
        MoviesSpec::small().generate(42)
    }

    fn f1(answers: &[(Vec<Value>, &Query)]) -> f64 {
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fn_ = 0usize;
        for (values, query) in answers {
            // Representation-insensitive comparison (answer_key): the
            // pipeline emits standardized forms.
            let gold: std::collections::HashSet<String> =
                query.gold.iter().map(Value::answer_key).collect();
            let got: std::collections::HashSet<String> =
                values.iter().map(Value::answer_key).collect();
            tp += got.intersection(&gold).count();
            fp += got.difference(&gold).count();
            fn_ += gold.difference(&got).count();
        }
        let p = tp as f64 / (tp + fp).max(1) as f64;
        let r = tp as f64 / (tp + fn_).max(1) as f64;
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    #[test]
    fn tiered_index_pipeline_is_answer_identical() {
        let data = dataset();
        let index = Arc::new(TieredIndex::build(&data.graph));
        let mut plain = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42);
        let mut tiered =
            MklgpPipeline::new_with_index(&data.graph, MultiRagConfig::default(), 42, index);
        for query in &data.queries {
            let a = plain.answer(query);
            let b = tiered.answer(query);
            assert_eq!(a.fusion_values, b.fusion_values, "query {}", query.key());
            assert_eq!(a.abstained, b.abstained);
            assert_eq!(a.examined, b.examined);
        }
        let counters = tiered.tindex_counters();
        assert!(counters.tier_descents > 0, "descents must be counted");
        assert_eq!(plain.tindex_counters(), TindexCounters::default());
    }

    #[test]
    fn pipeline_answers_most_queries_correctly() {
        let data = dataset();
        let mut pipeline = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42);
        let answers: Vec<(Vec<Value>, &Query)> = data
            .queries
            .iter()
            .map(|q| (pipeline.answer(q).fusion_values, q))
            .collect();
        let score = f1(&answers);
        assert!(score > 0.5, "F1 {score}");
    }

    #[test]
    fn pipeline_is_deterministic() {
        let data = dataset();
        let run = || {
            let mut p = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42);
            data.queries
                .iter()
                .map(|q| p.answer(q).values)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mka_ablation_examines_far_more_claims() {
        let data = dataset();
        let mut with = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42);
        let mut without =
            MklgpPipeline::new(&data.graph, MultiRagConfig::default().without_mka(), 42);
        let q = &data.queries[0];
        let fast = with.answer(q);
        let slow = without.answer(q);
        assert!(
            slow.examined > fast.examined * 10,
            "w/o MKA must scan: {} vs {}",
            slow.examined,
            fast.examined
        );
    }

    #[test]
    fn full_config_beats_no_mcc_on_f1() {
        let data = dataset();
        let run = |config: MultiRagConfig| {
            let mut p = MklgpPipeline::new(&data.graph, config, 42);
            let answers: Vec<(Vec<Value>, &Query)> = data
                .queries
                .iter()
                .map(|q| (p.answer(q).fusion_values, q))
                .collect();
            f1(&answers)
        };
        // Use many queries for a stable comparison: answer each query
        // set 5 times under different seeds folded into the key via
        // repeated runs (the noise is keyed per query, so one pass with
        // 12 queries is noisy; compare across the whole set).
        let full = run(MultiRagConfig::default());
        let gutted = run(MultiRagConfig::default().without_mcc());
        assert!(
            full >= gutted,
            "full {full} must not lose to w/o MCC {gutted}"
        );
    }

    #[test]
    fn abstains_on_unknown_entities() {
        let data = dataset();
        let mut pipeline = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42);
        let bogus = Query {
            id: 999,
            text: "What is the year of Nonexistent Film 9999?".into(),
            entity: "Nonexistent Film 9999".into(),
            attribute: "year".into(),
            gold: vec![],
        };
        let answer = pipeline.answer(&bogus);
        assert!(answer.abstained);
        assert!(answer.values.is_empty());
    }

    #[test]
    fn usage_meter_accumulates_llm_cost() {
        let data = dataset();
        let mut pipeline = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42);
        pipeline.answer(&data.queries[0]);
        let usage = pipeline.llm().usage();
        assert!(usage.calls >= 2, "logic form + generation at minimum");
        assert!(usage.simulated_ms > 0.0);
        let mut p2 = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42);
        p2.answer(&data.queries[0]);
        p2.reset_usage();
        assert_eq!(p2.llm().usage().calls, 0);
    }

    #[test]
    fn history_learns_source_quality_over_queries() {
        let data = dataset();
        let mut pipeline = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42);
        for q in &data.queries {
            pipeline.answer(q);
        }
        // After the query load, per-source credibilities must have
        // spread away from the 0.5 prior.
        let creds: Vec<f64> = data
            .sources
            .iter()
            .map(|s| pipeline.history().credibility(s.id))
            .collect();
        let spread = creds
            .iter()
            .fold(0.0f64, |acc, &c| acc.max((c - 0.5).abs()));
        assert!(spread > 0.01, "credibility never moved: {creds:?}");
    }

    #[test]
    fn healthy_fault_plan_changes_nothing() {
        let data = dataset();
        let plain = {
            let mut p = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42);
            data.queries.iter().map(|q| p.answer(q)).collect::<Vec<_>>()
        };
        let chaos_off = {
            let mut p = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42)
                .with_fault_plan(FaultPlan::healthy(42));
            data.queries.iter().map(|q| p.answer(q)).collect::<Vec<_>>()
        };
        assert_eq!(plain, chaos_off);
    }

    #[test]
    fn outages_quarantine_sources_but_survivors_still_answer() {
        let data = dataset();
        let plan = FaultPlan {
            outage_rate: 0.4,
            ..FaultPlan::healthy(9)
        };
        let mut p =
            MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42).with_fault_plan(plan);
        let down = p.quarantined_sources().clone();
        assert!(
            !down.is_empty() && down.len() < data.graph.source_count(),
            "partial outage expected: {} of {}",
            down.len(),
            data.graph.source_count()
        );
        let answers: Vec<PipelineAnswer> = data.queries.iter().map(|q| p.answer(q)).collect();
        assert!(
            answers.iter().any(|a| !a.abstained),
            "surviving sources must still carry answers"
        );
        assert!(
            answers.iter().any(|a| a.quarantined_claims > 0),
            "some claims must have been skipped"
        );
        // Outage feedback sinks the credibility of a down source
        // relative to the fault-free run.
        let mut control = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42);
        for q in &data.queries {
            control.answer(q);
        }
        let punished = down
            .iter()
            .any(|&s| p.history().credibility(s) < control.history().credibility(s) - 1e-9);
        assert!(punished, "outages must cost credibility");
    }

    #[test]
    fn total_outage_abstains_with_structured_reason() {
        let data = dataset();
        let plan = FaultPlan {
            outage_rate: 1.0,
            ..FaultPlan::healthy(3)
        };
        let mut p =
            MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42).with_fault_plan(plan);
        for q in &data.queries {
            let a = p.answer(q);
            assert!(a.abstained, "no sources, no answer");
            assert!(a.values.is_empty(), "never a silent wrong answer");
            assert_eq!(a.abstain_reason, Some(AbstainReason::AllSourcesDown));
        }
    }

    #[test]
    fn dead_generation_abstains_but_keeps_fusion() {
        let data = dataset();
        let plan = FaultPlan {
            llm_failure_rate: 1.0,
            ..FaultPlan::healthy(5)
        };
        let mut p =
            MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42).with_fault_plan(plan);
        let answers: Vec<PipelineAnswer> = data.queries.iter().map(|q| p.answer(q)).collect();
        assert!(answers.iter().all(|a| a.abstained && a.values.is_empty()));
        assert!(answers.iter().any(|a| matches!(
            a.abstain_reason,
            Some(AbstainReason::GenerationFailed { attempts: 3 })
        )));
        // Fusion is LLM-free past MCC: it survives the dead generator.
        assert!(
            answers.iter().any(|a| !a.fusion_values.is_empty()),
            "fusion values must survive generation failure"
        );
        assert!(p.llm().usage().retries > 0, "retries were attempted");
    }

    #[test]
    fn observer_records_traces_spans_and_outcome_counters() {
        let data = dataset();
        let obs = multirag_obs::Observer::new();
        let mut p = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42)
            .with_observer(obs.clone());
        for q in &data.queries {
            p.answer(q);
        }
        let traces = obs.traces();
        assert_eq!(traces.len(), data.queries.len());
        let snap = obs.registry().snapshot();
        assert_eq!(
            snap.counter("pipeline_queries_total"),
            data.queries.len() as u64
        );
        assert!(snap.counter("llm_calls_total") > 0);
        let stages: Vec<&str> = obs.profile().iter().map(|p| p.stage.name()).collect();
        assert!(stages.contains(&"mlg_build"));
        assert!(stages.contains(&"homologous_group"));
        assert!(stages.contains(&"generation"));
        // Every trace carries provenance consistent with its outcome.
        for t in &traces {
            if t.answer.answered {
                assert!(!t.answer.fusion_values.is_empty());
            } else {
                assert!(t.answer.abstain_reason.is_some());
            }
        }
    }

    #[test]
    fn attaching_an_observer_does_not_change_answers() {
        let data = dataset();
        let plain = {
            let mut p = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42);
            data.queries.iter().map(|q| p.answer(q)).collect::<Vec<_>>()
        };
        let observed = {
            let mut p = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42)
                .with_observer(multirag_obs::Observer::new());
            data.queries.iter().map(|q| p.answer(q)).collect::<Vec<_>>()
        };
        assert_eq!(plain, observed);
    }

    #[test]
    fn traces_are_byte_identical_across_same_seed_runs() {
        let data = dataset();
        let run = || {
            let obs = multirag_obs::Observer::new();
            let mut p = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42)
                .with_observer(obs.clone());
            for q in &data.queries {
                p.answer(q);
            }
            multirag_obs::traces_json(42, "movies", &obs.take_traces())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn quarantine_shows_up_in_traces_and_chaos_counters() {
        let data = dataset();
        let plan = FaultPlan {
            outage_rate: 0.4,
            ..FaultPlan::healthy(9)
        };
        let obs = multirag_obs::Observer::new();
        let mut p = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42)
            .with_fault_plan(plan)
            .with_observer(obs.clone());
        for q in &data.queries {
            p.answer(q);
        }
        let snap = obs.registry().snapshot();
        assert!(snap.counter("chaos_quarantined_claims_total") > 0);
        assert!(obs
            .traces()
            .iter()
            .any(|t| t.events.iter().any(|e| e.kind() == "source_quarantined")));
    }

    #[test]
    fn confidence_memo_reuses_verdicts_without_changing_answers() {
        let data = dataset();
        // Frozen history: the memo contract (per-epoch validity).
        let run = |memo: Option<ConfidenceMemo>| {
            let mut p = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42);
            p.history().freeze();
            if let Some(m) = memo {
                p = p.with_confidence_memo(m);
            }
            let mut answers = Vec::new();
            // Every query twice: the second pass must hit.
            for q in data.queries.iter().chain(data.queries.iter()) {
                answers.push(p.answer(q));
            }
            (answers, p.llm().usage())
        };
        let memo = ConfidenceMemo::new();
        let (plain, plain_usage) = run(None);
        let (memoized, memo_usage) = run(Some(memo.clone()));
        assert_eq!(plain, memoized, "memo must never change an answer");
        assert!(memo.hits() > 0, "second pass must hit the memo");
        assert!(
            memo_usage.simulated_ms < plain_usage.simulated_ms,
            "memo hits must save simulated LLM time: {} vs {}",
            memo_usage.simulated_ms,
            plain_usage.simulated_ms
        );
    }

    #[test]
    fn response_cache_preserves_answers_and_counts_hits() {
        let data = dataset();
        let run = |cache: Option<LlmResponseCache>| {
            let mut p = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42);
            p.history().freeze();
            if let Some(c) = cache {
                p = p.with_llm_response_cache(c);
            }
            let answers: Vec<PipelineAnswer> = data
                .queries
                .iter()
                .chain(data.queries.iter())
                .map(|q| p.answer(q))
                .collect();
            (answers, p.llm().usage())
        };
        let cache = LlmResponseCache::new();
        let (plain, _) = run(None);
        let (cached, usage) = run(Some(cache.clone()));
        assert_eq!(plain, cached, "cache must never change an answer");
        assert!(usage.cache_hits > 0, "repeats must hit");
        assert!(cache.hits() > 0);
    }

    #[test]
    fn cloned_pipelines_answer_identically() {
        let data = dataset();
        let mut original = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42);
        original.history().freeze();
        let mut fork = original.clone();
        for q in &data.queries {
            assert_eq!(original.answer(q), fork.answer(q));
        }
    }

    #[test]
    fn graph_confidence_is_reported_for_homologous_slots() {
        let data = dataset();
        let mut pipeline = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42);
        let with_conf = data
            .queries
            .iter()
            .filter(|q| pipeline.answer(q).graph_confidence.is_some())
            .count();
        assert!(
            with_conf > 0,
            "dense movies data must have homologous slots"
        );
    }

    /// A perturbed dataset with a non-zero baseline hallucination rate
    /// — the regime the closed loop is for.
    fn conflicted_dataset() -> MultiSourceDataset {
        let data = dataset();
        let data = multirag_datasets::perturb::inject_conflicts(&data, 0.35, 42);
        multirag_datasets::perturb::mask_relations(&data, 0.2, 42)
    }

    #[test]
    fn loop_off_is_bit_identical_to_single_pass() {
        let data = conflicted_dataset();
        let run = |cfg: Option<LoopConfig>| {
            let mut p = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42);
            if let Some(cfg) = cfg {
                p = p.with_loop_control(cfg);
            }
            data.queries.iter().map(|q| p.answer(q)).collect::<Vec<_>>()
        };
        let plain = run(None);
        let zero_budget = run(Some(LoopConfig::default().with_max_attempts(0)));
        assert_eq!(plain, zero_budget, "max_attempts=0 must disable the loop");
    }

    #[test]
    fn closed_loop_strictly_reduces_hallucinations() {
        let data = conflicted_dataset();
        let halluc = |attempts: u32| {
            let mut p = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42)
                .with_loop_control(LoopConfig::default().with_max_attempts(attempts));
            data.queries
                .iter()
                .map(|q| p.answer(q))
                .filter(|a| a.hallucinated)
                .count()
        };
        let baseline = halluc(0);
        assert!(baseline > 0, "perturbation must induce hallucination");
        for attempts in 1..=3 {
            assert!(
                halluc(attempts) < baseline,
                "escalation at {attempts} attempt(s) must beat the baseline {baseline}"
            );
        }
    }

    #[test]
    fn dead_grader_degrades_to_the_single_pass_verdict() {
        let data = conflicted_dataset();
        let run = |grader_failure_rate: f64, attempts: u32| {
            let obs = multirag_obs::Observer::new();
            let mut p = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42)
                .with_fault_plan(FaultPlan {
                    grader_failure_rate,
                    ..FaultPlan::healthy(42)
                })
                .with_loop_control(LoopConfig::default().with_max_attempts(attempts))
                .with_observer(obs.clone());
            let answers: Vec<PipelineAnswer> = data.queries.iter().map(|q| p.answer(q)).collect();
            (answers, obs)
        };
        // Every grader dead: the loop must accept every single-pass
        // draft — same values as a loop-free pipeline, zero escalation.
        let (dead, obs) = run(1.0, 3);
        let single_pass = {
            let mut p = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42);
            data.queries.iter().map(|q| p.answer(q)).collect::<Vec<_>>()
        };
        assert_eq!(dead.len(), single_pass.len());
        for (d, s) in dead.iter().zip(&single_pass) {
            assert_eq!(d.values, s.values, "dead grader must not change answers");
            assert_eq!(d.escalation_attempts, 0);
        }
        let snap = obs.registry().snapshot();
        assert_eq!(
            snap.counter("loop_grade_failed_total"),
            data.queries.len() as u64,
            "every grading call must have been recorded as failed"
        );
        assert_eq!(snap.counter("loop_escalations_total"), 0);
    }

    #[test]
    fn exhausted_deadline_abstains_with_structured_reason() {
        let data = conflicted_dataset();
        // A 1µs deadline: the first failing grade exhausts the budget
        // before any escalation attempt is allowed.
        let mut p = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42)
            .with_loop_control(
                LoopConfig::default()
                    .with_max_attempts(3)
                    .with_deadline_us(1),
            );
        let answers: Vec<PipelineAnswer> = data.queries.iter().map(|q| p.answer(q)).collect();
        let exhausted: Vec<&PipelineAnswer> = answers
            .iter()
            .filter(|a| {
                matches!(
                    a.abstain_reason,
                    Some(AbstainReason::EscalationExhausted { .. })
                )
            })
            .collect();
        assert!(
            !exhausted.is_empty(),
            "failing grades under a spent deadline must abstain"
        );
        for a in exhausted {
            assert!(a.abstained && a.values.is_empty());
            assert_eq!(
                a.abstain_reason,
                Some(AbstainReason::EscalationExhausted { attempts: 0 }),
                "deadline fired before the first escalation attempt"
            );
            assert!(
                !a.fusion_values.is_empty(),
                "fusion stands even when the loop gives up"
            );
            assert!(!a.hallucinated, "abstention is never a hallucination");
        }
    }

    #[test]
    fn escalation_charges_metered_time() {
        let data = conflicted_dataset();
        let sim = |attempts: u32| {
            let mut p = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42)
                .with_loop_control(LoopConfig::default().with_max_attempts(attempts));
            for q in &data.queries {
                p.answer(q);
            }
            p.llm().usage().simulated_ms
        };
        let off = {
            let mut p = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42);
            for q in &data.queries {
                p.answer(q);
            }
            p.llm().usage().simulated_ms
        };
        assert!(
            sim(1) > off,
            "grading and escalation must cost simulated time"
        );
    }

    #[test]
    fn reserve_consultation_is_deterministic_and_clone_safe() {
        let data = conflicted_dataset();
        let reserves = multirag_datasets::render::render_all_sources(&dataset());
        let mut original = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42)
            .with_reserve_sources(&reserves)
            .with_loop_control(LoopConfig::default().with_max_attempts(3));
        original.history().freeze();
        let mut fork = original.clone();
        for q in &data.queries {
            assert_eq!(original.answer(q), fork.answer(q));
        }
    }

    #[test]
    fn loop_events_appear_in_traces_before_the_abstain_verdict() {
        let data = conflicted_dataset();
        let obs = multirag_obs::Observer::new();
        let mut p = MklgpPipeline::new(&data.graph, MultiRagConfig::default(), 42)
            .with_loop_control(LoopConfig::default().with_max_attempts(2))
            .with_observer(obs.clone());
        for q in &data.queries {
            p.answer(q);
        }
        let traces = obs.take_traces();
        let escalated: Vec<&QueryTrace> = traces
            .iter()
            .filter(|t| t.events.iter().any(|e| e.kind() == "escalated"))
            .collect();
        assert!(!escalated.is_empty(), "conflicted data must escalate");
        for t in &escalated {
            let stages: Vec<&str> = t.spans.iter().map(|s| s.stage.name()).collect();
            assert!(stages.contains(&"grade"));
            assert!(stages.contains(&"escalation"));
            // Any abstain verdict must come after the loop events.
            if let Some(abstain_at) = t.events.iter().position(|e| e.kind() == "abstained") {
                let last_loop = t
                    .events
                    .iter()
                    .rposition(|e| matches!(e.kind(), "escalated" | "grade_failed"))
                    .unwrap();
                assert!(last_loop < abstain_at);
            }
        }
    }
}
