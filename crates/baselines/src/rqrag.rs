//! RQ-RAG (Chan et al.): learning to refine queries for retrieval
//! augmented generation.
//!
//! The model rewrites / decomposes the query before retrieval, which
//! recovers evidence simple retrieval misses — a *coverage* win that
//! matters most on sparse data. It does nothing about conflicts among
//! the recovered evidence.

use crate::common::{
    conflict_ratio, majority_values, slot_claims, FusionMethod, MethodAnswer, SlotClaim,
};
use multirag_datasets::Query;
use multirag_kg::{KnowledgeGraph, Object, SourceId, Value};
use multirag_llmsim::{ContextProfile, MockLlm, Schema};

/// RQ-RAG baseline.
pub struct RqRag {
    llm: MockLlm,
}

impl RqRag {
    /// Creates an RQ-RAG baseline.
    pub fn new(seed: u64) -> Self {
        Self {
            llm: MockLlm::new(Schema::new(), seed),
        }
    }

    /// The refinement pass: beyond the exact slot, rewritten queries
    /// recover claims filed under sibling attribute names (e.g.
    /// `departure_time` vs `arrival_time` confusions resolve; here we
    /// model recovered evidence as claims on the same entity whose
    /// attribute shares a token with the asked one).
    fn refined_claims(&self, kg: &KnowledgeGraph, query: &Query) -> Vec<SlotClaim> {
        let domain = if kg.source_count() > 0 {
            kg.resolve(kg.source(SourceId(0)).domain).to_string()
        } else {
            String::new()
        };
        let Some(entity) = kg.find_entity(&query.entity, &domain) else {
            return Vec::new();
        };
        let asked: std::collections::HashSet<String> =
            query.attribute.split('_').map(str::to_string).collect();
        let exact = kg.find_relation(&query.attribute);
        kg.outgoing(entity)
            .iter()
            .filter_map(|&tid| {
                let t = kg.triple(tid);
                if Some(t.predicate) == exact {
                    return None; // the base retrieval already has these
                }
                let name = kg.relation_name(t.predicate);
                let shares = name.split('_').any(|tok| asked.contains(tok));
                if !shares {
                    return None;
                }
                let value = match &t.object {
                    Object::Entity(e) => Value::Str(kg.entity_name(*e).to_string()),
                    Object::Literal(v) => v.clone(),
                };
                Some(SlotClaim {
                    triple: tid,
                    value,
                    source: t.source,
                })
            })
            .collect()
    }
}

impl FusionMethod for RqRag {
    fn name(&self) -> &'static str {
        "RQ-RAG"
    }

    fn answer(&mut self, kg: &KnowledgeGraph, query: &Query) -> MethodAnswer {
        // Query-refinement LLM pass.
        self.llm.reason(140, 72);
        let claims = slot_claims(kg, query);
        let refined = self.refined_claims(kg, query);
        if claims.is_empty() && refined.is_empty() {
            let generated = self.llm.generate_answer(
                &format!("rqrag:{}", query.key()),
                Vec::new(),
                &[],
                &ContextProfile::clean(0),
                48,
            );
            return MethodAnswer {
                values: generated.values,
                hallucinated: generated.hallucinated,
            };
        }
        // Refined evidence helps coverage; sibling-attribute claims are
        // *near*-relevant (they still dilute the context a little).
        let faithful = if claims.is_empty() {
            majority_values(&refined)
        } else {
            majority_values(&claims)
        };
        let base = if claims.is_empty() { &refined } else { &claims };
        let distractors: Vec<Value> = base
            .iter()
            .filter(|c| {
                !faithful
                    .iter()
                    .any(|f| f.canonical_key() == c.value.canonical_key())
            })
            .map(|c| c.value.clone())
            .collect();
        let profile = ContextProfile {
            conflict_ratio: conflict_ratio(base, &faithful),
            irrelevance_ratio: if claims.is_empty() {
                0.3
            } else {
                refined.len() as f64 / (claims.len() + refined.len()).max(1) as f64 * 0.5
            },
            coverage: 1.0,
            claims: claims.len() + refined.len(),
        };
        let generated = self.llm.generate_answer(
            &format!("rqrag:{}", query.key()),
            faithful,
            &distractors,
            &profile,
            24 * (claims.len() + refined.len()),
        );
        MethodAnswer {
            values: generated.values,
            hallucinated: generated.hallucinated,
        }
    }

    fn simulated_ms(&self) -> f64 {
        self.llm.usage().simulated_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multirag_datasets::books::BooksSpec;
    use multirag_datasets::movies::MoviesSpec;

    #[test]
    fn decent_accuracy_on_sparse_books() {
        let data = BooksSpec::small().generate(42);
        let mut m = RqRag::new(42);
        let mut correct = 0usize;
        for q in &data.queries {
            let a = m.answer(&data.graph, q);
            if a.values
                .iter()
                .any(|v| data.truth.is_correct(&q.entity, &q.attribute, v))
            {
                correct += 1;
            }
        }
        assert!(correct as f64 / data.queries.len() as f64 > 0.35);
    }

    #[test]
    fn refinement_recovers_sibling_attribute_claims() {
        let data = MoviesSpec::small().generate(42);
        let m = RqRag::new(42);
        // 'departure_time' style siblings don't exist in movies;
        // 'director'/'writer' don't share tokens — but 'year' queries
        // can't recover siblings either. Just assert the refinement is
        // well-behaved (no exact-slot duplicates).
        for q in data.queries.iter().take(10) {
            let exact: std::collections::HashSet<_> = slot_claims(&data.graph, q)
                .iter()
                .map(|c| c.triple)
                .collect();
            for r in m.refined_claims(&data.graph, q) {
                assert!(!exact.contains(&r.triple));
            }
        }
    }

    #[test]
    fn is_deterministic() {
        let data = MoviesSpec::small().generate(42);
        let run = || {
            let mut m = RqRag::new(5);
            data.queries
                .iter()
                .map(|q| m.answer(&data.graph, q).values)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
