//! FusionQuery (Zhu et al., VLDB'24) — on-demand fusion queries over
//! multi-source heterogeneous data.
//!
//! Unlike TruthFinder/LTM, fusion runs **at query time over the query's
//! candidate set only**, warm-started by source trust learned
//! incrementally from previous queries. Each query runs a small EM:
//! value veracity from source trust, trust updates from veracity —
//! restricted to the slot's claims, which is what makes its time column
//! competitive.

use crate::common::{slot_claims, FusionMethod, MethodAnswer, SlotClaim};
use multirag_datasets::Query;
use multirag_kg::{FxHashMap, KnowledgeGraph, SourceId};

/// FusionQuery configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusionQueryParams {
    /// Per-query EM iterations.
    pub em_iters: usize,
    /// Veracity threshold for answering.
    pub threshold: f64,
    /// Learning rate of the incremental trust update.
    pub trust_lr: f64,
}

impl Default for FusionQueryParams {
    fn default() -> Self {
        Self {
            em_iters: 5,
            threshold: 0.5,
            trust_lr: 0.1,
        }
    }
}

/// On-demand fusion querying.
#[derive(Debug, Default)]
pub struct FusionQuery {
    params: FusionQueryParams,
    trust: FxHashMap<SourceId, f64>,
}

impl FusionQuery {
    /// Creates a FusionQuery with explicit parameters.
    pub fn with_params(params: FusionQueryParams) -> Self {
        Self {
            params,
            trust: FxHashMap::default(),
        }
    }

    /// Current learned trust of a source.
    pub fn trust(&self, source: SourceId) -> f64 {
        self.trust.get(&source).copied().unwrap_or(0.7)
    }

    fn em(&self, claims: &[SlotClaim]) -> Vec<(String, f64)> {
        // Distinct values and their asserting sources.
        let mut values: Vec<String> = Vec::new();
        let mut asserters: FxHashMap<String, Vec<SourceId>> = FxHashMap::default();
        for c in claims {
            let key = c.value.canonical_key();
            if !values.contains(&key) {
                values.push(key.clone());
            }
            let list = asserters.entry(key).or_default();
            if !list.contains(&c.source) {
                list.push(c.source);
            }
        }
        let slot_sources: Vec<SourceId> = {
            let mut s: Vec<SourceId> = claims.iter().map(|c| c.source).collect();
            s.sort_unstable();
            s.dedup();
            s
        };
        let mut trust: FxHashMap<SourceId, f64> =
            slot_sources.iter().map(|&s| (s, self.trust(s))).collect();
        let mut veracity: FxHashMap<String, f64> = FxHashMap::default();
        for _ in 0..self.params.em_iters {
            // E: veracity of each value from asserting/non-asserting trust.
            for v in &values {
                let yes = &asserters[v];
                let mut num = 0.0;
                let mut den = 0.0;
                for s in &slot_sources {
                    let t = trust[s];
                    if yes.contains(s) {
                        num += t;
                    }
                    den += t;
                }
                veracity.insert(v.clone(), if den > 0.0 { num / den } else { 0.0 });
            }
            // M: trust from the veracity of what each source asserted.
            for s in &slot_sources {
                let asserted: Vec<f64> = values
                    .iter()
                    .filter(|v| asserters[*v].contains(s))
                    .map(|v| veracity[v])
                    .collect();
                if !asserted.is_empty() {
                    let mean = asserted.iter().sum::<f64>() / asserted.len() as f64;
                    trust.insert(*s, 0.5 * trust[s] + 0.5 * mean);
                }
            }
        }
        values
            .into_iter()
            .map(|v| {
                let score = veracity.get(&v).copied().unwrap_or(0.0);
                (v, score)
            })
            .collect()
    }
}

impl FusionMethod for FusionQuery {
    fn name(&self) -> &'static str {
        "FusionQuery"
    }

    fn answer(&mut self, kg: &KnowledgeGraph, query: &Query) -> MethodAnswer {
        let claims = slot_claims(kg, query);
        if claims.is_empty() {
            return MethodAnswer::default();
        }
        let scored = self.em(&claims);
        let best = scored.iter().map(|&(_, s)| s).fold(0.0f64, f64::max);
        // Veracity-thresholded answers (relative threshold handles
        // multi-valued truths whose support splits).
        let cutoff = (self.params.threshold * best).max(1e-9);
        let keep: std::collections::HashSet<&str> = scored
            .iter()
            .filter(|&&(_, s)| s >= cutoff)
            .map(|(v, _)| v.as_str())
            .collect();
        let mut values = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for c in &claims {
            let key = c.value.canonical_key();
            if keep.contains(key.as_str()) && seen.insert(key) {
                values.push(c.value.clone());
            }
        }
        // Incremental trust update toward each source's agreement with
        // the emitted answer (the "on-demand" learning loop).
        let answer_keys: std::collections::HashSet<String> =
            values.iter().map(|v| v.canonical_key()).collect();
        let mut per_source: FxHashMap<SourceId, (usize, usize)> = FxHashMap::default();
        for c in &claims {
            let e = per_source.entry(c.source).or_insert((0, 0));
            e.1 += 1;
            if answer_keys.contains(&c.value.canonical_key()) {
                e.0 += 1;
            }
        }
        for (s, (agree, total)) in per_source {
            let observed = agree as f64 / total as f64;
            let current = self.trust(s);
            self.trust
                .insert(s, current + self.params.trust_lr * (observed - current));
        }
        MethodAnswer {
            values,
            hallucinated: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multirag_datasets::movies::MoviesSpec;

    #[test]
    fn answers_are_accurate_on_dense_data() {
        let data = MoviesSpec::small().generate(42);
        let mut fq = FusionQuery::default();
        let mut correct = 0usize;
        for q in &data.queries {
            let a = fq.answer(&data.graph, q);
            if a.values
                .iter()
                .any(|v| data.truth.is_correct(&q.entity, &q.attribute, v))
            {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / data.queries.len() as f64 > 0.6,
            "accuracy {correct}/{}",
            data.queries.len()
        );
    }

    #[test]
    fn trust_adapts_over_the_query_stream() {
        let data = MoviesSpec::small().generate(42);
        let mut fq = FusionQuery::default();
        for q in &data.queries {
            fq.answer(&data.graph, q);
        }
        let spread = data
            .sources
            .iter()
            .map(|s| (fq.trust(s.id) - 0.7).abs())
            .fold(0.0f64, f64::max);
        assert!(spread > 0.01, "trust never moved");
    }

    #[test]
    fn multivalued_answers_survive_thresholding() {
        let data = MoviesSpec::small().generate(42);
        let mut fq = FusionQuery::default();
        let multi = data
            .queries
            .iter()
            .filter(|q| q.gold.len() >= 2)
            .take(5)
            .collect::<Vec<_>>();
        if multi.is_empty() {
            return; // seed produced no multi-valued queries at this scale
        }
        let mut any_multi = false;
        for q in multi {
            if fq.answer(&data.graph, q).values.len() >= 2 {
                any_multi = true;
            }
        }
        assert!(any_multi, "FusionQuery should emit multi-valued answers");
    }

    #[test]
    fn empty_slots_abstain() {
        let data = MoviesSpec::small().generate(42);
        let mut fq = FusionQuery::default();
        let bogus = Query {
            id: 0,
            text: "?".into(),
            entity: "none".into(),
            attribute: "year".into(),
            gold: vec![],
        };
        assert!(fq.answer(&data.graph, &bogus).values.is_empty());
    }

    #[test]
    fn em_is_deterministic() {
        let data = MoviesSpec::small().generate(42);
        let run = || {
            let mut fq = FusionQuery::default();
            data.queries
                .iter()
                .map(|q| fq.answer(&data.graph, q).values)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
