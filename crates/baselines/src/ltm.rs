//! LTM — the Latent Truth Model (Zhao, Rubinstein, Gemmell & Han,
//! VLDB'12), a Bayesian probabilistic data-fusion method.
//!
//! Each claim's truth is a latent Bernoulli; each source has a
//! sensitivity (recall over true claims) and specificity (1 − false
//! positive rate over false claims), both Beta-distributed. We run the
//! collapsed EM variant: E-step computes truth posteriors from current
//! source quality; M-step re-estimates sensitivity / specificity from
//! the posteriors. Like TruthFinder, fusion is global.

use crate::common::{slot_claims, FusionMethod, MethodAnswer};
use multirag_datasets::Query;
use multirag_kg::{FxHashMap, KnowledgeGraph, Object, SourceId, Value};

/// LTM hyperparameters (Beta priors and prior truth rate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LtmParams {
    /// Beta prior for sensitivity (alpha, beta).
    pub sensitivity_prior: (f64, f64),
    /// Beta prior for specificity (alpha, beta).
    pub specificity_prior: (f64, f64),
    /// Prior probability a claim is true.
    pub truth_prior: f64,
    /// EM iterations.
    pub iterations: usize,
}

impl Default for LtmParams {
    fn default() -> Self {
        Self {
            sensitivity_prior: (8.0, 2.0),
            specificity_prior: (4.0, 2.0),
            truth_prior: 0.5,
            iterations: 12,
        }
    }
}

type FactKey = (u32, u32, String);

/// The Latent Truth Model.
#[derive(Debug, Default)]
pub struct Ltm {
    params: LtmParams,
    posterior: FxHashMap<FactKey, f64>,
    sensitivity: FxHashMap<SourceId, f64>,
    specificity: FxHashMap<SourceId, f64>,
}

impl Ltm {
    /// Creates an LTM with explicit parameters.
    pub fn with_params(params: LtmParams) -> Self {
        Self {
            params,
            ..Self::default()
        }
    }

    /// Posterior truth of a fact (after prepare).
    pub fn truth_posterior(&self, key: &FactKey) -> f64 {
        self.posterior.get(key).copied().unwrap_or(0.0)
    }

    /// Estimated sensitivity of a source.
    pub fn sensitivity(&self, source: SourceId) -> f64 {
        self.sensitivity.get(&source).copied().unwrap_or(0.5)
    }
}

fn claim_value(kg: &KnowledgeGraph, object: &Object) -> Value {
    match object {
        Object::Entity(e) => Value::Str(kg.entity_name(*e).to_string()),
        Object::Literal(v) => v.clone(),
    }
}

impl FusionMethod for Ltm {
    fn name(&self) -> &'static str {
        "LTM"
    }

    fn prepare(&mut self, kg: &KnowledgeGraph) {
        // For each slot, the candidate facts and which sources assert
        // each; a source that covers the slot but asserts a different
        // value is a negative observation for the fact.
        let mut slot_facts: FxHashMap<(u32, u32), Vec<FactKey>> = FxHashMap::default();
        let mut asserters: FxHashMap<FactKey, Vec<SourceId>> = FxHashMap::default();
        let mut slot_sources: FxHashMap<(u32, u32), Vec<SourceId>> = FxHashMap::default();
        for (_, t) in kg.iter_triples() {
            let slot = (t.subject.0, t.predicate.0);
            let key = (
                t.subject.0,
                t.predicate.0,
                claim_value(kg, &t.object).canonical_key(),
            );
            let facts = slot_facts.entry(slot).or_default();
            if !facts.contains(&key) {
                facts.push(key.clone());
            }
            let list = asserters.entry(key).or_default();
            if !list.contains(&t.source) {
                list.push(t.source);
            }
            let covering = slot_sources.entry(slot).or_default();
            if !covering.contains(&t.source) {
                covering.push(t.source);
            }
        }

        let (sa, sb) = self.params.sensitivity_prior;
        let (pa, pb) = self.params.specificity_prior;
        let mut sens: FxHashMap<SourceId, f64> =
            kg.source_ids().map(|s| (s, sa / (sa + sb))).collect();
        let mut spec: FxHashMap<SourceId, f64> =
            kg.source_ids().map(|s| (s, pa / (pa + pb))).collect();
        let mut posterior: FxHashMap<FactKey, f64> = FxHashMap::default();

        for _ in 0..self.params.iterations {
            // E-step: truth posterior per fact.
            for (slot, facts) in &slot_facts {
                let covering = &slot_sources[slot];
                for key in facts {
                    let yes = &asserters[key];
                    let mut log_true = self.params.truth_prior.ln();
                    let mut log_false = (1.0 - self.params.truth_prior).ln();
                    for s in covering {
                        let asserted = yes.contains(s);
                        let se = sens[s].clamp(0.01, 0.99);
                        let sp = spec[s].clamp(0.01, 0.99);
                        if asserted {
                            log_true += se.ln();
                            log_false += (1.0 - sp).ln();
                        } else {
                            log_true += (1.0 - se).ln();
                            log_false += sp.ln();
                        }
                    }
                    let m = log_true.max(log_false);
                    let p = (log_true - m).exp() / ((log_true - m).exp() + (log_false - m).exp());
                    posterior.insert(key.clone(), p);
                }
            }
            // M-step: source quality from posteriors.
            let mut tp: FxHashMap<SourceId, f64> = FxHashMap::default();
            let mut fn_: FxHashMap<SourceId, f64> = FxHashMap::default();
            let mut fp: FxHashMap<SourceId, f64> = FxHashMap::default();
            let mut tn: FxHashMap<SourceId, f64> = FxHashMap::default();
            for (slot, facts) in &slot_facts {
                let covering = &slot_sources[slot];
                for key in facts {
                    let p = posterior[key];
                    let yes = &asserters[key];
                    for s in covering {
                        if yes.contains(s) {
                            *tp.entry(*s).or_insert(0.0) += p;
                            *fp.entry(*s).or_insert(0.0) += 1.0 - p;
                        } else {
                            *fn_.entry(*s).or_insert(0.0) += p;
                            *tn.entry(*s).or_insert(0.0) += 1.0 - p;
                        }
                    }
                }
            }
            for s in kg.source_ids() {
                let t_pos = tp.get(&s).copied().unwrap_or(0.0);
                let f_neg = fn_.get(&s).copied().unwrap_or(0.0);
                let f_pos = fp.get(&s).copied().unwrap_or(0.0);
                let t_neg = tn.get(&s).copied().unwrap_or(0.0);
                sens.insert(s, (t_pos + sa) / (t_pos + f_neg + sa + sb));
                spec.insert(s, (t_neg + pa) / (t_neg + f_pos + pa + pb));
            }
        }
        self.posterior = posterior;
        self.sensitivity = sens;
        self.specificity = spec;
    }

    fn answer(&mut self, kg: &KnowledgeGraph, query: &Query) -> MethodAnswer {
        let claims = slot_claims(kg, query);
        if claims.is_empty() {
            return MethodAnswer::default();
        }
        let domain = kg.resolve(kg.source(SourceId(0)).domain).to_string();
        let entity = kg.find_entity(&query.entity, &domain).expect("has claims");
        let relation = kg.find_relation(&query.attribute).expect("has claims");
        let mut out: Vec<(Value, f64)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for c in &claims {
            let key = (entity.0, relation.0, c.value.canonical_key());
            if !seen.insert(key.2.clone()) {
                continue;
            }
            out.push((c.value.clone(), self.truth_posterior(&key)));
        }
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.canonical_key().cmp(&b.0.canonical_key()))
        });
        // Truths are claims whose posterior clears 0.5 (or the single
        // best when nothing does).
        let values: Vec<Value> = if out.iter().any(|&(_, p)| p > 0.5) {
            out.into_iter()
                .filter(|&(_, p)| p > 0.5)
                .map(|(v, _)| v)
                .collect()
        } else {
            out.into_iter().take(1).map(|(v, _)| v).collect()
        };
        MethodAnswer {
            values,
            hallucinated: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multirag_datasets::movies::MoviesSpec;

    #[test]
    fn posteriors_are_probabilities() {
        let data = MoviesSpec::small().generate(42);
        let mut ltm = Ltm::default();
        ltm.prepare(&data.graph);
        for p in ltm.posterior.values() {
            assert!((0.0..=1.0).contains(p));
        }
    }

    #[test]
    fn majority_supported_facts_get_high_posterior() {
        let data = MoviesSpec::small().generate(42);
        let mut ltm = Ltm::default();
        ltm.prepare(&data.graph);
        // Gold facts asserted by most sources should mostly clear 0.5.
        let mut cleared = 0usize;
        let mut total = 0usize;
        for q in &data.queries {
            let claims = slot_claims(&data.graph, q);
            if claims.len() < 4 {
                continue;
            }
            let domain = "movies";
            let e = data.graph.find_entity(&q.entity, domain).unwrap();
            let r = data.graph.find_relation(&q.attribute).unwrap();
            for g in &q.gold {
                total += 1;
                let key = (e.0, r.0, g.canonical_key());
                if ltm.truth_posterior(&key) > 0.5 {
                    cleared += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            cleared as f64 / total as f64 > 0.5,
            "cleared {cleared}/{total}"
        );
    }

    #[test]
    fn reliable_sources_get_higher_sensitivity() {
        let data = MoviesSpec::small().generate(42);
        let mut ltm = Ltm::default();
        ltm.prepare(&data.graph);
        let mut infos = data.sources.clone();
        infos.sort_by(|a, b| a.reliability.partial_cmp(&b.reliability).unwrap());
        // Compare the mean of the top and bottom thirds (single pairs
        // are noisy under EM).
        let third = infos.len() / 3;
        let low: f64 = infos[..third]
            .iter()
            .map(|s| ltm.sensitivity(s.id))
            .sum::<f64>()
            / third as f64;
        let high: f64 = infos[infos.len() - third..]
            .iter()
            .map(|s| ltm.sensitivity(s.id))
            .sum::<f64>()
            / third as f64;
        assert!(high > low, "high {high} vs low {low}");
    }

    #[test]
    fn answers_are_reasonably_accurate() {
        let data = MoviesSpec::small().generate(42);
        let mut ltm = Ltm::default();
        ltm.prepare(&data.graph);
        let mut correct = 0usize;
        for q in &data.queries {
            let a = ltm.answer(&data.graph, q);
            if a.values
                .iter()
                .any(|v| data.truth.is_correct(&q.entity, &q.attribute, v))
            {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / data.queries.len() as f64 > 0.6,
            "accuracy {correct}/{}",
            data.queries.len()
        );
    }

    #[test]
    fn empty_slots_yield_empty_answers() {
        let data = MoviesSpec::small().generate(42);
        let mut ltm = Ltm::default();
        ltm.prepare(&data.graph);
        let bogus = Query {
            id: 0,
            text: "?".into(),
            entity: "none".into(),
            attribute: "year".into(),
            gold: vec![],
        };
        assert!(ltm.answer(&data.graph, &bogus).values.is_empty());
    }
}
