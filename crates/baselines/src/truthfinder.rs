//! TruthFinder (Yin, Han & Yu, KDD'07) — the classic iterative data
//! fusion method.
//!
//! Alternates between (a) claim confidence from the trust of the
//! sources asserting it, `s(f) = 1 − Π (1 − t(w))` computed in
//! log-space with a dampening factor γ, and (b) source trust as the
//! mean confidence of the source's claims — until the trust vector
//! stabilizes. Fusion is **global** (every slot in the dataset), which
//! is exactly why its time column in Table II dwarfs query-local
//! methods.

use crate::common::{slot_claims, FusionMethod, MethodAnswer};
use multirag_datasets::Query;
use multirag_kg::{FxHashMap, KnowledgeGraph, Object, SourceId, Value};

/// TruthFinder configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruthFinderParams {
    /// Dampening factor γ on the log-trust sum (mitigates source
    /// dependence).
    pub gamma: f64,
    /// Initial source trust.
    pub initial_trust: f64,
    /// Convergence tolerance on the trust vector (cosine distance).
    pub tolerance: f64,
    /// Maximum iterations.
    pub max_iters: usize,
}

impl Default for TruthFinderParams {
    fn default() -> Self {
        Self {
            gamma: 0.3,
            initial_trust: 0.8,
            tolerance: 1e-4,
            max_iters: 20,
        }
    }
}

/// TruthFinder fusion.
#[derive(Debug, Default)]
pub struct TruthFinder {
    params: TruthFinderParams,
    /// Converged claim confidence per (slot, value-key).
    confidence: FxHashMap<(u32, u32, String), f64>,
    /// Converged source trust.
    trust: FxHashMap<SourceId, f64>,
    iterations_run: usize,
}

impl TruthFinder {
    /// Creates a TruthFinder with explicit parameters.
    pub fn with_params(params: TruthFinderParams) -> Self {
        Self {
            params,
            ..Self::default()
        }
    }

    /// Converged trust of a source (after [`FusionMethod::prepare`]).
    pub fn source_trust(&self, source: SourceId) -> f64 {
        self.trust
            .get(&source)
            .copied()
            .unwrap_or(self.params.initial_trust)
    }

    /// Iterations to convergence.
    pub fn iterations(&self) -> usize {
        self.iterations_run
    }
}

fn claim_value(kg: &KnowledgeGraph, object: &Object) -> Value {
    match object {
        Object::Entity(e) => Value::Str(kg.entity_name(*e).to_string()),
        Object::Literal(v) => v.clone(),
    }
}

impl FusionMethod for TruthFinder {
    fn name(&self) -> &'static str {
        "TruthFinder"
    }

    fn prepare(&mut self, kg: &KnowledgeGraph) {
        // Facts: (slot, value-key) → asserting sources (deduped).
        let mut facts: FxHashMap<(u32, u32, String), Vec<SourceId>> = FxHashMap::default();
        let mut by_source: FxHashMap<SourceId, Vec<(u32, u32, String)>> = FxHashMap::default();
        for (_, t) in kg.iter_triples() {
            let key = (
                t.subject.0,
                t.predicate.0,
                claim_value(kg, &t.object).canonical_key(),
            );
            let sources = facts.entry(key.clone()).or_default();
            if !sources.contains(&t.source) {
                sources.push(t.source);
                by_source.entry(t.source).or_default().push(key.clone());
            }
        }
        let mut trust: FxHashMap<SourceId, f64> = kg
            .source_ids()
            .map(|s| (s, self.params.initial_trust))
            .collect();
        let mut confidence: FxHashMap<(u32, u32, String), f64> = FxHashMap::default();
        self.iterations_run = 0;
        for _ in 0..self.params.max_iters {
            self.iterations_run += 1;
            // Claim confidence from source trust (log-space sum, damped).
            for (key, sources) in &facts {
                let mut sigma = 0.0;
                for s in sources {
                    let t = trust[s].clamp(1e-6, 1.0 - 1e-6);
                    sigma += -(1.0 - t).ln();
                }
                let conf = 1.0 - (-self.params.gamma * sigma).exp();
                confidence.insert(key.clone(), conf);
            }
            // Source trust from claim confidence.
            let mut delta = 0.0;
            for (source, keys) in &by_source {
                let mean = keys.iter().map(|k| confidence[k]).sum::<f64>() / keys.len() as f64;
                let old = trust[source];
                delta += (mean - old).abs();
                trust.insert(*source, mean);
            }
            if delta / (trust.len().max(1) as f64) < self.params.tolerance {
                break;
            }
        }
        self.trust = trust;
        self.confidence = confidence;
    }

    fn answer(&mut self, kg: &KnowledgeGraph, query: &Query) -> MethodAnswer {
        let claims = slot_claims(kg, query);
        if claims.is_empty() {
            return MethodAnswer::default();
        }
        let domain = kg.resolve(kg.source(SourceId(0)).domain).to_string();
        let entity = kg.find_entity(&query.entity, &domain).expect("has claims");
        let relation = kg.find_relation(&query.attribute).expect("has claims");
        // Score distinct values by converged confidence; keep those
        // within 70% of the best (multi-valued support).
        let mut scored: Vec<(Value, f64)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for c in &claims {
            let key = c.value.canonical_key();
            if !seen.insert(key.clone()) {
                continue;
            }
            let conf = self
                .confidence
                .get(&(entity.0, relation.0, key))
                .copied()
                .unwrap_or(0.0);
            scored.push((c.value.clone(), conf));
        }
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.canonical_key().cmp(&b.0.canonical_key()))
        });
        let best = scored.first().map(|&(_, c)| c).unwrap_or(0.0);
        MethodAnswer {
            values: scored
                .into_iter()
                .filter(|&(_, c)| c >= best * 0.7)
                .map(|(v, _)| v)
                .collect(),
            hallucinated: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multirag_datasets::movies::MoviesSpec;
    use multirag_datasets::spec::MultiSourceDataset;

    fn prepared(data: &MultiSourceDataset) -> TruthFinder {
        let mut tf = TruthFinder::default();
        tf.prepare(&data.graph);
        tf
    }

    #[test]
    fn converges_within_iteration_budget() {
        let data = MoviesSpec::small().generate(42);
        let tf = prepared(&data);
        assert!(tf.iterations() >= 2);
        assert!(tf.iterations() <= TruthFinderParams::default().max_iters);
    }

    #[test]
    fn reliable_sources_earn_higher_trust() {
        let data = MoviesSpec::small().generate(42);
        let tf = prepared(&data);
        // Compare the most and least reliable generated sources.
        let mut infos = data.sources.clone();
        infos.sort_by(|a, b| a.reliability.partial_cmp(&b.reliability).unwrap());
        let worst = infos.first().unwrap();
        let best = infos.last().unwrap();
        assert!(
            tf.source_trust(best.id) > tf.source_trust(worst.id),
            "trust({}) = {} should beat trust({}) = {}",
            best.name,
            tf.source_trust(best.id),
            worst.name,
            tf.source_trust(worst.id)
        );
    }

    #[test]
    fn answers_beat_plain_counting_on_accuracy() {
        let data = MoviesSpec::small().generate(42);
        let mut tf = prepared(&data);
        let mut correct = 0usize;
        for q in &data.queries {
            let a = tf.answer(&data.graph, q);
            if a.values
                .iter()
                .any(|v| data.truth.is_correct(&q.entity, &q.attribute, v))
            {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / data.queries.len() as f64 > 0.6,
            "accuracy {correct}/{}",
            data.queries.len()
        );
    }

    #[test]
    fn empty_slot_answers_are_empty() {
        let data = MoviesSpec::small().generate(42);
        let mut tf = prepared(&data);
        let bogus = Query {
            id: 0,
            text: "?".into(),
            entity: "none".into(),
            attribute: "year".into(),
            gold: vec![],
        };
        assert!(tf.answer(&data.graph, &bogus).values.is_empty());
    }

    #[test]
    fn prepare_is_deterministic() {
        let data = MoviesSpec::small().generate(42);
        let a = prepared(&data);
        let b = prepared(&data);
        for s in &data.sources {
            assert_eq!(a.source_trust(s.id), b.source_trust(s.id));
        }
    }
}
