//! MDQA — knowledge-graph prompting for multi-document question
//! answering (Wang et al., AAAI'24).
//!
//! Builds a local graph over the retrieved documents, deduplicates
//! repeated assertions (taming the *redundancy* problem the paper's
//! intro lists), and prompts the LLM with the compacted subgraph. It
//! handles duplication well but has no authority/consistency model, so
//! genuine conflicts survive into the prompt.

use crate::common::{
    conflict_ratio, majority_values, neighbor_noise, slot_claims, FusionMethod, MethodAnswer,
    SlotClaim,
};
use multirag_datasets::Query;
use multirag_kg::{KnowledgeGraph, Value};
use multirag_llmsim::{ContextProfile, MockLlm, Schema};

/// MDQA baseline.
pub struct Mdqa {
    llm: MockLlm,
}

impl Mdqa {
    /// Creates an MDQA baseline.
    pub fn new(seed: u64) -> Self {
        Self {
            llm: MockLlm::new(Schema::new(), seed),
        }
    }
}

impl FusionMethod for Mdqa {
    fn name(&self) -> &'static str {
        "MDQA"
    }

    fn answer(&mut self, kg: &KnowledgeGraph, query: &Query) -> MethodAnswer {
        let raw = slot_claims(kg, query);
        // Graph construction + prompting cost.
        self.llm.reason(160 + 16 * raw.len(), 64);
        if raw.is_empty() {
            let generated = self.llm.generate_answer(
                &format!("mdqa:{}", query.key()),
                Vec::new(),
                &[],
                &ContextProfile::clean(0),
                48,
            );
            return MethodAnswer {
                values: generated.values,
                hallucinated: generated.hallucinated,
            };
        }
        // Dedup: one claim per (source, value) — kills redundancy, keeps
        // conflicts.
        let mut deduped: Vec<SlotClaim> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for c in &raw {
            if seen.insert((c.source, c.value.canonical_key())) {
                deduped.push(c.clone());
            }
        }
        // A little neighbour context rides along (graph prompting pulls
        // the 1-hop neighbourhood).
        let noise = neighbor_noise(kg, query, 2);
        let faithful = majority_values(&deduped);
        let distractors: Vec<Value> = deduped
            .iter()
            .filter(|c| {
                !faithful
                    .iter()
                    .any(|f| f.canonical_key() == c.value.canonical_key())
            })
            .map(|c| c.value.clone())
            .collect();
        let profile = ContextProfile {
            conflict_ratio: conflict_ratio(&deduped, &faithful),
            irrelevance_ratio: noise.len() as f64 / (deduped.len() + noise.len()) as f64,
            coverage: 1.0,
            claims: deduped.len() + noise.len(),
        };
        let generated = self.llm.generate_answer(
            &format!("mdqa:{}", query.key()),
            faithful,
            &distractors,
            &profile,
            20 * (deduped.len() + noise.len()),
        );
        MethodAnswer {
            values: generated.values,
            hallucinated: generated.hallucinated,
        }
    }

    fn simulated_ms(&self) -> f64 {
        self.llm.usage().simulated_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multirag_datasets::movies::MoviesSpec;

    #[test]
    fn reasonable_accuracy_on_clean_data() {
        let data = MoviesSpec::small().generate(42);
        let mut m = Mdqa::new(42);
        let mut correct = 0usize;
        for q in &data.queries {
            let a = m.answer(&data.graph, q);
            if a.values
                .iter()
                .any(|v| data.truth.is_correct(&q.entity, &q.attribute, v))
            {
                correct += 1;
            }
        }
        assert!(correct as f64 / data.queries.len() as f64 > 0.4);
    }

    #[test]
    fn dedup_shrinks_redundant_contexts() {
        // Duplicated identical claims from one source must collapse.
        let mut kg = KnowledgeGraph::new();
        let s = kg.add_source("s", "json", "d");
        let e = kg.add_entity("X", "d");
        let r = kg.add_relation("attr");
        for chunk in 0..5 {
            kg.add_triple(e, r, Value::from("same"), s, chunk);
        }
        let q = Query {
            id: 0,
            text: "?".into(),
            entity: "X".into(),
            attribute: "attr".into(),
            gold: vec![Value::from("same")],
        };
        let mut m = Mdqa::new(1);
        let a = m.answer(&kg, &q);
        // Redundant-but-consistent context → almost always the right,
        // single answer.
        if !a.hallucinated {
            assert_eq!(a.values, vec![Value::from("same")]);
        }
    }

    #[test]
    fn meters_time() {
        let data = MoviesSpec::small().generate(42);
        let mut m = Mdqa::new(42);
        m.answer(&data.graph, &data.queries[0]);
        assert!(m.simulated_ms() > 0.0);
    }
}
