//! IRCoT (Trivedi et al.): interleaving retrieval with chain-of-thought
//! reasoning.
//!
//! Each reasoning step triggers another retrieval conditioned on the
//! interim conclusion. We model two rounds: the first retrieves the raw
//! slot; the second re-retrieves restricted to sources that agree with
//! the interim majority — iterative retrieval *narrows* the context
//! (less irrelevance, somewhat less conflict) but has no principled
//! conflict or authority model, and its repeated LLM calls cost time.

use crate::common::{conflict_ratio, majority_values, slot_claims, FusionMethod, MethodAnswer};
use multirag_datasets::Query;
use multirag_kg::{KnowledgeGraph, Value};
use multirag_llmsim::{ContextProfile, MockLlm, Schema};

/// IRCoT baseline.
pub struct IrCot {
    llm: MockLlm,
    /// Retrieval/reasoning rounds.
    pub rounds: usize,
}

impl IrCot {
    /// Creates an IRCoT baseline.
    pub fn new(seed: u64) -> Self {
        Self {
            llm: MockLlm::new(Schema::new(), seed),
            rounds: 2,
        }
    }
}

impl FusionMethod for IrCot {
    fn name(&self) -> &'static str {
        "IRCoT"
    }

    fn answer(&mut self, kg: &KnowledgeGraph, query: &Query) -> MethodAnswer {
        let mut claims = slot_claims(kg, query);
        if claims.is_empty() {
            let generated = self.llm.generate_answer(
                &format!("ircot:{}", query.key()),
                Vec::new(),
                &[],
                &ContextProfile::clean(0),
                48,
            );
            return MethodAnswer {
                values: generated.values,
                hallucinated: generated.hallucinated,
            };
        }
        // Interleaved rounds: each round reasons (tokens!) and narrows
        // the claim set toward the interim majority's sources.
        for round in 1..self.rounds {
            self.llm.reason(128 + 24 * claims.len(), 80);
            let interim = majority_values(&claims);
            let agreeing: std::collections::HashSet<_> = claims
                .iter()
                .filter(|c| {
                    interim
                        .iter()
                        .any(|v| v.canonical_key() == c.value.canonical_key())
                })
                .map(|c| c.source)
                .collect();
            let narrowed: Vec<_> = claims
                .iter()
                .filter(|c| agreeing.contains(&c.source))
                .cloned()
                .collect();
            // Keep at least the interim supporters.
            if !narrowed.is_empty() {
                claims = narrowed;
            }
            let _ = round;
        }
        let faithful = majority_values(&claims);
        let distractors: Vec<Value> = claims
            .iter()
            .filter(|c| {
                !faithful
                    .iter()
                    .any(|f| f.canonical_key() == c.value.canonical_key())
            })
            .map(|c| c.value.clone())
            .collect();
        let profile = ContextProfile {
            conflict_ratio: conflict_ratio(&claims, &faithful),
            irrelevance_ratio: 0.05,
            coverage: 1.0,
            claims: claims.len(),
        };
        let generated = self.llm.generate_answer(
            &format!("ircot:{}", query.key()),
            faithful,
            &distractors,
            &profile,
            24 * claims.len(),
        );
        MethodAnswer {
            values: generated.values,
            hallucinated: generated.hallucinated,
        }
    }

    fn simulated_ms(&self) -> f64 {
        self.llm.usage().simulated_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard_rag::StandardRag;
    use multirag_datasets::movies::MoviesSpec;

    fn accuracy(
        data: &multirag_datasets::spec::MultiSourceDataset,
        f: &mut dyn FusionMethod,
    ) -> f64 {
        let mut correct = 0usize;
        for q in &data.queries {
            let a = f.answer(&data.graph, q);
            if a.values
                .iter()
                .any(|v| data.truth.is_correct(&q.entity, &q.attribute, v))
            {
                correct += 1;
            }
        }
        correct as f64 / data.queries.len() as f64
    }

    #[test]
    fn narrowing_does_not_hurt_vs_standard_rag() {
        // Aggregate across seeds: IRCoT's narrowed context hallucinates
        // less, so it should at least match standard RAG.
        let mut ircot_total = 0.0;
        let mut srag_total = 0.0;
        for seed in [1u64, 2, 3] {
            let data = MoviesSpec::small().generate(seed);
            ircot_total += accuracy(&data, &mut IrCot::new(seed));
            srag_total += accuracy(&data, &mut StandardRag::new(seed));
        }
        assert!(
            ircot_total >= srag_total - 0.05,
            "IRCoT {ircot_total} vs StandardRAG {srag_total}"
        );
    }

    #[test]
    fn uses_more_llm_time_than_standard_rag() {
        let data = MoviesSpec::small().generate(42);
        let mut ircot = IrCot::new(42);
        let mut srag = StandardRag::new(42);
        for q in data.queries.iter().take(5) {
            ircot.answer(&data.graph, q);
            srag.answer(&data.graph, q);
        }
        assert!(ircot.simulated_ms() > srag.simulated_ms());
    }

    #[test]
    fn deterministic_across_runs() {
        let data = MoviesSpec::small().generate(42);
        let run = || {
            let mut m = IrCot::new(9);
            data.queries
                .iter()
                .map(|q| m.answer(&data.graph, q).values)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
