//! Shared infrastructure for the baseline methods.

use multirag_datasets::Query;
use multirag_kg::{FxHashMap, KnowledgeGraph, Object, SourceId, TripleId, Value};

/// One claim about a query slot.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotClaim {
    /// Backing triple.
    pub triple: TripleId,
    /// Asserted value.
    pub value: Value,
    /// Asserting source.
    pub source: SourceId,
}

/// Collects the claims filling a query's `(entity, attribute)` slot.
pub fn slot_claims(kg: &KnowledgeGraph, query: &Query) -> Vec<SlotClaim> {
    let domain = if kg.source_count() > 0 {
        kg.resolve(kg.source(SourceId(0)).domain).to_string()
    } else {
        String::new()
    };
    let (Some(entity), Some(relation)) = (
        kg.find_entity(&query.entity, &domain),
        kg.find_relation(&query.attribute),
    ) else {
        return Vec::new();
    };
    kg.slot_triples(entity, relation)
        .iter()
        .map(|&tid| {
            let t = kg.triple(tid);
            let value = match &t.object {
                Object::Entity(e) => Value::Str(kg.entity_name(*e).to_string()),
                Object::Literal(v) => v.clone(),
            };
            SlotClaim {
                triple: tid,
                value,
                source: t.source,
            }
        })
        .collect()
}

/// Claims about the entity under *other* attributes — retrieval noise
/// for methods that stuff context.
pub fn neighbor_noise(kg: &KnowledgeGraph, query: &Query, limit: usize) -> Vec<SlotClaim> {
    let domain = if kg.source_count() > 0 {
        kg.resolve(kg.source(SourceId(0)).domain).to_string()
    } else {
        String::new()
    };
    let Some(entity) = kg.find_entity(&query.entity, &domain) else {
        return Vec::new();
    };
    let relation = kg.find_relation(&query.attribute);
    kg.outgoing(entity)
        .iter()
        .filter(|&&tid| Some(kg.triple(tid).predicate) != relation)
        .take(limit)
        .map(|&tid| {
            let t = kg.triple(tid);
            let value = match &t.object {
                Object::Entity(e) => Value::Str(kg.entity_name(*e).to_string()),
                Object::Literal(v) => v.clone(),
            };
            SlotClaim {
                triple: tid,
                value,
                source: t.source,
            }
        })
        .collect()
}

/// Support count per canonical value.
pub fn support_counts(claims: &[SlotClaim]) -> Vec<(Value, usize)> {
    let mut counts: FxHashMap<String, (Value, usize)> = FxHashMap::default();
    for c in claims {
        let entry = counts
            .entry(c.value.canonical_key())
            .or_insert_with(|| (c.value.clone(), 0));
        entry.1 += 1;
    }
    let mut out: Vec<(Value, usize)> = counts.into_values().collect();
    out.sort_by(|a, b| {
        b.1.cmp(&a.1)
            .then_with(|| a.0.canonical_key().cmp(&b.0.canonical_key()))
    });
    out
}

/// The multi-valued majority read shared by several baselines: values
/// with *strictly* more than half the modal support survive (gold
/// values of a multi-valued truth split the correct sources' assertions
/// evenly, so they all tie at the max). When every value is asserted
/// exactly once there is no consensus at all — only the tie-break
/// winner is returned.
pub fn majority_values(claims: &[SlotClaim]) -> Vec<Value> {
    let counts = support_counts(claims);
    let max = counts.first().map(|&(_, c)| c).unwrap_or(0);
    if max <= 1 {
        return counts.into_iter().take(1).map(|(v, _)| v).collect();
    }
    counts
        .into_iter()
        .filter(|&(_, c)| c * 2 > max)
        .map(|(v, _)| v)
        .collect()
}

/// The raw disagreement of a claim set: `1 − support(answer set)/n`.
pub fn conflict_ratio(claims: &[SlotClaim], answers: &[Value]) -> f64 {
    if claims.is_empty() {
        return 1.0;
    }
    let keys: std::collections::HashSet<String> =
        answers.iter().map(Value::canonical_key).collect();
    let supporting = claims
        .iter()
        .filter(|c| keys.contains(&c.value.canonical_key()))
        .count();
    1.0 - supporting as f64 / claims.len() as f64
}

/// A method's verdict for one query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MethodAnswer {
    /// Emitted values.
    pub values: Vec<Value>,
    /// Whether the simulated generation hallucinated (harness-only
    /// signal).
    pub hallucinated: bool,
}

/// A multi-source fusion / QA method evaluated on Table II.
pub trait FusionMethod {
    /// Method display name (the Table II column header).
    fn name(&self) -> &'static str;

    /// One-time preparation over the full graph (global fusion methods
    /// do their iterative work here; the harness times it).
    fn prepare(&mut self, _kg: &KnowledgeGraph) {}

    /// Answers one query.
    fn answer(&mut self, kg: &KnowledgeGraph, query: &Query) -> MethodAnswer;

    /// Simulated LLM milliseconds consumed so far (0 for LLM-free
    /// methods).
    fn simulated_ms(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multirag_datasets::movies::MoviesSpec;

    #[test]
    fn slot_claims_finds_all_assertions() {
        let data = MoviesSpec::small().generate(42);
        let q = &data.queries[0];
        let claims = slot_claims(&data.graph, q);
        assert!(!claims.is_empty());
        // Cross-check against the graph index.
        let e = data.graph.find_entity(&q.entity, "movies").unwrap();
        let r = data.graph.find_relation(&q.attribute).unwrap();
        assert_eq!(claims.len(), data.graph.slot_triples(e, r).len());
    }

    #[test]
    fn unknown_queries_give_no_claims() {
        let data = MoviesSpec::small().generate(42);
        let bogus = Query {
            id: 0,
            text: "?".into(),
            entity: "missing".into(),
            attribute: "year".into(),
            gold: vec![],
        };
        assert!(slot_claims(&data.graph, &bogus).is_empty());
    }

    #[test]
    fn neighbor_noise_excludes_the_slot() {
        let data = MoviesSpec::small().generate(42);
        let q = &data.queries[0];
        let noise = neighbor_noise(&data.graph, q, 10);
        let r = data.graph.find_relation(&q.attribute).unwrap();
        assert!(noise
            .iter()
            .all(|c| data.graph.triple(c.triple).predicate != r));
    }

    fn claim(v: Value, s: u32) -> SlotClaim {
        SlotClaim {
            triple: TripleId(0),
            value: v,
            source: SourceId(s),
        }
    }

    #[test]
    fn majority_values_handles_multivalued_truths() {
        let claims = vec![
            claim(Value::from("lana"), 0),
            claim(Value::from("lilly"), 0),
            claim(Value::from("lana"), 1),
            claim(Value::from("lilly"), 1),
            claim(Value::from("cameron"), 2),
        ];
        let values = majority_values(&claims);
        assert_eq!(values.len(), 2);
        assert!(values.contains(&Value::from("lana")));
        assert!(values.contains(&Value::from("lilly")));
    }

    #[test]
    fn conflict_ratio_bounds() {
        let claims = vec![
            claim(Value::from("a"), 0),
            claim(Value::from("a"), 1),
            claim(Value::from("b"), 2),
        ];
        let r = conflict_ratio(&claims, &[Value::from("a")]);
        assert!((r - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(conflict_ratio(&[], &[Value::from("a")]), 1.0);
        assert_eq!(conflict_ratio(&claims, &[]), 1.0);
    }
}
