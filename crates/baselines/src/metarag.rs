//! MetaRAG (Zhou et al., WWW'24): metacognitive retrieval-augmented
//! generation.
//!
//! After a first-pass answer, the model *monitors* its own evidence: if
//! the context disagreement is high it triggers a self-correction round
//! that discards minority-support claims before regenerating. One
//! metacognitive loop catches many conflict-driven hallucinations —
//! the strongest baseline in Table IV — but without source authority or
//! history it cannot tell *which* side of a balanced conflict to trust.

use crate::common::{conflict_ratio, majority_values, slot_claims, FusionMethod, MethodAnswer};
use multirag_datasets::Query;
use multirag_kg::{KnowledgeGraph, Value};
use multirag_llmsim::{ContextProfile, MockLlm, Schema};

/// MetaRAG configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetaRagParams {
    /// Conflict level above which the self-correction loop triggers.
    pub monitor_threshold: f64,
}

impl Default for MetaRagParams {
    fn default() -> Self {
        Self {
            monitor_threshold: 0.25,
        }
    }
}

/// MetaRAG baseline.
pub struct MetaRag {
    params: MetaRagParams,
    llm: MockLlm,
}

impl MetaRag {
    /// Creates a MetaRAG baseline.
    pub fn new(seed: u64) -> Self {
        Self {
            params: MetaRagParams::default(),
            llm: MockLlm::new(Schema::new(), seed),
        }
    }
}

impl FusionMethod for MetaRag {
    fn name(&self) -> &'static str {
        "MetaRAG"
    }

    fn answer(&mut self, kg: &KnowledgeGraph, query: &Query) -> MethodAnswer {
        let mut claims = slot_claims(kg, query);
        if claims.is_empty() {
            let generated = self.llm.generate_answer(
                &format!("meta:{}", query.key()),
                Vec::new(),
                &[],
                &ContextProfile::clean(0),
                48,
            );
            return MethodAnswer {
                values: generated.values,
                hallucinated: generated.hallucinated,
            };
        }
        let mut faithful = majority_values(&claims);
        let mut conflict = conflict_ratio(&claims, &faithful);
        // Metacognitive monitoring: evaluate, and if the evidence is
        // contentious, run one correction round that prunes
        // minority-support claims.
        self.llm.reason(96 + 16 * claims.len(), 48);
        if conflict > self.params.monitor_threshold {
            self.llm.reason(128 + 16 * claims.len(), 64);
            let keys: std::collections::HashSet<String> =
                faithful.iter().map(Value::canonical_key).collect();
            let pruned: Vec<_> = claims
                .iter()
                .filter(|c| keys.contains(&c.value.canonical_key()))
                .cloned()
                .collect();
            if !pruned.is_empty() {
                claims = pruned;
                faithful = majority_values(&claims);
                conflict = conflict_ratio(&claims, &faithful);
            }
        }
        let distractors: Vec<Value> = claims
            .iter()
            .filter(|c| {
                !faithful
                    .iter()
                    .any(|f| f.canonical_key() == c.value.canonical_key())
            })
            .map(|c| c.value.clone())
            .collect();
        let profile = ContextProfile {
            conflict_ratio: conflict,
            irrelevance_ratio: 0.05,
            coverage: 1.0,
            claims: claims.len(),
        };
        let generated = self.llm.generate_answer(
            &format!("meta:{}", query.key()),
            faithful,
            &distractors,
            &profile,
            24 * claims.len(),
        );
        MethodAnswer {
            values: generated.values,
            hallucinated: generated.hallucinated,
        }
    }

    fn simulated_ms(&self) -> f64 {
        self.llm.usage().simulated_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard_rag::StandardRag;
    use multirag_datasets::movies::MoviesSpec;

    fn accuracy(
        data: &multirag_datasets::spec::MultiSourceDataset,
        f: &mut dyn FusionMethod,
    ) -> f64 {
        let mut correct = 0usize;
        for q in &data.queries {
            let a = f.answer(&data.graph, q);
            if a.values
                .iter()
                .any(|v| data.truth.is_correct(&q.entity, &q.attribute, v))
            {
                correct += 1;
            }
        }
        correct as f64 / data.queries.len() as f64
    }

    #[test]
    fn beats_standard_rag_on_average() {
        let mut meta_total = 0.0;
        let mut srag_total = 0.0;
        for seed in [1u64, 2, 3, 4] {
            let data = MoviesSpec::small().generate(seed);
            meta_total += accuracy(&data, &mut MetaRag::new(seed));
            srag_total += accuracy(&data, &mut StandardRag::new(seed));
        }
        assert!(
            meta_total >= srag_total,
            "MetaRAG {meta_total} vs StandardRAG {srag_total}"
        );
    }

    #[test]
    fn self_correction_reduces_effective_conflict() {
        // A 4-vs-2 conflicted slot: after pruning, conflict is 0.
        let mut kg = KnowledgeGraph::new();
        let e = kg.add_entity("X", "d");
        let r = kg.add_relation("attr");
        for i in 0..6 {
            let s = kg.add_source(&format!("s{i}"), "json", "d");
            let v = if i < 4 { "right" } else { "wrong" };
            kg.add_triple(e, r, Value::from(v), s, 0);
        }
        let q = Query {
            id: 0,
            text: "?".into(),
            entity: "X".into(),
            attribute: "attr".into(),
            gold: vec![Value::from("right")],
        };
        // Across seeds, MetaRAG should be right almost always.
        let hits = (0..32)
            .filter(|&seed| {
                let mut m = MetaRag::new(seed);
                m.answer(&kg, &q)
                    .values
                    .iter()
                    .any(|v| v == &Value::from("right"))
            })
            .count();
        assert!(
            hits >= 28,
            "metacognition should settle 4-2 splits: {hits}/32"
        );
    }

    #[test]
    fn monitoring_costs_tokens_only_when_triggered() {
        let mut kg = KnowledgeGraph::new();
        let e = kg.add_entity("X", "d");
        let r = kg.add_relation("attr");
        for i in 0..4 {
            let s = kg.add_source(&format!("s{i}"), "json", "d");
            kg.add_triple(e, r, Value::from("same"), s, 0);
        }
        let q = Query {
            id: 0,
            text: "?".into(),
            entity: "X".into(),
            attribute: "attr".into(),
            gold: vec![Value::from("same")],
        };
        let mut clean = MetaRag::new(1);
        clean.answer(&kg, &q);
        let clean_ms = clean.simulated_ms();
        // Now a conflicted slot.
        let mut kg2 = KnowledgeGraph::new();
        let e2 = kg2.add_entity("X", "d");
        let r2 = kg2.add_relation("attr");
        for i in 0..4 {
            let s = kg2.add_source(&format!("s{i}"), "json", "d");
            kg2.add_triple(e2, r2, Value::from(format!("v{i}")), s, 0);
        }
        let mut noisy = MetaRag::new(1);
        noisy.answer(&kg2, &q);
        assert!(noisy.simulated_ms() > clean_ms);
    }
}
