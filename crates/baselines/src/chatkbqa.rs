//! ChatKBQA (Luo et al.): generate-then-retrieve knowledge-base QA
//! with fine-tuned logical forms.
//!
//! The LLM generates a logical form which is executed against the KB.
//! Retrieval is surgical (no irrelevant context at all), but the method
//! trusts whatever the KB edge says: it has **no cross-source conflict
//! model**, so when sources disagree it answers from whichever claims
//! the logical-form execution surfaces — and when masking removes the
//! exact edge the form needs, it has no fuzzy fallback. Both effects
//! drive its steep degradation in the Fig. 5 perturbation sweeps.

use crate::common::{conflict_ratio, slot_claims, support_counts, FusionMethod, MethodAnswer};
use multirag_datasets::Query;
use multirag_kg::{KnowledgeGraph, Value};
use multirag_llmsim::determinism::bernoulli;
use multirag_llmsim::{ContextProfile, MockLlm, Schema};

/// ChatKBQA configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChatKbqaParams {
    /// Probability the generated logical form parses/executes cleanly.
    pub form_success_rate: f64,
}

impl Default for ChatKbqaParams {
    fn default() -> Self {
        Self {
            form_success_rate: 0.93,
        }
    }
}

/// ChatKBQA baseline.
pub struct ChatKbqa {
    params: ChatKbqaParams,
    llm: MockLlm,
    seed: u64,
}

impl ChatKbqa {
    /// Creates a ChatKBQA baseline.
    pub fn new(seed: u64) -> Self {
        Self {
            params: ChatKbqaParams::default(),
            llm: MockLlm::new(Schema::new(), seed),
            seed,
        }
    }
}

impl FusionMethod for ChatKbqa {
    fn name(&self) -> &'static str {
        "ChatKBQA"
    }

    fn answer(&mut self, kg: &KnowledgeGraph, query: &Query) -> MethodAnswer {
        // Logical-form generation (one LLM call).
        self.llm.reason(120, 48);
        let parsed = bernoulli(
            self.seed,
            &format!("ckbqa-form:{}", query.key()),
            self.params.form_success_rate,
        );
        if !parsed {
            // The form failed to execute; the model answers blind.
            let generated = self.llm.generate_answer(
                &format!("ckbqa:{}", query.key()),
                Vec::new(),
                &[],
                &ContextProfile::clean(0),
                48,
            );
            return MethodAnswer {
                values: generated.values,
                hallucinated: generated.hallucinated,
            };
        }
        let claims = slot_claims(kg, query);
        if claims.is_empty() {
            // The precise edge is gone (e.g. masked): no fallback.
            return MethodAnswer::default();
        }
        // Execution returns the KB's assertions verbatim; the model
        // takes the best-supported readings without any source
        // weighting. Crucially the *entire* conflicted claim set rides
        // along in the prompt.
        let counts = support_counts(&claims);
        let faithful = crate::common::majority_values(&claims);
        let faithful_keys: std::collections::HashSet<String> =
            faithful.iter().map(|v| v.canonical_key()).collect();
        let distractors: Vec<Value> = counts
            .iter()
            .filter(|(v, _)| !faithful_keys.contains(&v.canonical_key()))
            .map(|(v, _)| v.clone())
            .collect();
        let profile = ContextProfile {
            conflict_ratio: conflict_ratio(&claims, &faithful),
            irrelevance_ratio: 0.0,
            coverage: 1.0,
            claims: claims.len(),
        };
        let generated = self.llm.generate_answer(
            &format!("ckbqa:{}", query.key()),
            faithful,
            &distractors,
            &profile,
            16 * claims.len(),
        );
        MethodAnswer {
            values: generated.values,
            hallucinated: generated.hallucinated,
        }
    }

    fn simulated_ms(&self) -> f64 {
        self.llm.usage().simulated_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multirag_datasets::movies::MoviesSpec;
    use multirag_datasets::perturb;

    fn accuracy(data: &multirag_datasets::spec::MultiSourceDataset, seed: u64) -> f64 {
        let mut m = ChatKbqa::new(seed);
        let mut correct = 0usize;
        for q in &data.queries {
            let a = m.answer(&data.graph, q);
            if a.values
                .iter()
                .any(|v| data.truth.is_correct(&q.entity, &q.attribute, v))
            {
                correct += 1;
            }
        }
        correct as f64 / data.queries.len() as f64
    }

    #[test]
    fn precise_retrieval_gives_decent_clean_accuracy() {
        let data = MoviesSpec::small().generate(42);
        assert!(accuracy(&data, 42) > 0.5);
    }

    #[test]
    fn conflict_injection_degrades_it_substantially() {
        // Average across seeds for stability.
        let mut clean_total = 0.0;
        let mut noisy_total = 0.0;
        for seed in [1u64, 2, 3] {
            let data = MoviesSpec::small().generate(seed);
            let noisy = perturb::inject_conflicts(&data, 0.7, seed);
            clean_total += accuracy(&data, seed);
            noisy_total += accuracy(&noisy, seed);
        }
        assert!(
            noisy_total < clean_total - 0.1,
            "conflict must hurt ChatKBQA: clean {clean_total} noisy {noisy_total}"
        );
    }

    #[test]
    fn abstains_when_the_edge_is_missing() {
        let data = MoviesSpec::small().generate(42);
        let mut m = ChatKbqa::new(42);
        let bogus = Query {
            id: 7,
            text: "?".into(),
            entity: "ghost".into(),
            attribute: "year".into(),
            gold: vec![],
        };
        // When the form parses, execution on a missing edge abstains.
        let out = m.answer(&data.graph, &bogus);
        assert!(out.values.is_empty() || out.hallucinated);
    }
}
