//! Majority voting (MV).
//!
//! The simplest fusion rule: return the single most-supported value.
//! As the paper notes, MV "can only return a single answer for a
//! query, which fails to accommodate the common scenario where a query
//! has multiple return values" — multi-director movies cost it recall.

use crate::common::{slot_claims, support_counts, FusionMethod, MethodAnswer};
use multirag_datasets::Query;
use multirag_kg::KnowledgeGraph;

/// Majority-vote fusion.
#[derive(Debug, Default, Clone, Copy)]
pub struct MajorityVote;

impl FusionMethod for MajorityVote {
    fn name(&self) -> &'static str {
        "MV"
    }

    fn answer(&mut self, kg: &KnowledgeGraph, query: &Query) -> MethodAnswer {
        let claims = slot_claims(kg, query);
        let counts = support_counts(&claims);
        MethodAnswer {
            values: counts.into_iter().take(1).map(|(v, _)| v).collect(),
            hallucinated: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multirag_datasets::movies::MoviesSpec;

    #[test]
    fn returns_at_most_one_value() {
        let data = MoviesSpec::small().generate(42);
        let mut mv = MajorityVote;
        for q in &data.queries {
            let a = mv.answer(&data.graph, q);
            assert!(a.values.len() <= 1);
        }
    }

    #[test]
    fn picks_the_modal_value() {
        let data = MoviesSpec::small().generate(42);
        let mut mv = MajorityVote;
        // On single-valued attributes with mostly-reliable sources the
        // majority is usually right.
        let mut correct = 0;
        let mut total = 0;
        for q in data.queries.iter().filter(|q| q.gold.len() == 1) {
            total += 1;
            let a = mv.answer(&data.graph, q);
            if a.values
                .first()
                .is_some_and(|v| data.truth.is_correct(&q.entity, &q.attribute, v))
            {
                correct += 1;
            }
        }
        assert!(total > 0);
        assert!(
            correct as f64 / total as f64 > 0.6,
            "MV accuracy {correct}/{total}"
        );
    }

    #[test]
    fn empty_slots_give_empty_answers() {
        let data = MoviesSpec::small().generate(42);
        let mut mv = MajorityVote;
        let bogus = Query {
            id: 0,
            text: "?".into(),
            entity: "nope".into(),
            attribute: "year".into(),
            gold: vec![],
        };
        assert!(mv.answer(&data.graph, &bogus).values.is_empty());
    }
}
