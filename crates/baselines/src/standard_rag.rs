//! Standard RAG (Lewis et al.): retrieve everything relevant, stuff the
//! context, generate.
//!
//! No filtering of any kind: every slot claim plus a few neighbouring
//! chunks go into the prompt. The generation step therefore sees the
//! raw cross-source conflict and the retrieval noise — the exact
//! failure mode MultiRAG's MCC removes.

use crate::common::{
    conflict_ratio, majority_values, neighbor_noise, slot_claims, FusionMethod, MethodAnswer,
};
use multirag_datasets::Query;
use multirag_kg::{KnowledgeGraph, Value};
use multirag_llmsim::{ContextProfile, MockLlm, Schema};

/// Standard RAG baseline.
pub struct StandardRag {
    llm: MockLlm,
    /// How many irrelevant neighbour chunks retrieval drags in.
    pub noise_chunks: usize,
}

impl StandardRag {
    /// Creates a Standard RAG baseline.
    pub fn new(seed: u64) -> Self {
        Self {
            llm: MockLlm::new(Schema::new(), seed),
            noise_chunks: 4,
        }
    }
}

impl FusionMethod for StandardRag {
    fn name(&self) -> &'static str {
        "Standard RAG"
    }

    fn answer(&mut self, kg: &KnowledgeGraph, query: &Query) -> MethodAnswer {
        let claims = slot_claims(kg, query);
        let noise = neighbor_noise(kg, query, self.noise_chunks);
        if claims.is_empty() {
            // Retrieval found nothing relevant; generation must guess.
            let generated = self.llm.generate_answer(
                &format!("srag:{}", query.key()),
                Vec::new(),
                &[],
                &ContextProfile::clean(0),
                32 + 16 * noise.len(),
            );
            return MethodAnswer {
                values: generated.values,
                hallucinated: generated.hallucinated,
            };
        }
        let faithful = majority_values(&claims);
        let distractors: Vec<Value> = claims
            .iter()
            .filter(|c| {
                !faithful
                    .iter()
                    .any(|f| f.canonical_key() == c.value.canonical_key())
            })
            .map(|c| c.value.clone())
            .collect();
        let profile = ContextProfile {
            conflict_ratio: conflict_ratio(&claims, &faithful),
            irrelevance_ratio: noise.len() as f64 / (claims.len() + noise.len()) as f64,
            coverage: 1.0,
            claims: claims.len() + noise.len(),
        };
        let generated = self.llm.generate_answer(
            &format!("srag:{}", query.key()),
            faithful,
            &distractors,
            &profile,
            24 * (claims.len() + noise.len()),
        );
        MethodAnswer {
            values: generated.values,
            hallucinated: generated.hallucinated,
        }
    }

    fn simulated_ms(&self) -> f64 {
        self.llm.usage().simulated_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multirag_datasets::movies::MoviesSpec;

    #[test]
    fn answers_with_majority_when_context_is_clean() {
        let data = MoviesSpec::small().generate(42);
        let mut rag = StandardRag::new(42);
        let mut correct = 0usize;
        for q in &data.queries {
            let a = rag.answer(&data.graph, q);
            if a.values
                .iter()
                .any(|v| data.truth.is_correct(&q.entity, &q.attribute, v))
            {
                correct += 1;
            }
        }
        let rate = correct as f64 / data.queries.len() as f64;
        assert!(rate > 0.4, "standard RAG accuracy {rate}");
    }

    #[test]
    fn hallucinates_more_than_not_at_high_conflict() {
        // Hand-build a maximally conflicted slot.
        let mut kg = KnowledgeGraph::new();
        let e = kg.add_entity("X", "d");
        let r = kg.add_relation("attr");
        for i in 0..6 {
            let s = kg.add_source(&format!("s{i}"), "json", "d");
            kg.add_triple(e, r, Value::from(format!("v{i}")), s, 0);
        }
        let query = Query {
            id: 1,
            text: "What is the attr of X?".into(),
            entity: "X".into(),
            attribute: "attr".into(),
            gold: vec![Value::from("v0")],
        };
        let fired = (0..64)
            .filter(|&seed| {
                let mut rag = StandardRag::new(seed);
                rag.answer(&kg, &query).hallucinated
            })
            .count();
        assert!(fired > 20, "high conflict must fire often: {fired}/64");
    }

    #[test]
    fn meters_simulated_time() {
        let data = MoviesSpec::small().generate(42);
        let mut rag = StandardRag::new(1);
        rag.answer(&data.graph, &data.queries[0]);
        assert!(rag.simulated_ms() > 0.0);
    }
}
