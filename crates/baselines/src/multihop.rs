//! Table IV variants: each baseline's behaviour on text-corpus 2-hop
//! questions, sharing the BM25 retriever, the corpus extraction schema
//! and the hallucination law with MultiRAG's own QA pipeline
//! ([`multirag_core::qa`]).

use multirag_core::qa::{corpus_schema, parse_bridge_question, MultiHopOutcome};
use multirag_datasets::multihop::{MultiHopDataset, MultiHopQuestion};
use multirag_kg::{FxHashMap, Value};
use multirag_llmsim::determinism::bernoulli;
use multirag_llmsim::{ContextProfile, MockLlm};
use multirag_retrieval::text::normalize_mention as normalize;
use multirag_retrieval::Bm25Index;

/// A method evaluated on the multi-hop corpora.
pub trait MultiHopMethod {
    /// Display name (Table IV row).
    fn name(&self) -> &'static str;
    /// Answers one question.
    fn answer(&mut self, question: &MultiHopQuestion) -> MultiHopOutcome;
    /// Simulated LLM milliseconds so far.
    fn simulated_ms(&self) -> f64;
}

/// Shared retrieval + extraction plumbing.
pub struct MhContext<'d> {
    data: &'d MultiHopDataset,
    bm25: Bm25Index,
    llm: MockLlm,
    /// Title → doc index, for logical-form (title-exact) retrieval.
    titles: FxHashMap<String, usize>,
}

impl<'d> MhContext<'d> {
    /// Builds the shared context.
    pub fn new(data: &'d MultiHopDataset, seed: u64) -> Self {
        let bm25 = Bm25Index::build(data.corpus.iter().map(|d| d.text.as_str()));
        let llm = MockLlm::new(corpus_schema(data), seed);
        let titles = data
            .corpus
            .iter()
            .enumerate()
            .map(|(i, d)| (normalize(&d.title), i))
            .collect();
        Self {
            data,
            bm25,
            llm,
            titles,
        }
    }

    /// Top-k doc indices for a text query.
    fn retrieve(&self, query: &str, k: usize) -> Vec<usize> {
        self.bm25
            .search(query, k)
            .into_iter()
            .map(|(d, _)| d.index())
            .collect()
    }

    /// Extracts `(subject, object)` pairs of a relation from a doc.
    fn extract_relation(&mut self, doc: usize, relation: &str) -> Vec<(String, String)> {
        let text = self.data.corpus[doc].text.clone();
        self.llm
            .extract_triples(&text)
            .into_iter()
            .filter(|t| t.predicate == relation)
            .map(|t| (t.subject, t.object.to_string()))
            .collect()
    }

    /// Generation under the hallucination law.
    fn generate(
        &mut self,
        key: &str,
        faithful: Option<String>,
        profile: &ContextProfile,
        tokens: usize,
    ) -> (Option<String>, bool) {
        let faithful_values = faithful.map(|a| vec![Value::Str(a)]).unwrap_or_default();
        let out = self
            .llm
            .generate_answer(key, faithful_values, &[], profile, tokens);
        (out.values.first().map(|v| v.to_string()), out.hallucinated)
    }
}

fn cap5(mut docs: Vec<usize>) -> Vec<usize> {
    let mut seen = std::collections::HashSet::new();
    docs.retain(|d| seen.insert(*d));
    docs.truncate(5);
    docs
}

// -------------------------------------------------------------------
// Standard RAG: one retrieval round on the raw question.
// -------------------------------------------------------------------

/// Standard RAG on multi-hop questions.
pub struct StandardRagMh<'d>(pub MhContext<'d>);

impl MultiHopMethod for StandardRagMh<'_> {
    fn name(&self) -> &'static str {
        "Standard RAG"
    }

    fn answer(&mut self, question: &MultiHopQuestion) -> MultiHopOutcome {
        let ctx = &mut self.0;
        let docs = ctx.retrieve(&question.text, 5);
        let Some((rel2, _rel1, _anchor)) = parse_bridge_question(&question.text) else {
            return MultiHopOutcome {
                answer: None,
                evidence: cap5(docs),
                hallucinated: false,
            };
        };
        // Single-round RAG reads whatever it got and answers with any
        // rel2 assertion found — usually the wrong subject's, because
        // the hop-2 document is rarely retrieved by the question text.
        let mut candidates: Vec<String> = Vec::new();
        for &d in &docs {
            for (_, obj) in ctx.extract_relation(d, &rel2) {
                candidates.push(obj);
            }
        }
        let answer = candidates.first().cloned();
        let profile = ContextProfile {
            conflict_ratio: if candidates.len() > 1 { 0.5 } else { 0.1 },
            irrelevance_ratio: 0.4,
            coverage: if answer.is_some() { 0.6 } else { 0.0 },
            claims: candidates.len(),
        };
        let (answer, hallucinated) =
            ctx.generate(&format!("srag-mh{}", question.id), answer, &profile, 320);
        MultiHopOutcome {
            answer,
            evidence: cap5(docs),
            hallucinated,
        }
    }

    fn simulated_ms(&self) -> f64 {
        self.0.llm.usage().simulated_ms
    }
}

// -------------------------------------------------------------------
// CoT: parametric knowledge, retrieval only as nominal evidence.
// -------------------------------------------------------------------

/// GPT-3.5 + CoT on multi-hop questions.
pub struct CotMh<'d> {
    /// Shared plumbing.
    pub ctx: MhContext<'d>,
    /// Probability the parametric model can chain both hops.
    pub knowledge_rate: f64,
    seed: u64,
}

impl<'d> CotMh<'d> {
    /// Creates the CoT multi-hop baseline.
    pub fn new(data: &'d MultiHopDataset, seed: u64) -> Self {
        Self {
            ctx: MhContext::new(data, seed),
            knowledge_rate: 0.40,
            seed,
        }
    }
}

impl MultiHopMethod for CotMh<'_> {
    fn name(&self) -> &'static str {
        "GPT-3.5-Turbo+CoT"
    }

    fn answer(&mut self, question: &MultiHopQuestion) -> MultiHopOutcome {
        // Long reasoning trace.
        self.ctx.llm.reason(128, 420);
        let docs = self.ctx.retrieve(&question.text, 5);
        let knows = bernoulli(
            self.seed,
            &format!("cotmh-knows:{}", question.id),
            self.knowledge_rate,
        );
        let (faithful, profile) = if knows {
            (
                Some(question.answer.clone()),
                ContextProfile {
                    conflict_ratio: 0.1,
                    irrelevance_ratio: 0.1,
                    coverage: 1.0,
                    claims: 2,
                },
            )
        } else {
            (None, ContextProfile::clean(0))
        };
        let (answer, hallucinated) =
            self.ctx
                .generate(&format!("cot-mh{}", question.id), faithful, &profile, 160);
        MultiHopOutcome {
            answer,
            evidence: cap5(docs),
            hallucinated,
        }
    }

    fn simulated_ms(&self) -> f64 {
        self.ctx.llm.usage().simulated_ms
    }
}

// -------------------------------------------------------------------
// IRCoT: two interleaved retrieval rounds, first bridge candidate.
// -------------------------------------------------------------------

/// IRCoT on multi-hop questions.
pub struct IrCotMh<'d>(pub MhContext<'d>);

impl MultiHopMethod for IrCotMh<'_> {
    fn name(&self) -> &'static str {
        "IRCoT"
    }

    fn answer(&mut self, question: &MultiHopQuestion) -> MultiHopOutcome {
        let ctx = &mut self.0;
        let Some((rel2, rel1, anchor)) = parse_bridge_question(&question.text) else {
            return MultiHopOutcome {
                answer: None,
                evidence: Vec::new(),
                hallucinated: false,
            };
        };
        let hop1 = ctx.retrieve(&anchor, 3);
        ctx.llm.reason(160, 96); // CoT step between rounds
                                 // First bridge candidate (no voting — IRCoT trusts its chain).
        let mut bridge = None;
        for &d in &hop1 {
            if let Some((subj, obj)) = ctx.extract_relation(d, &rel1).into_iter().next() {
                if normalize(&subj) == normalize(&anchor) {
                    bridge = Some(obj);
                    break;
                }
                if bridge.is_none() {
                    bridge = Some(obj); // chain follows the first lead
                }
            }
        }
        let mut docs = hop1.clone();
        let mut answer = None;
        if let Some(bridge) = &bridge {
            let hop2 = ctx.retrieve(bridge, 3);
            for &d in &hop2 {
                if answer.is_none() {
                    for (subj, obj) in ctx.extract_relation(d, &rel2) {
                        if normalize(&subj) == normalize(bridge) {
                            answer = Some(obj);
                            break;
                        }
                    }
                }
            }
            docs.extend(hop2);
        }
        let profile = ContextProfile {
            conflict_ratio: 0.15,
            irrelevance_ratio: 0.2,
            coverage: if answer.is_some() { 1.0 } else { 0.0 },
            claims: if answer.is_some() { 2 } else { 0 },
        };
        let (answer, hallucinated) =
            ctx.generate(&format!("ircot-mh{}", question.id), answer, &profile, 280);
        MultiHopOutcome {
            answer,
            evidence: cap5(docs),
            hallucinated,
        }
    }

    fn simulated_ms(&self) -> f64 {
        self.0.llm.usage().simulated_ms
    }
}

// -------------------------------------------------------------------
// ChatKBQA: logical-form, title-exact retrieval.
// -------------------------------------------------------------------

/// ChatKBQA on multi-hop questions.
pub struct ChatKbqaMh<'d> {
    /// Shared plumbing.
    pub ctx: MhContext<'d>,
    /// Probability the logical form executes cleanly.
    pub form_success_rate: f64,
    seed: u64,
}

impl<'d> ChatKbqaMh<'d> {
    /// Creates the ChatKBQA multi-hop baseline.
    pub fn new(data: &'d MultiHopDataset, seed: u64) -> Self {
        Self {
            ctx: MhContext::new(data, seed),
            form_success_rate: 0.78,
            seed,
        }
    }
}

impl MultiHopMethod for ChatKbqaMh<'_> {
    fn name(&self) -> &'static str {
        "ChatKBQA"
    }

    fn answer(&mut self, question: &MultiHopQuestion) -> MultiHopOutcome {
        self.ctx.llm.reason(140, 64); // form generation
        let parsed = bernoulli(
            self.seed,
            &format!("ckbqa-mh-form:{}", question.id),
            self.form_success_rate,
        ) && parse_bridge_question(&question.text).is_some();
        if !parsed {
            // Fallback: one BM25 round, answer blind.
            let docs = self.ctx.retrieve(&question.text, 5);
            let (answer, hallucinated) = self.ctx.generate(
                &format!("ckbqa-mh{}", question.id),
                None,
                &ContextProfile::clean(0),
                96,
            );
            return MultiHopOutcome {
                answer,
                evidence: cap5(docs),
                hallucinated,
            };
        }
        let (rel2, rel1, anchor) = parse_bridge_question(&question.text).expect("checked above");
        // Title-exact execution.
        let mut docs = Vec::new();
        let mut answer = None;
        if let Some(&d1) = self.ctx.titles.get(&normalize(&anchor)) {
            docs.push(d1);
            let bridge = self
                .ctx
                .extract_relation(d1, &rel1)
                .into_iter()
                .map(|(_, obj)| obj)
                .next();
            if let Some(bridge) = bridge {
                if let Some(&d2) = self.ctx.titles.get(&normalize(&bridge)) {
                    docs.push(d2);
                    answer = self
                        .ctx
                        .extract_relation(d2, &rel2)
                        .into_iter()
                        .map(|(_, obj)| obj)
                        .next();
                }
            }
        }
        let profile = ContextProfile {
            conflict_ratio: 0.05,
            irrelevance_ratio: 0.0,
            coverage: if answer.is_some() { 1.0 } else { 0.0 },
            claims: docs.len(),
        };
        let (answer, hallucinated) =
            self.ctx
                .generate(&format!("ckbqa-mh{}", question.id), answer, &profile, 128);
        MultiHopOutcome {
            answer,
            evidence: cap5(docs),
            hallucinated,
        }
    }

    fn simulated_ms(&self) -> f64 {
        self.ctx.llm.usage().simulated_ms
    }
}

// -------------------------------------------------------------------
// MDQA: single retrieval round + local graph walk.
// -------------------------------------------------------------------

/// MDQA on multi-hop questions.
pub struct MdqaMh<'d>(pub MhContext<'d>);

impl MultiHopMethod for MdqaMh<'_> {
    fn name(&self) -> &'static str {
        "MDQA"
    }

    fn answer(&mut self, question: &MultiHopQuestion) -> MultiHopOutcome {
        let ctx = &mut self.0;
        let Some((rel2, rel1, anchor)) = parse_bridge_question(&question.text) else {
            return MultiHopOutcome {
                answer: None,
                evidence: Vec::new(),
                hallucinated: false,
            };
        };
        // One wider retrieval round (k=5 on question + anchor), then a
        // graph walk *within* the retrieved set only.
        let mut docs = ctx.retrieve(&question.text, 3);
        docs.extend(ctx.retrieve(&anchor, 3));
        let docs = cap5(docs);
        ctx.llm.reason(200 + 40 * docs.len(), 96);
        let mut bridges = Vec::new();
        for &d in &docs {
            for (subj, obj) in ctx.extract_relation(d, &rel1) {
                if normalize(&subj) == normalize(&anchor) {
                    bridges.push(obj);
                }
            }
        }
        let mut answer = None;
        'outer: for bridge in &bridges {
            for &d in &docs {
                for (subj, obj) in ctx.extract_relation(d, &rel2) {
                    if normalize(&subj) == normalize(bridge) {
                        answer = Some(obj);
                        break 'outer;
                    }
                }
            }
        }
        let profile = ContextProfile {
            conflict_ratio: 0.1,
            irrelevance_ratio: 0.3,
            coverage: if answer.is_some() { 1.0 } else { 0.3 },
            claims: bridges.len() + usize::from(answer.is_some()),
        };
        let (answer, hallucinated) =
            ctx.generate(&format!("mdqa-mh{}", question.id), answer, &profile, 256);
        MultiHopOutcome {
            answer,
            evidence: docs,
            hallucinated,
        }
    }

    fn simulated_ms(&self) -> f64 {
        self.0.llm.usage().simulated_ms
    }
}

// -------------------------------------------------------------------
// RQ-RAG: decomposed queries, union retrieval.
// -------------------------------------------------------------------

/// RQ-RAG on multi-hop questions.
pub struct RqRagMh<'d>(pub MhContext<'d>);

impl MultiHopMethod for RqRagMh<'_> {
    fn name(&self) -> &'static str {
        "RQ-RAG"
    }

    fn answer(&mut self, question: &MultiHopQuestion) -> MultiHopOutcome {
        let ctx = &mut self.0;
        ctx.llm.reason(160, 80); // decomposition pass
        let Some((rel2, rel1, anchor)) = parse_bridge_question(&question.text) else {
            return MultiHopOutcome {
                answer: None,
                evidence: Vec::new(),
                hallucinated: false,
            };
        };
        // Decomposed sub-queries: the anchor, and "rel1 of anchor".
        let mut docs = ctx.retrieve(&anchor, 3);
        docs.extend(ctx.retrieve(&format!("{rel1} {anchor}"), 2));
        let mut bridge = None;
        for &d in &docs.clone() {
            for (subj, obj) in ctx.extract_relation(d, &rel1) {
                if normalize(&subj) == normalize(&anchor) {
                    bridge = Some(obj);
                }
            }
        }
        let mut answer = None;
        if let Some(bridge) = &bridge {
            let hop2 = ctx.retrieve(&format!("{rel2} {bridge}"), 3);
            'outer: for &d in &hop2 {
                for (subj, obj) in ctx.extract_relation(d, &rel2) {
                    if normalize(&subj) == normalize(bridge) {
                        // The chain follows its first lead — no
                        // cross-document consistency check.
                        answer = Some(obj);
                        break 'outer;
                    }
                }
            }
            docs.extend(hop2);
        }
        let profile = ContextProfile {
            conflict_ratio: 0.15,
            irrelevance_ratio: 0.15,
            coverage: if answer.is_some() { 1.0 } else { 0.2 },
            claims: usize::from(bridge.is_some()) + usize::from(answer.is_some()),
        };
        let (answer, hallucinated) =
            ctx.generate(&format!("rqrag-mh{}", question.id), answer, &profile, 256);
        MultiHopOutcome {
            answer,
            evidence: cap5(docs),
            hallucinated,
        }
    }

    fn simulated_ms(&self) -> f64 {
        self.0.llm.usage().simulated_ms
    }
}

// -------------------------------------------------------------------
// MetaRAG: IRCoT + verification retry.
// -------------------------------------------------------------------

/// MetaRAG on multi-hop questions.
pub struct MetaRagMh<'d>(pub MhContext<'d>);

impl MultiHopMethod for MetaRagMh<'_> {
    fn name(&self) -> &'static str {
        "MetaRAG"
    }

    fn answer(&mut self, question: &MultiHopQuestion) -> MultiHopOutcome {
        let ctx = &mut self.0;
        let Some((rel2, rel1, anchor)) = parse_bridge_question(&question.text) else {
            return MultiHopOutcome {
                answer: None,
                evidence: Vec::new(),
                hallucinated: false,
            };
        };
        // Round 1 (IRCoT-style, subject-checked).
        let mut docs = ctx.retrieve(&anchor, 3);
        ctx.llm.reason(160, 96);
        let mut bridges: Vec<String> = Vec::new();
        for &d in &docs.clone() {
            for (subj, obj) in ctx.extract_relation(d, &rel1) {
                if normalize(&subj) == normalize(&anchor) {
                    bridges.push(obj);
                }
            }
        }
        // Metacognitive monitor: no subject-checked bridge → widen the
        // retrieval and retry once.
        if bridges.is_empty() {
            ctx.llm.reason(192, 96);
            let wider = ctx.retrieve(&question.text, 5);
            for &d in &wider {
                for (subj, obj) in ctx.extract_relation(d, &rel1) {
                    if normalize(&subj) == normalize(&anchor) {
                        bridges.push(obj);
                    }
                }
            }
            docs.extend(wider);
        }
        let bridge = bridges.first().cloned();
        let mut answer = None;
        let mut conflicted = false;
        if let Some(bridge) = &bridge {
            let hop2 = ctx.retrieve(bridge, 3);
            let mut claims: Vec<String> = Vec::new();
            for &d in &hop2 {
                for (subj, obj) in ctx.extract_relation(d, &rel2) {
                    if normalize(&subj) == normalize(bridge) {
                        claims.push(obj);
                    }
                }
            }
            let distinct: std::collections::HashSet<String> =
                claims.iter().map(|c| normalize(c)).collect();
            conflicted = distinct.len() > 1;
            if conflicted {
                // The monitor notices the disagreement and runs one
                // self-questioning loop. Without MultiRAG's authority
                // and corroboration machinery it resolves the conflict
                // correctly only part of the time — here modelled as a
                // fixed success rate on picking the majority claim.
                ctx.llm.reason(224, 96);
                let resolves = bernoulli(
                    0x4d45_5441, // stable method salt
                    &format!("meta-resolve:{}", question.id),
                    0.70,
                );
                if resolves {
                    let mut counts: FxHashMap<String, (String, usize)> = FxHashMap::default();
                    for c in &claims {
                        let e = counts.entry(normalize(c)).or_insert_with(|| (c.clone(), 0));
                        e.1 += 1;
                    }
                    answer = counts
                        .into_values()
                        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                        .map(|(c, _)| c);
                } else {
                    answer = claims.first().cloned();
                }
            } else {
                answer = claims.first().cloned();
            }
            docs.extend(hop2);
        }
        // Verification: the monitor rejects answers absent from the
        // evidence (cheap self-check that kills fabrications).
        let verified = answer.as_ref().is_some_and(|a| {
            docs.iter()
                .any(|&d| normalize(&ctx.data.corpus[d].text).contains(&normalize(a)))
        });
        let profile = ContextProfile {
            conflict_ratio: if conflicted || bridges.len() > 1 {
                0.3
            } else {
                0.05
            },
            irrelevance_ratio: 0.1,
            coverage: if verified { 1.0 } else { 0.0 },
            claims: bridges.len() + usize::from(answer.is_some()),
        };
        let (answer, hallucinated) = ctx.generate(
            &format!("meta-mh{}", question.id),
            if verified { answer } else { None },
            &profile,
            280,
        );
        MultiHopOutcome {
            answer,
            evidence: cap5(docs),
            hallucinated,
        }
    }

    fn simulated_ms(&self) -> f64 {
        self.0.llm.usage().simulated_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multirag_core::{MultiRagConfig, MultiRagQa};
    use multirag_datasets::multihop::{MultiHopFlavor, MultiHopSpec};

    fn score(data: &MultiHopDataset, method: &mut dyn MultiHopMethod) -> (f64, f64) {
        let mut correct = 0usize;
        let mut recall_sum = 0.0;
        for q in &data.questions {
            let out = method.answer(q);
            if out
                .answer
                .as_ref()
                .is_some_and(|a| normalize(a) == normalize(&q.answer))
            {
                correct += 1;
            }
            let hit = q
                .gold_docs
                .iter()
                .filter(|d| out.evidence.contains(d))
                .count();
            recall_sum += hit as f64 / q.gold_docs.len() as f64;
        }
        (
            correct as f64 / data.questions.len() as f64,
            recall_sum / data.questions.len() as f64,
        )
    }

    #[test]
    fn multirag_beats_every_baseline_on_precision() {
        let data = MultiHopSpec::small(MultiHopFlavor::Hotpot).generate(42);
        let mut qa = MultiRagQa::new(&data, MultiRagConfig::default(), 42);
        let mut mr_correct = 0usize;
        for q in &data.questions {
            let out = qa.answer(q);
            if out
                .answer
                .as_ref()
                .is_some_and(|a| normalize(a) == normalize(&q.answer))
            {
                mr_correct += 1;
            }
        }
        let mr_precision = mr_correct as f64 / data.questions.len() as f64;

        let mut methods: Vec<Box<dyn MultiHopMethod>> = vec![
            Box::new(StandardRagMh(MhContext::new(&data, 42))),
            Box::new(CotMh::new(&data, 42)),
        ];
        for method in &mut methods {
            let (precision, _) = score(&data, method.as_mut());
            assert!(
                mr_precision >= precision,
                "MultiRAG {mr_precision} must be >= {} {precision}",
                method.name()
            );
        }
    }

    #[test]
    fn ircot_beats_standard_rag_on_recall() {
        let data = MultiHopSpec::small(MultiHopFlavor::Hotpot).generate(42);
        let (_, srag_recall) = score(&data, &mut StandardRagMh(MhContext::new(&data, 42)));
        let (_, ircot_recall) = score(&data, &mut IrCotMh(MhContext::new(&data, 42)));
        assert!(
            ircot_recall > srag_recall,
            "IRCoT recall {ircot_recall} vs Standard RAG {srag_recall}"
        );
    }

    #[test]
    fn metarag_is_a_strong_baseline() {
        let data = MultiHopSpec::small(MultiHopFlavor::Hotpot).generate(42);
        let (meta_p, meta_r) = score(&data, &mut MetaRagMh(MhContext::new(&data, 42)));
        let (srag_p, _) = score(&data, &mut StandardRagMh(MhContext::new(&data, 42)));
        assert!(meta_p > srag_p);
        assert!(meta_r > 0.5);
    }

    #[test]
    fn all_methods_emit_at_most_five_evidence_docs() {
        let data = MultiHopSpec::small(MultiHopFlavor::TwoWiki).generate(7);
        let mut methods: Vec<Box<dyn MultiHopMethod>> = vec![
            Box::new(StandardRagMh(MhContext::new(&data, 7))),
            Box::new(CotMh::new(&data, 7)),
            Box::new(IrCotMh(MhContext::new(&data, 7))),
            Box::new(ChatKbqaMh::new(&data, 7)),
            Box::new(MdqaMh(MhContext::new(&data, 7))),
            Box::new(RqRagMh(MhContext::new(&data, 7))),
            Box::new(MetaRagMh(MhContext::new(&data, 7))),
        ];
        for method in &mut methods {
            for q in data.questions.iter().take(5) {
                let out = method.answer(q);
                assert!(out.evidence.len() <= 5, "{} overflowed", method.name());
            }
            assert!(method.simulated_ms() > 0.0);
        }
    }

    #[test]
    fn chatkbqa_title_execution_finds_gold_docs_when_form_parses() {
        let data = MultiHopSpec::small(MultiHopFlavor::Hotpot).generate(42);
        let mut m = ChatKbqaMh::new(&data, 42);
        m.form_success_rate = 1.0;
        let (_, recall) = score(&data, &mut m);
        assert!(recall > 0.8, "title-exact retrieval recall {recall}");
    }
}
