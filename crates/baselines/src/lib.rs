#![warn(missing_docs)]

//! # multirag-baselines
//!
//! The comparison methods of Tables II and IV, implemented from scratch:
//!
//! **Data-fusion / truth-discovery baselines** (no LLM):
//! * [`mv`] — majority voting (single-answer, the paper's note on why
//!   it fails multi-valued queries applies verbatim).
//! * [`truthfinder`] — Yin et al.'s iterative source-trust / claim-
//!   confidence fixpoint.
//! * [`ltm`] — Zhao et al.'s Latent Truth Model (Bayesian
//!   sensitivity/specificity, EM).
//! * [`fusionquery`] — Zhu et al.'s on-demand query-time fusion with
//!   incrementally learned source trust.
//!
//! **LLM-driven SOTA baselines** (share the simulated LLM and its
//! hallucination law with MultiRAG, so comparisons are apples-to-apples):
//! * [`cot`] — GPT-3.5-style chain-of-thought from parametric knowledge.
//! * [`standard_rag`] — retrieve-everything-then-generate.
//! * [`ircot`] — interleaved retrieval + CoT.
//! * [`chatkbqa`] — generate-then-retrieve logical-form KBQA.
//! * [`mdqa`] — knowledge-graph-prompting multi-document QA.
//! * [`rqrag`] — query refinement / decomposition.
//! * [`metarag`] — metacognitive self-checking RAG.
//!
//! [`multihop`] hosts each method's Table IV (text-corpus, 2-hop)
//! variant.
//!
//! Every method implements [`FusionMethod`] (structured multi-source
//! queries) and/or [`multihop::MultiHopMethod`].

pub mod chatkbqa;
pub mod common;
pub mod cot;
pub mod fusionquery;
pub mod ircot;
pub mod ltm;
pub mod mdqa;
pub mod metarag;
pub mod multihop;
pub mod mv;
pub mod rqrag;
pub mod standard_rag;
pub mod truthfinder;

pub use common::{slot_claims, FusionMethod, MethodAnswer, SlotClaim};
