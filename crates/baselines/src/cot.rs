//! Chain-of-Thought prompting (Wei et al.) with a GPT-3.5-class model
//! and **no retrieval**.
//!
//! CoT answers from parametric knowledge. We model that knowledge as a
//! seeded oracle with a fixed hit rate (the probability the base model
//! "knows" the fact); on a hit the faithful answer is the gold value
//! under a clean context, on a miss the context is empty and the
//! hallucination law takes over (fabrication / refusal). Long
//! step-by-step reasoning burns simulated tokens, which is why CoT's
//! time column is the worst of the LLM methods.

use crate::common::{FusionMethod, MethodAnswer};
use multirag_datasets::Query;
use multirag_kg::KnowledgeGraph;
use multirag_llmsim::determinism::bernoulli;
use multirag_llmsim::{ContextProfile, MockLlm, Schema};

/// CoT configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CotParams {
    /// Probability the parametric model knows a fact.
    pub knowledge_rate: f64,
    /// Simulated reasoning tokens per query (CoT traces are long).
    pub reasoning_tokens: usize,
}

impl Default for CotParams {
    fn default() -> Self {
        Self {
            knowledge_rate: 0.35,
            reasoning_tokens: 420,
        }
    }
}

/// CoT baseline.
pub struct Cot {
    params: CotParams,
    llm: MockLlm,
    seed: u64,
}

impl Cot {
    /// Creates a CoT baseline with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            params: CotParams::default(),
            llm: MockLlm::new(Schema::new(), seed),
            seed,
        }
    }

    /// Overrides parameters.
    pub fn with_params(mut self, params: CotParams) -> Self {
        self.params = params;
        self
    }
}

impl FusionMethod for Cot {
    fn name(&self) -> &'static str {
        "CoT"
    }

    fn answer(&mut self, _kg: &KnowledgeGraph, query: &Query) -> MethodAnswer {
        // Step-by-step reasoning trace.
        self.llm.reason(96, self.params.reasoning_tokens);
        let knows = bernoulli(
            self.seed,
            &format!("cot-knows:{}", query.key()),
            self.params.knowledge_rate,
        );
        let (faithful, profile) = if knows {
            (
                query.gold.clone(),
                ContextProfile {
                    conflict_ratio: 0.1,
                    irrelevance_ratio: 0.0,
                    coverage: 1.0,
                    claims: query.gold.len().max(1),
                },
            )
        } else {
            (Vec::new(), ContextProfile::clean(0))
        };
        let generated =
            self.llm
                .generate_answer(&format!("cot:{}", query.key()), faithful, &[], &profile, 96);
        MethodAnswer {
            values: generated.values,
            hallucinated: generated.hallucinated,
        }
    }

    fn simulated_ms(&self) -> f64 {
        self.llm.usage().simulated_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multirag_datasets::movies::MoviesSpec;

    #[test]
    fn accuracy_tracks_knowledge_rate() {
        let data = MoviesSpec::small().generate(42);
        let mut cot = Cot::new(42);
        let mut hit = 0usize;
        for q in &data.queries {
            let a = cot.answer(&data.graph, q);
            if a.values
                .iter()
                .any(|v| data.truth.is_correct(&q.entity, &q.attribute, v))
            {
                hit += 1;
            }
        }
        let rate = hit as f64 / data.queries.len() as f64;
        assert!(rate < 0.8, "CoT without retrieval can't be great: {rate}");
    }

    #[test]
    fn burns_many_tokens() {
        let data = MoviesSpec::small().generate(42);
        let mut cot = Cot::new(42);
        for q in data.queries.iter().take(3) {
            cot.answer(&data.graph, q);
        }
        assert!(cot.simulated_ms() > 3.0 * 400.0 * 10.0, "CoT must be slow");
    }

    #[test]
    fn unknown_facts_often_fabricate() {
        let data = MoviesSpec::small().generate(42);
        let mut cot = Cot::new(42).with_params(CotParams {
            knowledge_rate: 0.0,
            reasoning_tokens: 50,
        });
        let fabricated = data
            .queries
            .iter()
            .filter(|q| {
                let a = cot.answer(&data.graph, q);
                a.hallucinated
            })
            .count();
        assert!(
            fabricated as f64 / data.queries.len() as f64 > 0.7,
            "zero-knowledge CoT must mostly hallucinate"
        );
    }

    #[test]
    fn is_deterministic() {
        let data = MoviesSpec::small().generate(42);
        let run = || {
            let mut cot = Cot::new(7);
            data.queries
                .iter()
                .map(|q| cot.answer(&data.graph, q).values)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
