//! Stateless deterministic pseudo-random draws.
//!
//! The simulated LLM must make "random-looking" decisions (does this
//! call hallucinate? which wrong value does it pick?) that are
//! reproducible across runs and *independent of call order* — two
//! pipelines asking about the same query must face the same noise. The
//! functions here derive draws from `(seed, key)` pairs via SplitMix64
//! finalization, so there is no RNG state to thread through the system.

/// SplitMix64 finalizer: a high-quality 64-bit mix.
#[inline]
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Combines a seed with a string key into a single draw.
pub fn draw(seed: u64, key: &str) -> u64 {
    let mut h = seed ^ 0x517c_c1b7_2722_0a95;
    for &b in key.as_bytes() {
        h = mix(h ^ u64::from(b));
    }
    mix(h)
}

/// Combines a seed with numeric keys into a single draw.
pub fn draw_n(seed: u64, keys: &[u64]) -> u64 {
    let mut h = seed ^ 0x2545_f491_4f6c_dd1d;
    for &k in keys {
        h = mix(h ^ k);
    }
    mix(h)
}

/// A uniform `f64` in `[0, 1)` from a draw.
#[inline]
pub fn unit(raw: u64) -> f64 {
    // Use the top 53 bits for a dense mantissa.
    (raw >> 11) as f64 / (1u64 << 53) as f64
}

/// Bernoulli trial keyed by `(seed, key)`.
pub fn bernoulli(seed: u64, key: &str, p: f64) -> bool {
    unit(draw(seed, key)) < p
}

/// Picks an index in `0..n` keyed by `(seed, key)`; `None` when `n == 0`.
pub fn pick(seed: u64, key: &str, n: usize) -> Option<usize> {
    if n == 0 {
        return None;
    }
    Some((draw(seed, key) % n as u64) as usize)
}

/// A gaussian-ish perturbation in `[-scale, scale]` (sum of two uniforms,
/// triangular distribution — cheap and bounded).
pub fn jitter(seed: u64, key: &str, scale: f64) -> f64 {
    let a = unit(draw(seed, key));
    let b = unit(draw(seed.wrapping_add(1), key));
    (a + b - 1.0) * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic() {
        assert_eq!(draw(42, "query-1"), draw(42, "query-1"));
        assert_eq!(draw_n(42, &[1, 2, 3]), draw_n(42, &[1, 2, 3]));
    }

    #[test]
    fn different_keys_give_different_draws() {
        assert_ne!(draw(42, "a"), draw(42, "b"));
        assert_ne!(draw(42, "a"), draw(43, "a"));
        assert_ne!(draw_n(1, &[1, 2]), draw_n(1, &[2, 1]));
    }

    #[test]
    fn unit_is_in_range_and_roughly_uniform() {
        let mut sum = 0.0;
        let n = 10_000;
        for i in 0..n {
            let u = unit(draw(7, &format!("k{i}")));
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn bernoulli_frequency_tracks_p() {
        let trials = 20_000;
        let hits = (0..trials)
            .filter(|i| bernoulli(3, &format!("t{i}"), 0.3))
            .count();
        let rate = hits as f64 / f64::from(trials);
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn bernoulli_extremes() {
        assert!(!bernoulli(1, "x", 0.0));
        assert!(bernoulli(1, "x", 1.0));
    }

    #[test]
    fn pick_covers_the_range() {
        assert_eq!(pick(1, "k", 0), None);
        let mut seen = std::collections::HashSet::new();
        for i in 0..200 {
            let idx = pick(9, &format!("k{i}"), 5).unwrap();
            assert!(idx < 5);
            seen.insert(idx);
        }
        assert_eq!(seen.len(), 5, "all buckets reachable");
    }

    #[test]
    fn jitter_is_bounded_and_centered() {
        let mut sum = 0.0;
        for i in 0..5_000 {
            let j = jitter(11, &format!("j{i}"), 0.2);
            assert!(j.abs() <= 0.2);
            sum += j;
        }
        assert!((sum / 5_000.0).abs() < 0.01);
    }
}
