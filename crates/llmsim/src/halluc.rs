//! The explicit hallucination model.
//!
//! The paper's entire premise is that hallucination frequency is driven
//! by what reaches the LLM: conflicting claims, irrelevant passages and
//! missing evidence (its Related Work cites the ~70%-indirect-passage
//! finding). We make that relationship an explicit, documented function
//! so that MultiRAG's filtering and every baseline face the *same*
//! failure law:
//!
//! ```text
//! p(hallucinate) = clamp(p0 + wc·conflict + wr·irrelevance + wk·(1 − coverage))
//! ```
//!
//! A deterministic draw keyed by `(seed, query)` decides whether the
//! emitted answer set is corrupted, and how: swapping in a conflicting
//! value, dropping answers, or fabricating one.

use crate::determinism::{bernoulli, draw, pick, unit};
use multirag_kg::Value;

/// Summary of the context handed to the generator for one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContextProfile {
    /// Fraction of context claims that contradict the majority claim
    /// (`0.0` = fully consistent).
    pub conflict_ratio: f64,
    /// Fraction of context passages unrelated to the query.
    pub irrelevance_ratio: f64,
    /// Fraction of the gold evidence present in context (`1.0` = all
    /// supporting facts retrieved).
    pub coverage: f64,
    /// Number of claims in context.
    pub claims: usize,
}

impl ContextProfile {
    /// A clean, complete context.
    pub fn clean(claims: usize) -> Self {
        Self {
            conflict_ratio: 0.0,
            irrelevance_ratio: 0.0,
            coverage: 1.0,
            claims,
        }
    }
}

/// Weights of the hallucination law.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HallucinationParams {
    /// Irreducible base rate (the LLM's intrinsic error).
    pub base: f64,
    /// Weight of the conflict ratio.
    pub w_conflict: f64,
    /// Weight of the irrelevance ratio.
    pub w_irrelevance: f64,
    /// Weight of missing coverage.
    pub w_missing: f64,
    /// Hard cap on the probability.
    pub max: f64,
}

impl Default for HallucinationParams {
    fn default() -> Self {
        Self {
            base: 0.03,
            w_conflict: 0.55,
            w_irrelevance: 0.30,
            w_missing: 0.45,
            max: 0.95,
        }
    }
}

/// The hallucination law.
pub fn hallucination_probability(profile: &ContextProfile, params: &HallucinationParams) -> f64 {
    let p = params.base
        + params.w_conflict * profile.conflict_ratio.clamp(0.0, 1.0)
        + params.w_irrelevance * profile.irrelevance_ratio.clamp(0.0, 1.0)
        + params.w_missing * (1.0 - profile.coverage.clamp(0.0, 1.0));
    // An empty context cannot be answered faithfully at all.
    if profile.claims == 0 {
        return params.max;
    }
    p.clamp(0.0, params.max)
}

/// How a corrupted answer set was corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// An answer was replaced by a conflicting/distractor value.
    Swap,
    /// One or more answers were dropped.
    Drop,
    /// A fabricated value was added.
    Fabricate,
}

/// The generator's output for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedAnswer {
    /// Final emitted values.
    pub values: Vec<Value>,
    /// Whether the hallucination draw fired.
    pub hallucinated: bool,
    /// The corruption applied, when it fired.
    pub corruption: Option<CorruptionKind>,
}

/// Applies the hallucination law to a faithful answer set.
///
/// * `seed`/`key` — deterministic identity of this generation call.
/// * `faithful` — the values a perfectly faithful read of context gives.
/// * `distractors` — conflicting values present in (or near) the
///   context; used by the swap corruption.
pub fn generate_with_hallucination(
    seed: u64,
    key: &str,
    faithful: Vec<Value>,
    distractors: &[Value],
    profile: &ContextProfile,
    params: &HallucinationParams,
) -> GeneratedAnswer {
    let p = hallucination_probability(profile, params);
    if !bernoulli(seed, &format!("halluc:{key}"), p) {
        return GeneratedAnswer {
            values: faithful,
            hallucinated: false,
            corruption: None,
        };
    }
    // Choose a corruption mode, weighted toward swaps when distractors
    // exist (the classic "confidently wrong" failure).
    let roll = unit(draw(seed, &format!("mode:{key}")));
    let kind = if !distractors.is_empty() && roll < 0.55 {
        CorruptionKind::Swap
    } else if roll < 0.8 && !faithful.is_empty() {
        CorruptionKind::Drop
    } else {
        CorruptionKind::Fabricate
    };
    let mut values = faithful;
    match kind {
        CorruptionKind::Swap => {
            let d = pick(seed, &format!("swapd:{key}"), distractors.len())
                .expect("distractors nonempty");
            let wrong = distractors[d].clone();
            if values.is_empty() {
                values.push(wrong);
            } else {
                let v = pick(seed, &format!("swapv:{key}"), values.len()).expect("nonempty");
                values[v] = wrong;
            }
        }
        CorruptionKind::Drop => {
            let v = pick(seed, &format!("drop:{key}"), values.len()).expect("nonempty");
            values.remove(v);
        }
        CorruptionKind::Fabricate => {
            let tag = draw(seed, &format!("fab:{key}")) % 100_000;
            values.push(Value::Str(format!("spurious-{tag}")));
        }
    }
    GeneratedAnswer {
        values,
        hallucinated: true,
        corruption: Some(kind),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> HallucinationParams {
        HallucinationParams::default()
    }

    #[test]
    fn clean_context_has_base_rate() {
        let p = hallucination_probability(&ContextProfile::clean(5), &params());
        assert!((p - params().base).abs() < 1e-12);
    }

    #[test]
    fn probability_is_monotone_in_each_factor() {
        let base = ContextProfile::clean(5);
        let p0 = hallucination_probability(&base, &params());
        let conflicted = ContextProfile {
            conflict_ratio: 0.5,
            ..base
        };
        let irrelevant = ContextProfile {
            irrelevance_ratio: 0.5,
            ..base
        };
        let uncovered = ContextProfile {
            coverage: 0.5,
            ..base
        };
        assert!(hallucination_probability(&conflicted, &params()) > p0);
        assert!(hallucination_probability(&irrelevant, &params()) > p0);
        assert!(hallucination_probability(&uncovered, &params()) > p0);
        // Conflict weighs heaviest (the paper's core failure mode).
        assert!(
            hallucination_probability(&conflicted, &params())
                > hallucination_probability(&irrelevant, &params())
        );
    }

    #[test]
    fn probability_is_capped() {
        let worst = ContextProfile {
            conflict_ratio: 1.0,
            irrelevance_ratio: 1.0,
            coverage: 0.0,
            claims: 3,
        };
        assert_eq!(hallucination_probability(&worst, &params()), params().max);
    }

    #[test]
    fn empty_context_forces_max_probability() {
        let empty = ContextProfile::clean(0);
        assert_eq!(hallucination_probability(&empty, &params()), params().max);
    }

    #[test]
    fn faithful_path_returns_input() {
        // Clean context → base rate 3%; find a key that doesn't fire.
        let profile = ContextProfile::clean(4);
        let answer = generate_with_hallucination(
            1,
            "q-stable",
            vec![Value::from("delayed")],
            &[Value::from("on-time")],
            &profile,
            &params(),
        );
        if !answer.hallucinated {
            assert_eq!(answer.values, vec![Value::from("delayed")]);
            assert!(answer.corruption.is_none());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let profile = ContextProfile {
            conflict_ratio: 0.8,
            irrelevance_ratio: 0.2,
            coverage: 0.6,
            claims: 6,
        };
        let run = || {
            generate_with_hallucination(
                9,
                "q42",
                vec![Value::from("a"), Value::from("b")],
                &[Value::from("x")],
                &profile,
                &params(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn high_conflict_contexts_hallucinate_often() {
        let profile = ContextProfile {
            conflict_ratio: 1.0,
            irrelevance_ratio: 0.5,
            coverage: 0.5,
            claims: 6,
        };
        let n = 500;
        let fired = (0..n)
            .filter(|i| {
                generate_with_hallucination(
                    7,
                    &format!("q{i}"),
                    vec![Value::from("a")],
                    &[Value::from("x")],
                    &profile,
                    &params(),
                )
                .hallucinated
            })
            .count();
        assert!(fired as f64 / f64::from(n) > 0.85);
    }

    #[test]
    fn clean_contexts_rarely_hallucinate() {
        let profile = ContextProfile::clean(6);
        let n = 500;
        let fired = (0..n)
            .filter(|i| {
                generate_with_hallucination(
                    7,
                    &format!("q{i}"),
                    vec![Value::from("a")],
                    &[],
                    &profile,
                    &params(),
                )
                .hallucinated
            })
            .count();
        assert!(fired as f64 / f64::from(n) < 0.08);
    }

    #[test]
    fn corruption_changes_the_answer_set() {
        let profile = ContextProfile {
            conflict_ratio: 1.0,
            irrelevance_ratio: 1.0,
            coverage: 0.0,
            claims: 2,
        };
        // max = 0.95 ⇒ nearly always corrupt; find corrupted cases and
        // check they differ from the faithful set.
        let faithful = vec![Value::from("a"), Value::from("b")];
        let mut corrupted_seen = 0;
        for i in 0..200 {
            let out = generate_with_hallucination(
                11,
                &format!("k{i}"),
                faithful.clone(),
                &[Value::from("x")],
                &profile,
                &params(),
            );
            if out.hallucinated {
                corrupted_seen += 1;
                assert_ne!(out.values, faithful, "corruption must change output");
                assert!(out.corruption.is_some());
            }
        }
        assert!(corrupted_seen > 150);
    }

    #[test]
    fn all_corruption_kinds_occur() {
        let profile = ContextProfile {
            conflict_ratio: 1.0,
            irrelevance_ratio: 1.0,
            coverage: 0.0,
            claims: 2,
        };
        let mut kinds = std::collections::HashSet::new();
        for i in 0..300 {
            let out = generate_with_hallucination(
                13,
                &format!("k{i}"),
                vec![Value::from("a"), Value::from("b")],
                &[Value::from("x")],
                &profile,
                &params(),
            );
            if let Some(kind) = out.corruption {
                kinds.insert(format!("{kind:?}"));
            }
        }
        assert_eq!(kinds.len(), 3, "swap, drop, fabricate all reachable");
    }

    #[test]
    fn swap_works_even_with_empty_faithful_set() {
        let profile = ContextProfile {
            conflict_ratio: 1.0,
            irrelevance_ratio: 1.0,
            coverage: 0.0,
            claims: 1,
        };
        for i in 0..100 {
            let out = generate_with_hallucination(
                17,
                &format!("k{i}"),
                vec![],
                &[Value::from("x")],
                &profile,
                &params(),
            );
            if out.corruption == Some(CorruptionKind::Swap) {
                assert_eq!(out.values, vec![Value::from("x")]);
                return;
            }
        }
        panic!("no swap corruption observed in 100 draws");
    }
}
