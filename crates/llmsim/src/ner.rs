//! Schema-guided named-entity recognition (the `ner.py` prompt
//! analogue).
//!
//! Recognition runs three passes over a text chunk:
//!
//! 1. **Gazetteer pass** — longest-match lookup of known schema
//!    entities (case-insensitive, up to 5-token windows).
//! 2. **Pattern pass** — quoted spans and capitalized token runs
//!    (skipping sentence-initial words unless they re-occur).
//! 3. **Code pass** — alphanumeric identifiers (flight codes like
//!    `CA981`, stock symbols like `AAPL`).
//!
//! Matches are deduplicated left-to-right, longest-first.

use crate::schema::Schema;
use multirag_retrieval::text::raw_tokens;

/// A recognized entity mention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mention {
    /// Canonical entity name (gazetteer-resolved when possible).
    pub name: String,
    /// Surface text as it appeared.
    pub surface: String,
    /// Recognition source.
    pub kind: MentionKind,
}

/// How a mention was recognized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MentionKind {
    /// Matched the schema gazetteer.
    Gazetteer,
    /// Quoted span.
    Quoted,
    /// Capitalized token run.
    Capitalized,
    /// Alphanumeric code (CA981, AAPL…).
    Code,
}

/// Extracts entity mentions from `text`, guided by `schema`.
pub fn extract_entities(text: &str, schema: &Schema) -> Vec<Mention> {
    let mut mentions: Vec<Mention> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut push =
        |name: String, surface: String, kind: MentionKind, mentions: &mut Vec<Mention>| {
            let key = crate::schema::normalize(&name);
            if key.is_empty() || !seen.insert(key) {
                return;
            }
            mentions.push(Mention {
                name,
                surface,
                kind,
            });
        };

    // Pass 1: gazetteer longest-match over token windows.
    let words: Vec<&str> = text.split_whitespace().collect();
    let mut i = 0;
    while i < words.len() {
        let mut matched = false;
        for len in (1..=5usize.min(words.len() - i)).rev() {
            let window = words[i..i + len].join(" ");
            let cleaned = trim_punct(&window);
            if let Some(canonical) = schema.resolve_entity(cleaned) {
                push(
                    canonical.to_string(),
                    cleaned.to_string(),
                    MentionKind::Gazetteer,
                    &mut mentions,
                );
                i += len;
                matched = true;
                break;
            }
        }
        if !matched {
            i += 1;
        }
    }

    // Pass 2a: quoted spans.
    for span in quoted_spans(text) {
        let canonical = schema.resolve_entity(&span).unwrap_or(&span).to_string();
        push(canonical, span.clone(), MentionKind::Quoted, &mut mentions);
    }

    // Pass 2b: capitalized runs (not sentence-initial-only words).
    for run in capitalized_runs(text) {
        let canonical = schema.resolve_entity(&run).unwrap_or(&run).to_string();
        push(
            canonical,
            run.clone(),
            MentionKind::Capitalized,
            &mut mentions,
        );
    }

    // Pass 3: codes.
    for code in codes(text) {
        let canonical = schema.resolve_entity(&code).unwrap_or(&code).to_string();
        push(canonical, code.clone(), MentionKind::Code, &mut mentions);
    }

    mentions
}

fn trim_punct(s: &str) -> &str {
    s.trim_matches(|c: char| !c.is_alphanumeric())
}

fn quoted_spans(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for quote in ['"', '\u{201c}'] {
        let close = if quote == '\u{201c}' {
            '\u{201d}'
        } else {
            quote
        };
        let mut rest = text;
        while let Some(start) = rest.find(quote) {
            let after = &rest[start + quote.len_utf8()..];
            let Some(end) = after.find(close) else {
                break;
            };
            let span = after[..end].trim();
            if !span.is_empty() && span.len() < 80 {
                out.push(span.to_string());
            }
            rest = &after[end + close.len_utf8()..];
        }
    }
    out
}

fn capitalized_runs(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for sentence in text.split(['.', '!', '?', '\n']) {
        let words: Vec<&str> = sentence.split_whitespace().collect();
        let mut run: Vec<&str> = Vec::new();
        for (pos, word) in words.iter().enumerate() {
            let cleaned = trim_punct(word);
            let is_cap = cleaned
                .chars()
                .next()
                .map(|c| c.is_uppercase())
                .unwrap_or(false)
                && cleaned.chars().any(|c| c.is_lowercase());
            // Sentence-initial capitalized words only count when the run
            // continues (multi-word names) — cuts "The", "It", etc.
            if is_cap && (pos > 0 || !run.is_empty() || next_is_cap(&words, pos)) {
                run.push(cleaned);
            } else {
                if keepable_run(&run, &words) {
                    out.push(run.join(" "));
                }
                run.clear();
            }
        }
        if keepable_run(&run, &words) {
            out.push(run.join(" "));
        }
    }
    out
}

/// A run is worth keeping unless it is empty or a lone sentence-initial
/// word ("The", "It", …).
fn keepable_run(run: &[&str], words: &[&str]) -> bool {
    match run.len() {
        0 => false,
        1 => !words_pos_is_initial(run, words),
        _ => true,
    }
}

fn next_is_cap(words: &[&str], pos: usize) -> bool {
    words.get(pos + 1).is_some_and(|w| {
        let c = trim_punct(w);
        c.chars()
            .next()
            .map(|ch| ch.is_uppercase())
            .unwrap_or(false)
    })
}

fn words_pos_is_initial(run: &[&str], words: &[&str]) -> bool {
    words
        .first()
        .map(|w| trim_punct(w) == run[0])
        .unwrap_or(false)
}

fn codes(text: &str) -> Vec<String> {
    raw_tokens(text)
        .into_iter()
        .filter(|t| {
            let has_upper_ctx =
                t.chars().any(|c| c.is_ascii_digit()) && t.chars().any(|c| c.is_ascii_alphabetic());
            let all_caps = t.len() >= 2
                && t.len() <= 6
                && t.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit());
            has_upper_ctx && all_caps
        })
        .map(|t| t.to_uppercase())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_entity_verbatim("CA981");
        s.add_entity("beijing capital airport", "Beijing Capital Airport");
        s.add_entity_verbatim("Christopher Nolan");
        s
    }

    #[test]
    fn gazetteer_matches_longest_first() {
        let mentions = extract_entities("The flight left Beijing Capital Airport late.", &schema());
        let names: Vec<&str> = mentions.iter().map(|m| m.name.as_str()).collect();
        assert!(names.contains(&"Beijing Capital Airport"));
        // Individual "Beijing" alone must not be a separate gazetteer hit.
        assert_eq!(
            mentions
                .iter()
                .filter(|m| m.kind == MentionKind::Gazetteer)
                .count(),
            1
        );
    }

    #[test]
    fn codes_are_recognized_and_uppercased() {
        let mentions = extract_entities("flight ca981 was delayed", &schema());
        assert!(mentions.iter().any(|m| m.name == "CA981"));
    }

    #[test]
    fn quoted_spans_are_entities() {
        let mentions = extract_entities("the report \"Typhoon In-Fa\" says so", &Schema::new());
        assert!(mentions.iter().any(|m| m.surface == "Typhoon In-Fa"));
    }

    #[test]
    fn capitalized_runs_are_entities() {
        let mentions = extract_entities(
            "We interviewed Christopher Nolan yesterday.",
            &Schema::new(),
        );
        assert!(mentions
            .iter()
            .any(|m| m.name == "Christopher Nolan" && m.kind == MentionKind::Capitalized));
    }

    #[test]
    fn sentence_initial_lone_capitals_are_skipped() {
        let mentions = extract_entities("The weather was bad. It rained.", &Schema::new());
        assert!(mentions.is_empty(), "got spurious mentions: {mentions:?}");
    }

    #[test]
    fn sentence_initial_multiword_names_survive() {
        let mentions = extract_entities("Michael Mann directed it.", &Schema::new());
        assert!(mentions.iter().any(|m| m.name == "Michael Mann"));
    }

    #[test]
    fn duplicates_are_merged() {
        let mentions = extract_entities("CA981 and again CA981 and ca981.", &schema());
        assert_eq!(mentions.iter().filter(|m| m.name == "CA981").count(), 1);
    }

    #[test]
    fn gazetteer_resolution_beats_surface_form() {
        let mut s = Schema::new();
        s.add_entity("the matrix", "The Matrix (1999)");
        let mentions = extract_entities("I rewatched The Matrix. It holds up.", &s);
        assert!(mentions.iter().any(|m| m.name == "The Matrix (1999)"));
    }

    #[test]
    fn empty_text_no_mentions() {
        assert!(extract_entities("", &schema()).is_empty());
    }
}
