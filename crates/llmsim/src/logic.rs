//! Logic-form generation (Algorithm 2, step 1).
//!
//! Parses a natural-language query into a [`LogicForm`]: a target
//! entity, a relation, and (for multi-hop questions) a chain of hops.
//! Recognized shapes:
//!
//! * `what is the <attr> of <ent>?`
//! * `who <verb-alias> <ent>?`  ("who directed Heat?")
//! * `<attr> of <ent>`
//! * `what is the <attr2> of the <attr1> of <ent>?` (two-hop chains)

use crate::schema::{normalize, Schema};

/// A parsed query: entity + relation chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicForm {
    /// The entity the query anchors on.
    pub entity: String,
    /// Relation chain from the entity to the asked value; length 1 for
    /// single-hop queries.
    pub relations: Vec<String>,
}

impl LogicForm {
    /// Single-hop convenience constructor.
    pub fn single(entity: impl Into<String>, relation: impl Into<String>) -> Self {
        Self {
            entity: entity.into(),
            relations: vec![relation.into()],
        }
    }

    /// The final relation in the chain (the asked attribute).
    pub fn target_relation(&self) -> &str {
        self.relations.last().expect("logic forms have ≥1 relation")
    }

    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.relations.len()
    }
}

/// Parses `query` into a logic form, resolving entities and relations
/// through `schema`. Returns `None` when no shape matches.
pub fn generate_logic_form(query: &str, schema: &Schema) -> Option<LogicForm> {
    let q = normalize(query);
    let q = q
        .trim_start_matches("what is ")
        .trim_start_matches("what are ")
        .trim_start_matches("what was ")
        .trim();

    // Shape: "who <verb> <ent>"
    if let Some(rest) = normalize(query).strip_prefix("who ") {
        let words: Vec<&str> = rest.split_whitespace().collect();
        for take in (1..=3usize.min(words.len().saturating_sub(1))).rev() {
            let phrase = words[..take].join(" ");
            if let Some(relation) = schema.resolve_relation(&phrase) {
                let ent_raw = words[take..].join(" ");
                let entity = resolve_entity_tail(&ent_raw, schema)?;
                return Some(LogicForm::single(entity, relation));
            }
        }
    }

    // Shape: "[the] <attrN> of [the] <attrN-1> of ... of <ent>"
    let parts: Vec<&str> = q.split(" of ").collect();
    if parts.len() >= 2 {
        let entity_raw = parts.last().expect("len>=2");
        let entity = resolve_entity_tail(entity_raw, schema)?;
        let mut relations = Vec::with_capacity(parts.len() - 1);
        for attr in &parts[..parts.len() - 1] {
            let attr = attr.trim_start_matches("the ").trim();
            let relation = schema.resolve_relation(attr)?;
            relations.push(relation.to_string());
        }
        // Innermost attribute applies first: "the director of the sequel
        // of X" = sequel(X) then director.
        relations.reverse();
        return Some(LogicForm { entity, relations });
    }

    None
}

/// Resolves the entity tail of a query, trying the gazetteer first and
/// falling back to the cleaned surface form.
fn resolve_entity_tail(raw: &str, schema: &Schema) -> Option<String> {
    let cleaned = raw.trim_start_matches("the ").trim();
    if cleaned.is_empty() {
        return None;
    }
    Some(
        schema
            .resolve_entity(cleaned)
            .map(str::to_string)
            .unwrap_or_else(|| cleaned.to_string()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_entity_verbatim("CA981");
        s.add_entity("heat", "Heat");
        s.add_relation_alias("directed", "director");
        s.add_relation("status");
        s.add_relation("departure_time");
        s.add_relation_alias("departure time", "departure_time");
        s.add_relation("sequel");
        s.add_relation("director");
        s
    }

    #[test]
    fn parses_what_is_the_attr_of_ent() {
        let lf = generate_logic_form("What is the status of CA981?", &schema()).unwrap();
        assert_eq!(lf, LogicForm::single("CA981", "status"));
        assert_eq!(lf.hops(), 1);
    }

    #[test]
    fn parses_who_verb_ent() {
        let lf = generate_logic_form("Who directed Heat?", &schema()).unwrap();
        assert_eq!(lf, LogicForm::single("Heat", "director"));
    }

    #[test]
    fn parses_bare_attr_of_ent() {
        let lf = generate_logic_form("departure time of ca981", &schema()).unwrap();
        assert_eq!(lf.entity, "CA981");
        assert_eq!(lf.target_relation(), "departure_time");
    }

    #[test]
    fn parses_two_hop_chains_in_application_order() {
        let lf =
            generate_logic_form("What is the director of the sequel of Heat?", &schema()).unwrap();
        assert_eq!(lf.entity, "Heat");
        assert_eq!(
            lf.relations,
            vec!["sequel".to_string(), "director".to_string()]
        );
        assert_eq!(lf.target_relation(), "director");
        assert_eq!(lf.hops(), 2);
    }

    #[test]
    fn unknown_relation_fails() {
        assert!(generate_logic_form("What is the smell of CA981?", &schema()).is_none());
    }

    #[test]
    fn unknown_entity_passes_through_as_surface() {
        let lf = generate_logic_form("What is the status of XY123?", &schema()).unwrap();
        assert_eq!(lf.entity, "xy123");
    }

    #[test]
    fn garbage_queries_fail_gracefully() {
        assert!(generate_logic_form("", &schema()).is_none());
        assert!(generate_logic_form("tell me a joke", &schema()).is_none());
    }

    #[test]
    fn entity_resolution_is_case_insensitive() {
        let lf = generate_logic_form("what is the status of HEAT?", &schema()).unwrap();
        assert_eq!(lf.entity, "Heat");
    }
}
