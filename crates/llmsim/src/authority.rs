//! LLM-assessed node authority (Eq. 10 / the PTCA analogue).
//!
//! The paper has an "expert LLM" integrate "the association strength
//! between entities, entity type information, and multi-step path
//! information" into a credibility score `C_LLM(v)`, then squashes it
//! through a sigmoid (Eq. 10). Here `C_LLM` is an explicit feature
//! combination with bounded deterministic jitter standing in for the
//! LLM's judgement noise.

use crate::determinism::jitter;

/// Graph-derived features of a node under assessment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuthorityFeatures {
    /// Degree of the node's entity in the knowledge graph.
    pub degree: usize,
    /// Largest degree in the graph (for normalization).
    pub max_degree: usize,
    /// How well the value's type matches the attribute's dominant type
    /// (`1.0` = perfectly typical).
    pub type_consistency: f64,
    /// Fraction of multi-step paths that corroborate the claim.
    pub path_support: f64,
    /// Prior reputation of the asserting source in `[0, 1]`.
    pub source_reputation: f64,
}

/// Feature weights of the simulated expert assessment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuthorityWeights {
    /// Weight of normalized degree (global influence).
    pub degree: f64,
    /// Weight of type consistency.
    pub type_consistency: f64,
    /// Weight of path support (local connection strength).
    pub path_support: f64,
    /// Weight of source reputation.
    pub source_reputation: f64,
    /// Magnitude of the deterministic judgement jitter.
    pub noise: f64,
}

impl Default for AuthorityWeights {
    fn default() -> Self {
        Self {
            degree: 0.20,
            type_consistency: 0.25,
            path_support: 0.25,
            source_reputation: 0.30,
            noise: 0.05,
        }
    }
}

/// The raw expert score `C_LLM(v) ∈ [0, 1]`.
pub fn c_llm(
    features: &AuthorityFeatures,
    weights: &AuthorityWeights,
    seed: u64,
    key: &str,
) -> f64 {
    let degree_norm = if features.max_degree == 0 {
        0.0
    } else {
        // Log scaling: influence grows sub-linearly with degree.
        (1.0 + features.degree as f64).ln() / (1.0 + features.max_degree as f64).ln()
    };
    let score = weights.degree * degree_norm
        + weights.type_consistency * features.type_consistency.clamp(0.0, 1.0)
        + weights.path_support * features.path_support.clamp(0.0, 1.0)
        + weights.source_reputation * features.source_reputation.clamp(0.0, 1.0)
        + jitter(seed, key, weights.noise);
    score.clamp(0.0, 1.0)
}

/// Eq. 10: `Auth_LLM(v) = 1 / (1 + e^{−β·(C_LLM(v) − c̄)})`, where `c̄`
/// is the mean `C_LLM` over the candidate nodes (the paper normalizes by
/// the average of all nodes' scores) and `β` controls the steepness.
pub fn auth_llm(c: f64, c_mean: f64, beta: f64) -> f64 {
    1.0 / (1.0 + (-beta * (c - c_mean)).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(degree: usize, tc: f64, ps: f64, rep: f64) -> AuthorityFeatures {
        AuthorityFeatures {
            degree,
            max_degree: 100,
            type_consistency: tc,
            path_support: ps,
            source_reputation: rep,
        }
    }

    #[test]
    fn score_is_bounded() {
        let w = AuthorityWeights::default();
        for i in 0..50 {
            let c = c_llm(&features(i * 2, 1.0, 1.0, 1.0), &w, 7, &format!("n{i}"));
            assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn better_features_score_higher() {
        let w = AuthorityWeights {
            noise: 0.0,
            ..AuthorityWeights::default()
        };
        let weak = c_llm(&features(1, 0.2, 0.1, 0.3), &w, 1, "a");
        let strong = c_llm(&features(80, 0.9, 0.9, 0.9), &w, 1, "a");
        assert!(strong > weak + 0.3);
    }

    #[test]
    fn degree_scaling_is_sublinear() {
        let w = AuthorityWeights {
            noise: 0.0,
            ..AuthorityWeights::default()
        };
        // Equal +10 degree steps must yield shrinking gains.
        let d10 = c_llm(&features(10, 0.0, 0.0, 0.0), &w, 1, "a");
        let d20 = c_llm(&features(20, 0.0, 0.0, 0.0), &w, 1, "a");
        let d30 = c_llm(&features(30, 0.0, 0.0, 0.0), &w, 1, "a");
        let d40 = c_llm(&features(40, 0.0, 0.0, 0.0), &w, 1, "a");
        assert!(d20 - d10 > d40 - d30, "marginal degree gains shrink");
    }

    #[test]
    fn zero_max_degree_is_safe() {
        let w = AuthorityWeights::default();
        let f = AuthorityFeatures {
            degree: 0,
            max_degree: 0,
            type_consistency: 0.5,
            path_support: 0.5,
            source_reputation: 0.5,
        };
        let c = c_llm(&f, &w, 1, "n");
        assert!(c.is_finite());
    }

    #[test]
    fn jitter_is_deterministic_per_key() {
        let w = AuthorityWeights::default();
        let f = features(10, 0.5, 0.5, 0.5);
        assert_eq!(c_llm(&f, &w, 3, "node-1"), c_llm(&f, &w, 3, "node-1"));
        assert_ne!(c_llm(&f, &w, 3, "node-1"), c_llm(&f, &w, 3, "node-2"));
    }

    #[test]
    fn sigmoid_centers_at_mean() {
        assert!((auth_llm(0.5, 0.5, 0.5) - 0.5).abs() < 1e-12);
        assert!(auth_llm(0.9, 0.5, 0.5) > 0.5);
        assert!(auth_llm(0.1, 0.5, 0.5) < 0.5);
    }

    #[test]
    fn beta_controls_steepness() {
        let gentle = auth_llm(0.9, 0.5, 0.5) - 0.5;
        let steep = auth_llm(0.9, 0.5, 5.0) - 0.5;
        assert!(steep > gentle);
    }

    #[test]
    fn sigmoid_is_monotone() {
        let mut last = 0.0;
        for i in 0..=10 {
            let c = f64::from(i) / 10.0;
            let a = auth_llm(c, 0.5, 2.0);
            assert!(a >= last);
            last = a;
        }
    }
}
