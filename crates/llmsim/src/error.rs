//! Typed failures surfaced by the fallible [`crate::MockLlm`] calls.
//!
//! Under a fault plan an LLM call can fail outright; the retry policy
//! re-rolls it with seeded backoff, and when that is not enough the
//! caller receives one of these instead of a silent success. The
//! pipeline turns them into degraded-mode decisions (skip a node score,
//! abstain on a query) rather than panicking.

use std::fmt;

/// A simulated LLM call that did not produce an answer.
#[derive(Debug, Clone, PartialEq)]
pub enum LlmError {
    /// Every allowed attempt failed.
    Exhausted {
        /// The logical call that failed (the fault-plan key).
        call_key: String,
        /// Attempts made, including the first.
        attempts: u32,
    },
    /// The per-call simulated-time budget ran out before the attempts
    /// did.
    DeadlineExceeded {
        /// The logical call that failed (the fault-plan key).
        call_key: String,
        /// Attempts made before the budget ran out.
        attempts: u32,
        /// The budget that was exceeded, in simulated ms.
        budget_ms: f64,
    },
}

impl LlmError {
    /// The fault-plan key of the failed call.
    pub fn call_key(&self) -> &str {
        match self {
            LlmError::Exhausted { call_key, .. } | LlmError::DeadlineExceeded { call_key, .. } => {
                call_key
            }
        }
    }

    /// Attempts made before giving up.
    pub fn attempts(&self) -> u32 {
        match self {
            LlmError::Exhausted { attempts, .. } | LlmError::DeadlineExceeded { attempts, .. } => {
                *attempts
            }
        }
    }
}

impl fmt::Display for LlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlmError::Exhausted { call_key, attempts } => {
                write!(f, "llm call `{call_key}` failed after {attempts} attempt(s)")
            }
            LlmError::DeadlineExceeded {
                call_key,
                attempts,
                budget_ms,
            } => write!(
                f,
                "llm call `{call_key}` exceeded its {budget_ms:.0}ms budget after {attempts} attempt(s)"
            ),
        }
    }
}

impl std::error::Error for LlmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_both_variants() {
        let a = LlmError::Exhausted {
            call_key: "k1".into(),
            attempts: 3,
        };
        let b = LlmError::DeadlineExceeded {
            call_key: "k2".into(),
            attempts: 2,
            budget_ms: 500.0,
        };
        assert_eq!(a.call_key(), "k1");
        assert_eq!(a.attempts(), 3);
        assert_eq!(b.call_key(), "k2");
        assert_eq!(b.attempts(), 2);
    }

    #[test]
    fn display_is_informative() {
        let e = LlmError::Exhausted {
            call_key: "logic:q7".into(),
            attempts: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("logic:q7"));
        assert!(msg.contains('3'));
    }
}
