//! Extraction schema.
//!
//! The paper defines "relevant entity types in the schema" and relation
//! lists that guide OpenSPG's SchemaFreeExtractor prompts. [`Schema`]
//! plays that role here: entity gazetteer, relation vocabulary with
//! natural-language aliases, and entity alias tables for
//! standardization.

use multirag_kg::FxHashMap;

/// Extraction schema guiding NER, triple extraction and logic-form
/// generation.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    /// Known entity surface forms → canonical names (the gazetteer).
    entities: FxHashMap<String, String>,
    /// Relation names in canonical (snake_case) form.
    relations: Vec<String>,
    /// Natural-language alias → relation name ("directed by" →
    /// "director").
    relation_aliases: FxHashMap<String, String>,
    /// Declared entity types ("movie", "flight", …) — informational.
    entity_types: Vec<String>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an entity and its canonical name. The surface form is
    /// matched case-insensitively.
    pub fn add_entity(&mut self, surface: &str, canonical: &str) {
        self.entities
            .insert(normalize(surface), canonical.to_string());
    }

    /// Registers an entity whose surface form is its canonical name.
    pub fn add_entity_verbatim(&mut self, name: &str) {
        self.add_entity(name, name);
    }

    /// Registers a relation.
    pub fn add_relation(&mut self, name: &str) {
        if !self.relations.iter().any(|r| r == name) {
            self.relations.push(name.to_string());
        }
        // A relation is trivially an alias of itself, including a
        // space-separated variant of snake_case.
        self.relation_aliases
            .insert(normalize(name), name.to_string());
        self.relation_aliases
            .insert(normalize(&name.replace('_', " ")), name.to_string());
    }

    /// Registers a natural-language alias for a relation.
    pub fn add_relation_alias(&mut self, alias: &str, relation: &str) {
        self.add_relation(relation);
        self.relation_aliases
            .insert(normalize(alias), relation.to_string());
    }

    /// Declares an entity type.
    pub fn add_entity_type(&mut self, name: &str) {
        if !self.entity_types.iter().any(|t| t == name) {
            self.entity_types.push(name.to_string());
        }
    }

    /// Canonical name for a surface form, if known.
    pub fn resolve_entity(&self, surface: &str) -> Option<&str> {
        self.entities.get(&normalize(surface)).map(String::as_str)
    }

    /// Relation behind a natural-language phrase, if known.
    pub fn resolve_relation(&self, phrase: &str) -> Option<&str> {
        self.relation_aliases
            .get(&normalize(phrase))
            .map(String::as_str)
    }

    /// All canonical relations.
    pub fn relations(&self) -> &[String] {
        &self.relations
    }

    /// All declared entity types.
    pub fn entity_types(&self) -> &[String] {
        &self.entity_types
    }

    /// Number of gazetteer entries.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Iterates `(normalized_surface, canonical)` pairs.
    pub fn entities(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entities.iter().map(|(s, c)| (s.as_str(), c.as_str()))
    }
}

/// Normalizes a surface form for matching: lowercase, collapsed
/// whitespace, no punctuation.
pub fn normalize(text: &str) -> String {
    multirag_retrieval::text::normalize_mention(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_resolution_is_case_and_punct_insensitive() {
        let mut schema = Schema::new();
        schema.add_entity("J.R.R. Tolkien", "J. R. R. Tolkien");
        assert_eq!(
            schema.resolve_entity("j r r tolkien"),
            Some("J. R. R. Tolkien")
        );
        assert_eq!(
            schema.resolve_entity("J.R.R. TOLKIEN"),
            Some("J. R. R. Tolkien")
        );
        assert_eq!(schema.resolve_entity("unknown"), None);
    }

    #[test]
    fn relation_aliases_resolve() {
        let mut schema = Schema::new();
        schema.add_relation_alias("directed by", "director");
        schema.add_relation_alias("who directed", "director");
        assert_eq!(schema.resolve_relation("Directed By"), Some("director"));
        assert_eq!(schema.resolve_relation("who directed"), Some("director"));
        assert_eq!(schema.resolve_relation("director"), Some("director"));
        assert_eq!(schema.relations(), &["director".to_string()]);
    }

    #[test]
    fn snake_case_relations_match_spaced_phrases() {
        let mut schema = Schema::new();
        schema.add_relation("departure_time");
        assert_eq!(
            schema.resolve_relation("departure time"),
            Some("departure_time")
        );
    }

    #[test]
    fn duplicate_registrations_are_idempotent() {
        let mut schema = Schema::new();
        schema.add_relation("year");
        schema.add_relation("year");
        schema.add_entity_type("movie");
        schema.add_entity_type("movie");
        assert_eq!(schema.relations().len(), 1);
        assert_eq!(schema.entity_types().len(), 1);
    }

    #[test]
    fn verbatim_entities() {
        let mut schema = Schema::new();
        schema.add_entity_verbatim("CA981");
        assert_eq!(schema.resolve_entity("ca981"), Some("CA981"));
        assert_eq!(schema.entity_count(), 1);
    }
}
