//! Extraction schema.
//!
//! The paper defines "relevant entity types in the schema" and relation
//! lists that guide OpenSPG's SchemaFreeExtractor prompts. [`Schema`]
//! plays that role here: entity gazetteer, relation vocabulary with
//! natural-language aliases, and entity alias tables for
//! standardization.

use multirag_kg::{FxHashMap, FxHasher};
use std::hash::{Hash, Hasher};

/// Extraction schema guiding NER, triple extraction and logic-form
/// generation.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    /// Known entity surface forms → canonical names (the gazetteer).
    entities: FxHashMap<String, String>,
    /// Relation names in canonical (snake_case) form.
    relations: Vec<String>,
    /// Natural-language alias → relation name ("directed by" →
    /// "director").
    relation_aliases: FxHashMap<String, String>,
    /// Declared entity types ("movie", "flight", …) — informational.
    entity_types: Vec<String>,
    /// Incremental content fingerprint: the XOR of every live entry's
    /// hash, so it is order-independent and updated in O(1) per
    /// mutation. Response-cache keys include it so a schema change
    /// (a new epoch's graph) namespaces the cache instead of serving
    /// stale parses.
    fingerprint: u64,
}

fn entry_hash(kind: &str, key: &str, value: &str) -> u64 {
    let mut h = FxHasher::default();
    kind.hash(&mut h);
    key.hash(&mut h);
    value.hash(&mut h);
    h.finish()
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an entity and its canonical name. The surface form is
    /// matched case-insensitively.
    pub fn add_entity(&mut self, surface: &str, canonical: &str) {
        let norm = normalize(surface);
        if let Some(old) = self.entities.insert(norm.clone(), canonical.to_string()) {
            self.fingerprint ^= entry_hash("ent", &norm, &old);
        }
        self.fingerprint ^= entry_hash("ent", &norm, canonical);
    }

    /// Registers an entity whose surface form is its canonical name.
    pub fn add_entity_verbatim(&mut self, name: &str) {
        self.add_entity(name, name);
    }

    /// Registers a relation.
    pub fn add_relation(&mut self, name: &str) {
        if !self.relations.iter().any(|r| r == name) {
            self.relations.push(name.to_string());
            self.fingerprint ^= entry_hash("rel", name, "");
        }
        // A relation is trivially an alias of itself, including a
        // space-separated variant of snake_case.
        self.insert_alias(&normalize(name), name);
        self.insert_alias(&normalize(&name.replace('_', " ")), name);
    }

    /// Registers a natural-language alias for a relation.
    pub fn add_relation_alias(&mut self, alias: &str, relation: &str) {
        self.add_relation(relation);
        self.insert_alias(&normalize(alias), relation);
    }

    fn insert_alias(&mut self, norm: &str, relation: &str) {
        if let Some(old) = self
            .relation_aliases
            .insert(norm.to_string(), relation.to_string())
        {
            self.fingerprint ^= entry_hash("ali", norm, &old);
        }
        self.fingerprint ^= entry_hash("ali", norm, relation);
    }

    /// Declares an entity type.
    pub fn add_entity_type(&mut self, name: &str) {
        if !self.entity_types.iter().any(|t| t == name) {
            self.entity_types.push(name.to_string());
            self.fingerprint ^= entry_hash("typ", name, "");
        }
    }

    /// Order-independent content fingerprint of the whole schema.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Canonical name for a surface form, if known.
    pub fn resolve_entity(&self, surface: &str) -> Option<&str> {
        self.entities.get(&normalize(surface)).map(String::as_str)
    }

    /// Relation behind a natural-language phrase, if known.
    pub fn resolve_relation(&self, phrase: &str) -> Option<&str> {
        self.relation_aliases
            .get(&normalize(phrase))
            .map(String::as_str)
    }

    /// All canonical relations.
    pub fn relations(&self) -> &[String] {
        &self.relations
    }

    /// All declared entity types.
    pub fn entity_types(&self) -> &[String] {
        &self.entity_types
    }

    /// Number of gazetteer entries.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Iterates `(normalized_surface, canonical)` pairs.
    pub fn entities(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entities.iter().map(|(s, c)| (s.as_str(), c.as_str()))
    }
}

/// Normalizes a surface form for matching: lowercase, collapsed
/// whitespace, no punctuation.
pub fn normalize(text: &str) -> String {
    multirag_retrieval::text::normalize_mention(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_resolution_is_case_and_punct_insensitive() {
        let mut schema = Schema::new();
        schema.add_entity("J.R.R. Tolkien", "J. R. R. Tolkien");
        assert_eq!(
            schema.resolve_entity("j r r tolkien"),
            Some("J. R. R. Tolkien")
        );
        assert_eq!(
            schema.resolve_entity("J.R.R. TOLKIEN"),
            Some("J. R. R. Tolkien")
        );
        assert_eq!(schema.resolve_entity("unknown"), None);
    }

    #[test]
    fn relation_aliases_resolve() {
        let mut schema = Schema::new();
        schema.add_relation_alias("directed by", "director");
        schema.add_relation_alias("who directed", "director");
        assert_eq!(schema.resolve_relation("Directed By"), Some("director"));
        assert_eq!(schema.resolve_relation("who directed"), Some("director"));
        assert_eq!(schema.resolve_relation("director"), Some("director"));
        assert_eq!(schema.relations(), &["director".to_string()]);
    }

    #[test]
    fn snake_case_relations_match_spaced_phrases() {
        let mut schema = Schema::new();
        schema.add_relation("departure_time");
        assert_eq!(
            schema.resolve_relation("departure time"),
            Some("departure_time")
        );
    }

    #[test]
    fn duplicate_registrations_are_idempotent() {
        let mut schema = Schema::new();
        schema.add_relation("year");
        schema.add_relation("year");
        schema.add_entity_type("movie");
        schema.add_entity_type("movie");
        assert_eq!(schema.relations().len(), 1);
        assert_eq!(schema.entity_types().len(), 1);
    }

    #[test]
    fn fingerprint_tracks_content_not_order() {
        let mut a = Schema::new();
        a.add_relation("year");
        a.add_entity_verbatim("CA981");
        let mut b = Schema::new();
        b.add_entity_verbatim("CA981");
        b.add_relation("year");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), Schema::new().fingerprint());
        // Idempotent registration leaves the fingerprint alone...
        let before = a.fingerprint();
        a.add_relation("year");
        a.add_entity_verbatim("CA981");
        assert_eq!(a.fingerprint(), before);
        // ...while new content moves it.
        a.add_entity_verbatim("CA982");
        assert_ne!(a.fingerprint(), before);
        // Remapping an existing surface form also moves it.
        let mut c = Schema::new();
        c.add_entity("x", "X1");
        let c1 = c.fingerprint();
        c.add_entity("x", "X2");
        assert_ne!(c.fingerprint(), c1);
    }

    #[test]
    fn verbatim_entities() {
        let mut schema = Schema::new();
        schema.add_entity_verbatim("CA981");
        assert_eq!(schema.resolve_entity("ca981"), Some("CA981"));
        assert_eq!(schema.entity_count(), 1);
    }
}
