//! SPO triple extraction and entity standardization (the `triple.py`
//! and `std.py` prompt analogues).
//!
//! Extraction is pattern-driven over sentences, constrained — exactly
//! as the paper's `triple.py` instruction requires — to subjects that
//! appear in the entity list produced by NER. Supported shapes:
//!
//! * `the <attr> of <ent> is/was <val>`
//! * `<ent>'s <attr> is/was <val>`
//! * `<ent> <attr>: <val>` (colon-separated key-value)
//! * `<ent> is/was <attr-verb> by <val>` (passive: "directed by")
//! * `<ent> <verb-phrase> <val>` for schema relation aliases
//!   ("departs from", "arrives at")

use crate::ner::{extract_entities, Mention};
use crate::schema::{normalize, Schema};
use multirag_kg::Value;

/// An extracted `(subject, predicate, object)` triple.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractedTriple {
    /// Canonical subject entity.
    pub subject: String,
    /// Canonical relation.
    pub predicate: String,
    /// Extracted object value (standardized).
    pub object: Value,
}

/// Extracts SPO triples from a text chunk, guided by `schema`.
/// Subjects are constrained to NER mentions; predicates to schema
/// relations (aliases included).
pub fn extract_triples(text: &str, schema: &Schema) -> Vec<ExtractedTriple> {
    let mentions = extract_entities(text, schema);
    if mentions.is_empty() {
        return Vec::new();
    }
    let mut out: Vec<ExtractedTriple> = Vec::new();
    for sentence in text.split(['.', '!', '?', '\n']) {
        let sentence = sentence.trim();
        if sentence.is_empty() {
            continue;
        }
        for triple in extract_from_sentence(sentence, &mentions, schema) {
            if !out.contains(&triple) {
                out.push(triple);
            }
        }
    }
    out
}

fn extract_from_sentence(
    sentence: &str,
    mentions: &[Mention],
    schema: &Schema,
) -> Vec<ExtractedTriple> {
    let mut out = Vec::new();
    let lower = sentence.to_lowercase();

    // Shape: "the <attr> of <ent> is <val>"
    if let Some(rest) = lower.strip_prefix("the ") {
        if let Some(of_pos) = rest.find(" of ") {
            let attr = &rest[..of_pos];
            let tail = &rest[of_pos + 4..];
            if let Some((ent_part, val_part)) = split_copula(tail) {
                if let Some(subject) = match_mention(ent_part, mentions) {
                    if let Some(relation) = schema.resolve_relation(attr) {
                        out.push(ExtractedTriple {
                            subject,
                            predicate: relation.to_string(),
                            object: standardize_value(val_part),
                        });
                    }
                }
            }
        }
    }

    // Shape: "<ent>'s <attr> is <val>"
    if let Some(apos) = lower.find("'s ") {
        let ent_part = &lower[..apos];
        let tail = &lower[apos + 3..];
        if let Some((attr_part, val_part)) = split_copula(tail) {
            if let Some(subject) = match_mention(ent_part, mentions) {
                if let Some(relation) = schema.resolve_relation(attr_part) {
                    out.push(ExtractedTriple {
                        subject,
                        predicate: relation.to_string(),
                        object: standardize_value(val_part),
                    });
                }
            }
        }
    }

    // Shape: "<ent> <attr>: <val>"
    if let Some(colon) = sentence.find(':') {
        let head = &sentence[..colon];
        let val_part = sentence[colon + 1..].trim();
        let head_lower = head.to_lowercase();
        // Longest mention that prefixes the head; the rest is the attr.
        for mention in mentions {
            let m_norm = normalize(&mention.surface);
            let head_norm = normalize(&head_lower);
            if let Some(attr) = head_norm.strip_prefix(&m_norm) {
                let attr = attr.trim();
                if attr.is_empty() {
                    continue;
                }
                if let Some(relation) = schema.resolve_relation(attr) {
                    out.push(ExtractedTriple {
                        subject: mention.name.clone(),
                        predicate: relation.to_string(),
                        object: standardize_value(val_part),
                    });
                    break;
                }
            }
        }
    }

    // Shape: "<ent> is/was <verb> by <val>" (passive voice).
    for copula in [" was ", " is ", " were ", " are "] {
        if let Some(cop_pos) = lower.find(copula) {
            let ent_part = &lower[..cop_pos];
            let tail = &lower[cop_pos + copula.len()..];
            if let Some(by_pos) = tail.find(" by ") {
                let verb = tail[..by_pos].trim();
                let val_part = tail[by_pos + 4..].trim();
                if let Some(subject) = match_mention(ent_part, mentions) {
                    let phrase = format!("{verb} by");
                    if let Some(relation) = schema
                        .resolve_relation(&phrase)
                        .or_else(|| schema.resolve_relation(verb))
                    {
                        out.push(ExtractedTriple {
                            subject,
                            predicate: relation.to_string(),
                            object: standardize_value(val_part),
                        });
                    }
                }
            }
        }
    }

    // Shape: "<ent> <verb-phrase> <val>" for registered aliases.
    for mention in mentions {
        let m_norm = normalize(&mention.surface);
        let s_norm = normalize(&lower);
        if let Some(after) = s_norm.strip_prefix(&m_norm) {
            let after = after.trim();
            // Try progressively shorter verb phrases (up to 3 tokens).
            let words: Vec<&str> = after.split_whitespace().collect();
            for take in (1..=3usize.min(words.len().saturating_sub(1))).rev() {
                let phrase = words[..take].join(" ");
                if let Some(relation) = schema.resolve_relation(&phrase) {
                    let val_part = words[take..].join(" ");
                    if !val_part.is_empty() {
                        out.push(ExtractedTriple {
                            subject: mention.name.clone(),
                            predicate: relation.to_string(),
                            object: standardize_value(&val_part),
                        });
                        break;
                    }
                }
            }
        }
    }

    out
}

/// Splits `"<head> is/was/are/were <tail>"`.
fn split_copula(text: &str) -> Option<(&str, &str)> {
    for copula in [" is ", " was ", " are ", " were "] {
        if let Some(pos) = text.find(copula) {
            return Some((text[..pos].trim(), text[pos + copula.len()..].trim()));
        }
    }
    None
}

/// Strips a leading article from a normalized phrase.
fn strip_article(s: &str) -> &str {
    s.strip_prefix("the ")
        .or_else(|| s.strip_prefix("a "))
        .or_else(|| s.strip_prefix("an "))
        .unwrap_or(s)
}

/// Finds the mention whose normalized surface matches `text` (articles
/// stripped on both sides), preferring the longest.
fn match_mention(text: &str, mentions: &[Mention]) -> Option<String> {
    let full = normalize(text.trim());
    let cleaned = strip_article(&full).to_string();
    let mut best: Option<&Mention> = None;
    for mention in mentions {
        let m_norm = normalize(&mention.surface);
        let n_norm = normalize(&mention.name);
        let m_stripped = strip_article(&m_norm);
        let n_stripped = strip_article(&n_norm);
        let hit = full == m_norm
            || full == n_norm
            || cleaned == m_stripped
            || cleaned == n_stripped
            || full.ends_with(&m_norm);
        if hit && best.is_none_or(|b| normalize(&b.surface).len() < m_norm.len()) {
            best = Some(mention);
        }
    }
    best.map(|m| m.name.clone())
}

/// Entity / value standardization (the `std.py` analogue): trims,
/// collapses whitespace, strips trailing punctuation, and sniffs
/// numerics. Multi-valued "A and B" / "A, B" objects become lists.
pub fn standardize_value(raw: &str) -> Value {
    let cleaned = raw
        .trim()
        .trim_end_matches(['.', ',', ';', '!', '?'])
        .trim();
    // Multi-valued split: "x, y and z" → [x, y, z].
    let parts: Vec<&str> = cleaned
        .split(',')
        .flat_map(|p| p.split(" and "))
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .collect();
    if parts.len() > 1 {
        return Value::List(parts.iter().map(|p| standardize_scalar(p)).collect());
    }
    standardize_scalar(cleaned)
}

fn standardize_scalar(text: &str) -> Value {
    let collapsed: String = text.split_whitespace().collect::<Vec<_>>().join(" ");
    if let Ok(i) = collapsed.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = collapsed.parse::<f64>() {
        if f.is_finite() {
            return Value::Float(f);
        }
    }
    Value::Str(collapsed)
}

/// Standardizes an entity mention for graph insertion: collapses
/// whitespace and resolves through the schema gazetteer when possible.
pub fn standardize_entity(raw: &str, schema: &Schema) -> String {
    let collapsed: String = raw.split_whitespace().collect::<Vec<_>>().join(" ");
    schema
        .resolve_entity(&collapsed)
        .map(str::to_string)
        .unwrap_or(collapsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_entity_verbatim("CA981");
        s.add_entity_verbatim("Heat");
        s.add_entity_verbatim("Inception");
        s.add_relation_alias("status", "status");
        s.add_relation_alias("directed by", "director");
        s.add_relation_alias("directed", "director");
        s.add_relation_alias("departs from", "departs_from");
        s.add_relation("departure_time");
        s.add_relation_alias("departure time", "departure_time");
        s.add_relation("year");
        s
    }

    #[test]
    fn extracts_the_attr_of_ent_shape() {
        let triples = extract_triples("The status of CA981 is delayed.", &schema());
        assert_eq!(
            triples,
            vec![ExtractedTriple {
                subject: "CA981".into(),
                predicate: "status".into(),
                object: Value::from("delayed"),
            }]
        );
    }

    #[test]
    fn extracts_possessive_shape() {
        let triples = extract_triples("CA981's departure time is 14:30.", &schema());
        assert!(triples.iter().any(|t| t.subject == "CA981"
            && t.predicate == "departure_time"
            && t.object == Value::from("14:30")));
    }

    #[test]
    fn extracts_colon_shape() {
        let triples = extract_triples("CA981 status: on-time", &schema());
        assert!(triples
            .iter()
            .any(|t| t.predicate == "status" && t.object == Value::from("on-time")));
    }

    #[test]
    fn extracts_passive_voice() {
        let triples = extract_triples("Heat was directed by Michael Mann.", &schema());
        assert!(triples.iter().any(|t| t.subject == "Heat"
            && t.predicate == "director"
            && t.object == Value::from("michael mann")));
    }

    #[test]
    fn extracts_verb_phrase_alias() {
        let triples = extract_triples("CA981 departs from Beijing.", &schema());
        assert!(triples
            .iter()
            .any(|t| t.subject == "CA981" && t.predicate == "departs_from"));
    }

    #[test]
    fn subjects_must_be_known_entities() {
        // "UnknownFilm" isn't in the gazetteer or capitalizable in a way
        // that survives; and is not in mentions, so no triple.
        let triples = extract_triples("The year of unknownfilm is 1990.", &schema());
        assert!(triples.is_empty());
    }

    #[test]
    fn multivalued_objects_split() {
        let v = standardize_value("Lana Wachowski and Lilly Wachowski");
        let list = v.as_list().unwrap();
        assert_eq!(list.len(), 2);
        let v = standardize_value("a, b and c");
        assert_eq!(v.as_list().unwrap().len(), 3);
    }

    #[test]
    fn standardize_sniffs_numbers() {
        assert_eq!(standardize_value(" 1995. "), Value::Int(1995));
        assert_eq!(standardize_value("3.5"), Value::Float(3.5));
        assert_eq!(standardize_value("n/a"), Value::from("n/a"));
    }

    #[test]
    fn standardize_collapses_whitespace() {
        assert_eq!(
            standardize_value("  two   words  "),
            Value::from("two words")
        );
    }

    #[test]
    fn standardize_entity_resolves_gazetteer() {
        let s = schema();
        assert_eq!(standardize_entity("  ca981 ", &s), "CA981");
        assert_eq!(standardize_entity("Novel  Name", &s), "Novel Name");
    }

    #[test]
    fn duplicate_triples_are_merged() {
        let text = "The status of CA981 is delayed. The status of CA981 is delayed.";
        let triples = extract_triples(text, &schema());
        assert_eq!(triples.len(), 1);
    }

    #[test]
    fn multiple_sentences_yield_multiple_triples() {
        let text = "The status of CA981 is delayed. The year of Heat is 1995.";
        let triples = extract_triples(text, &schema());
        assert_eq!(triples.len(), 2);
    }

    #[test]
    fn empty_text_or_schema_is_safe() {
        assert!(extract_triples("", &schema()).is_empty());
        assert!(extract_triples("some text", &Schema::new()).is_empty());
    }
}
