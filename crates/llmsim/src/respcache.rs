//! Content-addressed LLM response cache — the serving subsystem's L3.
//!
//! Keys hash the *complete* input of a call — kind tag, call key, seed,
//! schema fingerprint, every value/feature/profile operand — never the
//! call key alone: the same `gen:{query_key}` can carry a different
//! context after an epoch swap, and a key that captured only the query
//! would serve a stale answer. Because every [`MockLlm`] output is a
//! pure function of exactly these inputs, a hit is guaranteed
//! equivalent to recomputing, which is what lets the cache survive
//! epoch swaps unmolested (entries for changed contexts simply miss).
//!
//! A hit skips metering *and* the fault plan: no call is placed, so no
//! fault can hit it — cached answers keep serving through an LLM
//! brownout, which is precisely their operational value.
//!
//! [`MockLlm`]: crate::MockLlm

use crate::halluc::GeneratedAnswer;
use crate::logic::LogicForm;
use multirag_kg::{FxHashMap, FxHasher};
use multirag_obs::MetricsRegistry;
use parking_lot::Mutex;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A memoized LLM response.
#[derive(Debug, Clone, PartialEq)]
pub enum CachedResponse {
    /// Logic-form generation result (including the "no parse" outcome).
    Logic(Option<LogicForm>),
    /// Answer generation result.
    Answer(GeneratedAnswer),
    /// Authority score `C_LLM(v)`.
    Authority(f64),
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: FxHashMap<u64, CachedResponse>,
    metrics: Option<MetricsRegistry>,
}

/// Shared, thread-safe response cache. Cheap to clone — all clones
/// share one store and one set of hit/miss counters, so a worker pool
/// of pipelines deduplicates LLM work across threads.
#[derive(Debug, Clone, Default)]
pub struct LlmResponseCache {
    inner: Arc<Mutex<CacheInner>>,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
}

impl LlmResponseCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a metrics registry: lookups bump
    /// `llm_cache_hits_total` / `llm_cache_misses_total`.
    pub fn attach_metrics(&self, metrics: MetricsRegistry) {
        self.inner.lock().metrics = Some(metrics);
    }

    /// Looks up a response, counting the hit or miss.
    pub fn get(&self, key: u64) -> Option<CachedResponse> {
        let inner = self.inner.lock();
        let found = inner.entries.get(&key).cloned();
        match (&found, &inner.metrics) {
            (Some(_), Some(m)) => m.inc("llm_cache_hits_total", 1),
            (None, Some(m)) => m.inc("llm_cache_misses_total", 1),
            _ => {}
        }
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Stores a response.
    pub fn put(&self, key: u64, response: CachedResponse) {
        self.inner.lock().entries.insert(key, response);
    }

    /// Drops every entry (counters survive).
    pub fn clear(&self) {
        self.inner.lock().entries.clear();
    }

    /// Number of cached responses.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Builds a cache key from a call's complete input set. Strings are
/// length-prefix hashed by `Hash`; floats contribute their exact bit
/// patterns via the `{v:?}` debug form of the containing struct, which
/// round-trips f64 exactly.
pub struct KeyBuilder {
    hasher: FxHasher,
}

impl KeyBuilder {
    /// Starts a key for one call kind ("lf", "auth", "gen", …).
    pub fn new(kind: &str, seed: u64) -> Self {
        let mut hasher = FxHasher::default();
        kind.hash(&mut hasher);
        seed.hash(&mut hasher);
        Self { hasher }
    }

    /// Mixes a string operand.
    pub fn str(mut self, s: &str) -> Self {
        s.hash(&mut self.hasher);
        self
    }

    /// Mixes an integer operand.
    pub fn u64(mut self, v: u64) -> Self {
        v.hash(&mut self.hasher);
        self
    }

    /// Mixes a float operand bit-exactly.
    pub fn f64(mut self, v: f64) -> Self {
        v.to_bits().hash(&mut self.hasher);
        self
    }

    /// Mixes any Debug-printable operand via its exact debug form
    /// (Rust's `{:?}` prints f64 with round-trip precision).
    pub fn debug<T: std::fmt::Debug>(mut self, v: &T) -> Self {
        format!("{v:?}").hash(&mut self.hasher);
        self
    }

    /// Finishes the key.
    pub fn build(self) -> u64 {
        self.hasher.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_counts_hits_and_misses_and_clears() {
        let cache = LlmResponseCache::new();
        let metrics = MetricsRegistry::new();
        cache.attach_metrics(metrics.clone());
        assert!(cache.get(1).is_none());
        cache.put(1, CachedResponse::Authority(0.75));
        assert_eq!(cache.get(1), Some(CachedResponse::Authority(0.75)));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("llm_cache_hits_total"), 1);
        assert_eq!(snap.counter("llm_cache_misses_total"), 1);
        // Clones share everything.
        let alias = cache.clone();
        assert_eq!(alias.len(), 1);
        alias.clear();
        assert!(cache.is_empty());
        assert!(cache.get(1).is_none());
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn key_builder_separates_operands_and_kinds() {
        let base = || KeyBuilder::new("gen", 42).str("q1").f64(0.5).u64(7);
        assert_eq!(base().build(), base().build());
        assert_ne!(
            base().build(),
            KeyBuilder::new("lf", 42).str("q1").f64(0.5).u64(7).build()
        );
        assert_ne!(
            base().build(),
            KeyBuilder::new("gen", 43).str("q1").f64(0.5).u64(7).build()
        );
        assert_ne!(base().build(), base().str("extra").build());
        // Bit-exact float discrimination: -0.0 differs from 0.0.
        assert_ne!(
            KeyBuilder::new("k", 0).f64(0.0).build(),
            KeyBuilder::new("k", 0).f64(-0.0).build()
        );
    }
}
